// Streaming statistics.
//
// The workload characterizer has to compute the mean / median / coefficient
// of variation columns of the paper's Tables 4 and 5 over millions of
// samples, so everything here is single-pass: Welford's algorithm for the
// moments and the P-square algorithm for quantiles.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace webcache::util {

/// Single-pass mean / variance / min / max accumulator (Welford).
class StreamingStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Sample variance (n - 1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Coefficient of variation: stddev / mean; 0 if the mean is 0.
  double cov() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const StreamingStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// P-square (P^2) streaming quantile estimator (Jain & Chlamtac, 1985).
/// Estimates a single quantile with O(1) memory. Exact for the first five
/// samples, then an adaptive piecewise-parabolic approximation.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void add(double x);
  /// Current estimate; NaN until at least one sample was added.
  double value() const;
  std::uint64_t count() const { return count_; }

 private:
  double quantile_;
  std::uint64_t count_ = 0;
  // Marker state (5 markers as in the paper).
  double heights_[5] = {};
  double positions_[5] = {};
  double desired_[5] = {};
  double increments_[5] = {};
  std::vector<double> warmup_;  // first five samples, sorted lazily
};

/// Convenience bundle: mean / median / CoV / min / max in one pass, the
/// exact shape of a Tables 4-5 row group.
struct SizeSummary {
  StreamingStats moments;
  P2Quantile median{0.5};

  void add(double x) {
    moments.add(x);
    median.add(x);
  }
  std::uint64_t count() const { return moments.count(); }
  double mean() const { return moments.mean(); }
  double median_value() const { return median.value(); }
  double cov() const { return moments.cov(); }
};

/// Exact median of a (small) vector; mutates its argument. Used by tests to
/// validate P2Quantile and by the characterizer when samples fit in memory.
double exact_median(std::vector<double>& values);

}  // namespace webcache::util
