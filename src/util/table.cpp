#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace webcache::util {

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::size_t Table::columns() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  return cols;
}

std::string Table::to_text() const {
  const std::size_t cols = columns();
  std::vector<std::size_t> widths(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      if (c > 0) os << "  ";
      const std::size_t pad = widths[c] - cell.size();
      if (c == 0) {
        os << cell << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cell;
      }
    }
    os << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c > 0 ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_text() << '\n'; }

}  // namespace webcache::util
