// Tabular output.
//
// Every benchmark binary regenerates one of the paper's tables or figure
// series; this writer renders them as aligned plain-text tables (for the
// console) and CSV (for plotting).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace webcache::util {

/// A simple row/column table with a title, a header row, and string cells.
/// Cells are formatted by the caller (see format.hpp helpers).
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  const std::string& title() const { return title_; }
  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const;

  /// Aligned fixed-width text rendering (first column left-aligned, the
  /// rest right-aligned, which suits numeric tables).
  std::string to_text() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace webcache::util
