#include "workload/breakdown.hpp"

#include <unordered_map>

namespace webcache::workload {

namespace {

double ratio(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

double Breakdown::distinct_fraction(trace::DocumentClass c) const {
  return ratio(of(c).distinct_documents, total.distinct_documents);
}

double Breakdown::size_fraction(trace::DocumentClass c) const {
  return ratio(of(c).overall_size_bytes, total.overall_size_bytes);
}

double Breakdown::request_fraction(trace::DocumentClass c) const {
  return ratio(of(c).total_requests, total.total_requests);
}

double Breakdown::requested_bytes_fraction(trace::DocumentClass c) const {
  return ratio(of(c).requested_bytes, total.requested_bytes);
}

Breakdown compute_breakdown(const trace::Trace& trace) {
  Breakdown bd;

  struct DocInfo {
    std::uint64_t last_size = 0;
    trace::DocumentClass doc_class = trace::DocumentClass::kOther;
  };
  std::unordered_map<trace::DocumentId, DocInfo> docs;
  docs.reserve(trace.requests.size());

  for (const trace::Request& r : trace.requests) {
    auto& cls = bd.per_class[static_cast<std::size_t>(r.doc_class)];
    cls.total_requests += 1;
    cls.requested_bytes += r.transfer_size;
    docs[r.document] = DocInfo{r.document_size, r.doc_class};
  }

  for (const auto& [id, info] : docs) {
    auto& cls = bd.per_class[static_cast<std::size_t>(info.doc_class)];
    cls.distinct_documents += 1;
    cls.overall_size_bytes += info.last_size;
  }

  for (const ClassTotals& cls : bd.per_class) {
    bd.total.distinct_documents += cls.distinct_documents;
    bd.total.overall_size_bytes += cls.overall_size_bytes;
    bd.total.total_requests += cls.total_requests;
    bd.total.requested_bytes += cls.requested_bytes;
  }
  return bd;
}

}  // namespace webcache::workload
