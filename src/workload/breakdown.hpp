// Workload breakdown by document class — the data behind the paper's
// Tables 1 (trace properties) and 2/3 (per-class shares).
#pragma once

#include <array>
#include <cstdint>

#include "trace/request.hpp"

namespace webcache::workload {

struct ClassTotals {
  std::uint64_t distinct_documents = 0;
  std::uint64_t overall_size_bytes = 0;  // sum of document sizes, distinct
  std::uint64_t total_requests = 0;
  std::uint64_t requested_bytes = 0;     // sum of transfer sizes
};

struct Breakdown {
  std::array<ClassTotals, trace::kDocumentClassCount> per_class{};
  ClassTotals total;

  const ClassTotals& of(trace::DocumentClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }

  double distinct_fraction(trace::DocumentClass c) const;
  double size_fraction(trace::DocumentClass c) const;
  double request_fraction(trace::DocumentClass c) const;
  double requested_bytes_fraction(trace::DocumentClass c) const;
};

/// Single pass over the trace. A document's "overall size" contribution is
/// its most recently seen document_size (documents modified mid-trace count
/// once, at their final size).
Breakdown compute_breakdown(const trace::Trace& trace);

}  // namespace webcache::workload
