#include "workload/byte_stack.hpp"

#include <unordered_map>

#include "util/fenwick.hpp"

namespace webcache::workload {

std::uint64_t ByteStackProfile::hits_at_bytes(
    std::uint64_t capacity_bytes) const {
  std::uint64_t hits = 0;
  for (std::size_t b = 0; b < distances.bucket_count(); ++b) {
    // Conservative: count a bucket only when even its upper edge fits.
    if (distances.bucket_hi(b) <= static_cast<double>(capacity_bytes)) {
      hits += static_cast<std::uint64_t>(distances.bucket_weight(b) + 0.5);
    }
  }
  return hits;
}

double ByteStackProfile::hit_rate_at_bytes(
    std::uint64_t capacity_bytes) const {
  return total_references == 0
             ? 0.0
             : static_cast<double>(hits_at_bytes(capacity_bytes)) /
                   static_cast<double>(total_references);
}

ByteStackProfile compute_byte_stack(const trace::Trace& trace) {
  ByteStackProfile profile;
  profile.total_references = trace.requests.size();
  if (trace.requests.empty()) return profile;

  struct Last {
    std::uint64_t position;
    std::uint64_t size;  // the size marked at that position
  };
  util::FenwickTree bytes(trace.requests.size());
  std::unordered_map<trace::DocumentId, Last> last;
  last.reserve(trace.requests.size() / 2 + 16);

  std::uint64_t position = 0;
  for (const trace::Request& r : trace.requests) {
    const std::uint64_t size = r.transfer_size;
    const auto it = last.find(r.document);
    if (it == last.end()) {
      ++profile.cold_misses;
    } else {
      // Bytes of distinct documents touched strictly between the previous
      // reference and now, plus the document's own size (it must itself
      // fit in the cache to be a hit).
      const double between = bytes.prefix_sum(position) -
                             bytes.prefix_sum(it->second.position + 1);
      profile.distances.add(between + static_cast<double>(size));
      bytes.add(it->second.position, -static_cast<double>(it->second.size));
    }
    bytes.add(position, static_cast<double>(size));
    last[r.document] = Last{position, size};
    ++position;
  }
  return profile;
}

}  // namespace webcache::workload
