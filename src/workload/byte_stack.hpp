// Byte-weighted reuse-distance analysis.
//
// The Mattson profile (workload/stack_distance.hpp) predicts LRU hit rates
// for caches holding N *documents*; real web caches are sized in bytes.
// The byte-weighted variant measures, for every re-reference, the total
// size of the distinct documents touched since the previous reference to
// the same document — its "byte reuse distance". A reference hits a
// byte-capacity LRU cache of size C approximately iff its byte distance is
// below C (approximately, because a byte-LRU evicts whole documents, so
// the boundary is quantized by the victim's size; the error is bounded by
// the largest document and vanishes for C far above typical sizes).
//
// One pass over the trace yields the full byte-capacity hit-rate curve,
// log-bucketed; the test suite bounds the approximation against the real
// simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request.hpp"
#include "util/histogram.hpp"

namespace webcache::workload {

struct ByteStackProfile {
  /// Log-bucketed histogram (base 2) of byte reuse distances.
  util::LogHistogram distances{2.0, 64};
  std::uint64_t cold_misses = 0;
  std::uint64_t total_references = 0;

  /// Approximate hits a byte-capacity LRU of `capacity_bytes` would score:
  /// references whose byte distance falls in buckets entirely below the
  /// capacity (a conservative, monotone estimate).
  std::uint64_t hits_at_bytes(std::uint64_t capacity_bytes) const;
  double hit_rate_at_bytes(std::uint64_t capacity_bytes) const;
};

/// O(n log n): Fenwick over request positions, weighted by document size.
ByteStackProfile compute_byte_stack(const trace::Trace& trace);

}  // namespace webcache::workload
