#include "workload/concentration.hpp"

#include <algorithm>
#include <unordered_map>

namespace webcache::workload {

ConcentrationEstimate concentration_from_counts(
    std::vector<std::uint32_t> counts) {
  ConcentrationEstimate est;
  est.documents = counts.size();
  if (counts.empty()) return est;

  std::sort(counts.begin(), counts.end(), std::greater<>());
  std::uint64_t total = 0;
  std::uint64_t one_timers = 0;
  for (const auto c : counts) {
    total += c;
    if (c == 1) ++one_timers;
  }
  est.requests = total;
  est.one_timer_document_fraction =
      static_cast<double>(one_timers) / static_cast<double>(counts.size());
  est.one_timer_request_fraction =
      static_cast<double>(one_timers) / static_cast<double>(total);

  auto share_of_top = [&](double fraction) {
    const auto k = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(counts.size()) *
                                    fraction));
    std::uint64_t captured = 0;
    for (std::size_t i = 0; i < k; ++i) captured += counts[i];
    return static_cast<double>(captured) / static_cast<double>(total);
  };
  est.top1_request_share = share_of_top(0.01);
  est.top10_request_share = share_of_top(0.10);
  return est;
}

ConcentrationStats compute_concentration(const trace::Trace& trace) {
  struct DocState {
    std::uint32_t count = 0;
    trace::DocumentClass doc_class = trace::DocumentClass::kOther;
  };
  std::unordered_map<trace::DocumentId, DocState> docs;
  docs.reserve(trace.requests.size());
  for (const trace::Request& r : trace.requests) {
    DocState& d = docs[r.document];
    ++d.count;
    d.doc_class = r.doc_class;
  }

  std::array<std::vector<std::uint32_t>, trace::kDocumentClassCount>
      class_counts;
  std::vector<std::uint32_t> all_counts;
  all_counts.reserve(docs.size());
  for (const auto& [id, d] : docs) {
    class_counts[static_cast<std::size_t>(d.doc_class)].push_back(d.count);
    all_counts.push_back(d.count);
  }

  ConcentrationStats stats;
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    stats.per_class[c] = concentration_from_counts(std::move(class_counts[c]));
  }
  stats.overall = concentration_from_counts(std::move(all_counts));
  return stats;
}

}  // namespace webcache::workload
