// Concentration of references — the non-uniformity statistics reported in
// Arlitt, Friedrich & Jin's companion characterization, which the paper
// cites for the "extreme non-uniformity in popularity of web requests seen
// at caching proxies". Per class and overall:
//   * one-timer fraction (documents referenced exactly once),
//   * share of requests absorbed by the hottest X% of documents,
//   * share of requests to one-timers (an upper bound on the miss floor).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/request.hpp"

namespace webcache::workload {

struct ConcentrationEstimate {
  std::uint64_t documents = 0;
  std::uint64_t requests = 0;

  /// Fraction of documents with exactly one reference.
  double one_timer_document_fraction = 0.0;
  /// Fraction of requests that go to one-timer documents (each such
  /// request is an unavoidable miss for any demand-driven cache).
  double one_timer_request_fraction = 0.0;
  /// Fraction of requests captured by the most popular 1% / 10% of
  /// documents.
  double top1_request_share = 0.0;
  double top10_request_share = 0.0;
};

struct ConcentrationStats {
  std::array<ConcentrationEstimate, trace::kDocumentClassCount> per_class;
  ConcentrationEstimate overall;

  const ConcentrationEstimate& of(trace::DocumentClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }
};

ConcentrationStats compute_concentration(const trace::Trace& trace);

/// Helper shared with tests: the estimate for one class's reference-count
/// multiset.
ConcentrationEstimate concentration_from_counts(
    std::vector<std::uint32_t> counts);

}  // namespace webcache::workload
