#include "workload/drift.hpp"

#include <stdexcept>

#include "util/format.hpp"
#include "workload/locality.hpp"

namespace webcache::workload {

std::vector<WindowStats> compute_drift(const trace::Trace& trace,
                                       std::size_t windows) {
  if (windows == 0) {
    throw std::invalid_argument("compute_drift: need at least one window");
  }
  const std::uint64_t total = trace.requests.size();
  std::vector<WindowStats> out;
  if (total == 0) return out;
  windows = std::min<std::size_t>(windows, total);
  out.reserve(windows);

  for (std::size_t w = 0; w < windows; ++w) {
    WindowStats stats;
    stats.first_request = total * w / windows;
    stats.last_request = total * (w + 1) / windows;
    stats.requests = stats.last_request - stats.first_request;
    if (stats.requests == 0) continue;

    trace::Trace window;
    window.requests.assign(
        trace.requests.begin() + static_cast<std::ptrdiff_t>(stats.first_request),
        trace.requests.begin() + static_cast<std::ptrdiff_t>(stats.last_request));

    std::uint64_t bytes = 0;
    std::array<std::uint64_t, trace::kDocumentClassCount> class_requests{};
    std::array<std::uint64_t, trace::kDocumentClassCount> class_bytes{};
    for (const trace::Request& r : window.requests) {
      bytes += r.transfer_size;
      class_requests[static_cast<std::size_t>(r.doc_class)] += 1;
      class_bytes[static_cast<std::size_t>(r.doc_class)] += r.transfer_size;
    }
    for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
      stats.request_fraction[c] = static_cast<double>(class_requests[c]) /
                                  static_cast<double>(stats.requests);
      stats.byte_fraction[c] =
          bytes == 0 ? 0.0
                     : static_cast<double>(class_bytes[c]) /
                           static_cast<double>(bytes);
    }
    stats.mean_transfer_bytes =
        static_cast<double>(bytes) / static_cast<double>(stats.requests);

    const LocalityStats locality = compute_locality(window);
    stats.alpha = locality.overall.alpha;
    stats.beta = locality.overall.beta;
    out.push_back(stats);
  }
  return out;
}

util::Table render_drift(const std::vector<WindowStats>& windows,
                         const std::string& title) {
  util::Table table(title);
  table.set_header({"Window", "Requests", "% img", "% html", "% mm", "% app",
                    "mm+app bytes %", "Mean KB", "alpha", "beta"});
  std::size_t index = 1;
  for (const WindowStats& w : windows) {
    const auto pct = [&](trace::DocumentClass c) {
      return util::fmt_percent(
          w.request_fraction[static_cast<std::size_t>(c)], 2);
    };
    const double mm_app_bytes =
        w.byte_fraction[static_cast<std::size_t>(
            trace::DocumentClass::kMultiMedia)] +
        w.byte_fraction[static_cast<std::size_t>(
            trace::DocumentClass::kApplication)];
    table.add_row({std::to_string(index++), util::fmt_count(w.requests),
                   pct(trace::DocumentClass::kImage),
                   pct(trace::DocumentClass::kHtml),
                   pct(trace::DocumentClass::kMultiMedia),
                   pct(trace::DocumentClass::kApplication),
                   util::fmt_percent(mm_app_bytes, 1),
                   util::fmt_fixed(w.mean_transfer_bytes / 1024.0, 1),
                   util::fmt_fixed(w.alpha, 2), util::fmt_fixed(w.beta, 2)});
  }
  return table;
}

}  // namespace webcache::workload
