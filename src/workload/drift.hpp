// Workload drift: the characterization of Tables 2-5 evaluated per time
// window, so "changing workload characteristics" (the situation the paper's
// conclusion says replacement-scheme design must anticipate) becomes
// observable — e.g. a growing multimedia request share across the months of
// a trace, or a flattening popularity slope.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/request.hpp"
#include "util/table.hpp"

namespace webcache::workload {

struct WindowStats {
  std::uint64_t first_request = 0;  // inclusive, 0-based
  std::uint64_t last_request = 0;   // exclusive
  std::uint64_t requests = 0;

  std::array<double, trace::kDocumentClassCount> request_fraction{};
  std::array<double, trace::kDocumentClassCount> byte_fraction{};
  double mean_transfer_bytes = 0.0;
  /// Overall popularity slope / temporal-correlation slope within the
  /// window (0 when the window is too small to fit).
  double alpha = 0.0;
  double beta = 0.0;
};

/// Splits the trace into `windows` equal request-count slices and
/// characterizes each independently. Requires windows >= 1; empty traces
/// produce an empty vector.
std::vector<WindowStats> compute_drift(const trace::Trace& trace,
                                       std::size_t windows);

/// One row per window: request mix, byte mix of the large classes, alpha,
/// beta, mean transfer.
util::Table render_drift(const std::vector<WindowStats>& windows,
                         const std::string& title);

}  // namespace webcache::workload
