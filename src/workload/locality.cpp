#include "workload/locality.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "util/histogram.hpp"

namespace webcache::workload {

namespace {

struct DocState {
  std::uint32_t count = 0;
  std::uint64_t last_index = 0;
  trace::DocumentClass doc_class = trace::DocumentClass::kOther;
};

/// alpha from the rank/count curve: sort counts descending, log-bin the
/// ranks, fit count vs rank in log-log space. The negated slope is alpha.
void fit_alpha(std::vector<std::uint32_t>& counts, LocalityEstimate& out) {
  out.documents = counts.size();
  if (counts.size() < 8) return;
  std::sort(counts.begin(), counts.end(), std::greater<>());

  // Log-spaced rank buckets: average count per bucket removes the noise in
  // the tail while preserving the head's slope.
  util::LogHistogram sums(1.5, 96);
  util::LogHistogram sizes(1.5, 96);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double rank = static_cast<double>(i + 1);
    sums.add(rank, static_cast<double>(counts[i]));
    sizes.add(rank, 1.0);
  }
  std::vector<std::pair<double, double>> points;
  for (std::size_t b = 0; b < sums.bucket_count(); ++b) {
    const double n = sizes.bucket_weight(b);
    if (n <= 0.0) continue;
    const double mean_count = sums.bucket_weight(b) / n;
    // Buckets consisting purely of one-timers carry no slope information
    // (the plateau); keep them only if they are the first such bucket so
    // the fit sees where the curve meets the floor.
    points.emplace_back(sums.bucket_center(b), mean_count);
  }
  // Trim the trailing all-ones plateau to a single point.
  while (points.size() >= 2 && points[points.size() - 1].second <= 1.0 &&
         points[points.size() - 2].second <= 1.0) {
    points.pop_back();
  }
  if (points.size() < 3) return;
  const util::LineFit fit = util::fit_loglog(points);
  if (fit.valid()) {
    out.alpha = -fit.slope;
    out.alpha_r_squared = fit.r_squared;
  }
}

/// beta from the gap histogram: log-binned density of inter-reference gaps,
/// negated log-log slope. Buckets carrying fewer than a handful of samples
/// are excluded from the fit: in an unweighted log-log regression the
/// near-empty large-gap buckets have enormous leverage and make the
/// estimate jump by tenths between seeds.
void fit_beta(const util::LogHistogram& gaps, std::uint64_t samples,
              LocalityEstimate& out) {
  out.re_references = samples;
  if (samples < 32) return;
  // Adaptive threshold: demanding ~1% of the samples per bucket keeps the
  // fit stable for large classes without starving small ones.
  const double min_bucket_weight =
      std::clamp(static_cast<double>(samples) / 100.0, 2.0, 16.0);
  std::vector<std::pair<double, double>> points;
  for (std::size_t b = 0; b < gaps.bucket_count(); ++b) {
    const double weight = gaps.bucket_weight(b);
    if (weight < min_bucket_weight) continue;
    points.emplace_back(gaps.bucket_center(b),
                        weight / (gaps.bucket_hi(b) - gaps.bucket_lo(b)));
  }
  if (points.size() < 3) return;
  const util::LineFit fit = util::fit_loglog(points);
  if (fit.valid()) {
    out.beta = -fit.slope;
    out.beta_r_squared = fit.r_squared;
  }
}

}  // namespace

LocalityStats compute_locality(const trace::Trace& trace,
                               const LocalityOptions& options) {
  LocalityStats stats;

  // Pass 1: total reference count per document (for alpha and for the
  // equal-popularity band of beta).
  std::unordered_map<trace::DocumentId, DocState> docs;
  docs.reserve(trace.requests.size());
  for (const trace::Request& r : trace.requests) {
    DocState& d = docs[r.document];
    ++d.count;
    d.doc_class = r.doc_class;
  }

  {
    std::array<std::vector<std::uint32_t>, trace::kDocumentClassCount>
        class_counts;
    std::vector<std::uint32_t> all_counts;
    all_counts.reserve(docs.size());
    for (const auto& [id, d] : docs) {
      class_counts[static_cast<std::size_t>(d.doc_class)].push_back(d.count);
      all_counts.push_back(d.count);
    }
    for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
      fit_alpha(class_counts[c], stats.per_class[c]);
    }
    fit_alpha(all_counts, stats.overall);
  }

  // Pass 2: inter-reference gaps, restricted to the popularity band.
  std::array<util::LogHistogram, trace::kDocumentClassCount> class_gaps{
      util::LogHistogram(2.0, 48), util::LogHistogram(2.0, 48),
      util::LogHistogram(2.0, 48), util::LogHistogram(2.0, 48),
      util::LogHistogram(2.0, 48)};
  util::LogHistogram overall_gaps(2.0, 48);
  std::array<std::uint64_t, trace::kDocumentClassCount> class_samples{};
  std::uint64_t overall_samples = 0;

  std::unordered_map<trace::DocumentId, std::uint64_t> last_seen;
  last_seen.reserve(docs.size());
  std::uint64_t index = 0;
  for (const trace::Request& r : trace.requests) {
    ++index;  // 1-based so "gap" is the count of requests in between + 1
    const DocState& d = docs[r.document];
    const bool in_band = d.count >= options.min_popularity &&
                         d.count <= options.max_popularity;
    if (in_band) {
      const auto it = last_seen.find(r.document);
      if (it != last_seen.end()) {
        const double gap = static_cast<double>(index - it->second);
        class_gaps[static_cast<std::size_t>(r.doc_class)].add(gap);
        ++class_samples[static_cast<std::size_t>(r.doc_class)];
        overall_gaps.add(gap);
        ++overall_samples;
      }
      last_seen[r.document] = index;
    }
  }

  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    fit_beta(class_gaps[c], class_samples[c], stats.per_class[c]);
  }
  fit_beta(overall_gaps, overall_samples, stats.overall);
  return stats;
}

}  // namespace webcache::workload
