// Temporal-locality estimators — the lower half of the paper's Tables 4/5.
//
// "The first parameter, denoted as the popularity index alpha, describes
//  the distribution of popularity among the individual documents. The number
//  of requests N to a web document is proportional to its popularity rank
//  rho to the power of alpha: N ~ rho^-alpha. [It] can be determined [from]
//  the slope of the log/log scale plot for the number of references to a web
//  document as function of its popularity rank."
//
// "The second parameter, denoted as beta, measures the temporal correlation
//  between two successive references to the same web document. The
//  probability P that a document is requested again after n requests is
//  proportional to n to the power of -beta ... for equally popular
//  documents."
#pragma once

#include <array>
#include <cstdint>

#include "trace/request.hpp"
#include "util/fit.hpp"

namespace webcache::workload {

struct LocalityEstimate {
  /// Popularity index (positive for Zipf-like decay); NaN-free: 0 when the
  /// class has too few documents to fit.
  double alpha = 0.0;
  double alpha_r_squared = 0.0;

  /// Temporal-correlation exponent; 0 when too few re-references to fit.
  double beta = 0.0;
  double beta_r_squared = 0.0;

  std::uint64_t documents = 0;
  std::uint64_t re_references = 0;  // gap samples behind the beta estimate
};

struct LocalityStats {
  std::array<LocalityEstimate, trace::kDocumentClassCount> per_class;
  LocalityEstimate overall;

  const LocalityEstimate& of(trace::DocumentClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }
};

struct LocalityOptions {
  /// Beta is fit over gaps of documents whose total reference count lies in
  /// [min_popularity, max_popularity] — the paper's "equally popular
  /// documents" restriction, realized as a popularity band. The band
  /// excludes one-timers (no gaps) and the few ultra-hot documents whose
  /// gap mass would otherwise be pure popularity signal.
  std::uint64_t min_popularity = 2;
  std::uint64_t max_popularity = 64;
};

/// Two passes over the trace: reference counting (alpha) and gap collection
/// (beta). Gaps are measured in requests on the *global* stream, as in the
/// paper. Estimates are least-squares slopes of log-binned log-log plots.
LocalityStats compute_locality(const trace::Trace& trace,
                               const LocalityOptions& options = {});

}  // namespace webcache::workload
