#include "workload/report.hpp"

#include "util/format.hpp"

namespace webcache::workload {

namespace {

constexpr double kGB = 1024.0 * 1024.0 * 1024.0;
constexpr double kKB = 1024.0;

// The four named classes plus Other, in the paper's column order.
const std::array<trace::DocumentClass, trace::kDocumentClassCount>&
paper_class_order() {
  static constexpr std::array<trace::DocumentClass, trace::kDocumentClassCount>
      order = {trace::DocumentClass::kImage, trace::DocumentClass::kHtml,
               trace::DocumentClass::kMultiMedia,
               trace::DocumentClass::kApplication, trace::DocumentClass::kOther};
  return order;
}

std::vector<std::string> class_header(const std::string& first) {
  std::vector<std::string> header = {first};
  for (const auto c : paper_class_order()) {
    header.emplace_back(trace::to_string(c));
  }
  return header;
}

}  // namespace

util::Table render_trace_properties(
    const std::vector<std::pair<std::string, Breakdown>>& traces) {
  util::Table table("Table 1. Properties of the traces");
  std::vector<std::string> header = {""};
  for (const auto& [name, bd] : traces) header.push_back(name);
  table.set_header(header);

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (const auto& [name, bd] : traces) cells.push_back(getter(bd));
    table.add_row(cells);
  };
  row("Distinct Documents", [](const Breakdown& bd) {
    return util::fmt_count(bd.total.distinct_documents);
  });
  row("Overall Size (GB)", [](const Breakdown& bd) {
    return util::fmt_fixed(
        static_cast<double>(bd.total.overall_size_bytes) / kGB, 2);
  });
  row("Total Requests", [](const Breakdown& bd) {
    return util::fmt_count(bd.total.total_requests);
  });
  row("Requested Data (GB)", [](const Breakdown& bd) {
    return util::fmt_fixed(
        static_cast<double>(bd.total.requested_bytes) / kGB, 2);
  });
  return table;
}

util::Table render_class_breakdown(const std::string& trace_name,
                                   const Breakdown& bd) {
  util::Table table(trace_name +
                    " trace: workload characteristics broken down into "
                    "document types");
  table.set_header(class_header(""));

  auto row = [&](const std::string& label, auto fraction) {
    std::vector<std::string> cells = {label};
    for (const auto c : paper_class_order()) {
      cells.push_back(util::fmt_percent(fraction(c), 2));
    }
    table.add_row(cells);
  };
  row("% of Distinct Documents",
      [&](trace::DocumentClass c) { return bd.distinct_fraction(c); });
  row("% of Overall Size",
      [&](trace::DocumentClass c) { return bd.size_fraction(c); });
  row("% of Total Requests",
      [&](trace::DocumentClass c) { return bd.request_fraction(c); });
  row("% of Requested Data",
      [&](trace::DocumentClass c) { return bd.requested_bytes_fraction(c); });
  return table;
}

util::Table render_size_and_locality(const std::string& trace_name,
                                     const SizeStats& sizes,
                                     const LocalityStats& locality) {
  util::Table table(trace_name +
                    " trace: breakdown of document sizes and temporal "
                    "locality");
  table.set_header(class_header(""));

  auto row = [&](const std::string& label, auto value) {
    std::vector<std::string> cells = {label};
    for (const auto c : paper_class_order()) cells.push_back(value(c));
    table.add_row(cells);
  };

  row("Mean of Document Size (KB)", [&](trace::DocumentClass c) {
    return util::fmt_fixed(sizes.of(c).document_sizes.mean() / kKB, 2);
  });
  row("Median of Document Size (KB)", [&](trace::DocumentClass c) {
    return util::fmt_fixed(sizes.of(c).document_sizes.median_value() / kKB, 2);
  });
  row("CoV of Document Size", [&](trace::DocumentClass c) {
    return util::fmt_fixed(sizes.of(c).document_sizes.cov(), 2);
  });
  row("Mean of Transfer Size (KB)", [&](trace::DocumentClass c) {
    return util::fmt_fixed(sizes.of(c).transfer_sizes.mean() / kKB, 2);
  });
  row("Median of Transfer Size (KB)", [&](trace::DocumentClass c) {
    return util::fmt_fixed(sizes.of(c).transfer_sizes.median_value() / kKB, 2);
  });
  row("CoV of Transfer Size", [&](trace::DocumentClass c) {
    return util::fmt_fixed(sizes.of(c).transfer_sizes.cov(), 2);
  });
  row("Slope of Popularity Distribution (alpha)", [&](trace::DocumentClass c) {
    return util::fmt_fixed(locality.of(c).alpha, 2);
  });
  row("Degree of Temporal Correlations (beta)", [&](trace::DocumentClass c) {
    return util::fmt_fixed(locality.of(c).beta, 2);
  });
  return table;
}

util::Table render_concentration(const std::string& trace_name,
                                 const ConcentrationStats& concentration) {
  util::Table table(trace_name + " trace: concentration of references");
  std::vector<std::string> header = class_header("");
  header.emplace_back("Overall");
  table.set_header(header);

  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells = {label};
    for (const auto c : paper_class_order()) {
      cells.push_back(util::fmt_percent(metric(concentration.of(c)), 1));
    }
    cells.push_back(util::fmt_percent(metric(concentration.overall), 1));
    table.add_row(cells);
  };
  row("% one-timer documents", [](const ConcentrationEstimate& e) {
    return e.one_timer_document_fraction;
  });
  row("% requests to one-timers", [](const ConcentrationEstimate& e) {
    return e.one_timer_request_fraction;
  });
  row("% requests to top 1% docs", [](const ConcentrationEstimate& e) {
    return e.top1_request_share;
  });
  row("% requests to top 10% docs", [](const ConcentrationEstimate& e) {
    return e.top10_request_share;
  });
  return table;
}

}  // namespace webcache::workload
