// Renderers that lay the characterization results out exactly like the
// paper's Tables 1-5.
#pragma once

#include <string>
#include <vector>

#include "util/table.hpp"
#include "workload/breakdown.hpp"
#include "workload/concentration.hpp"
#include "workload/locality.hpp"
#include "workload/size_stats.hpp"

namespace webcache::workload {

/// Table 1: properties of one or more traces, one column per trace.
util::Table render_trace_properties(
    const std::vector<std::pair<std::string, Breakdown>>& traces);

/// Tables 2/3: per-class shares of one trace.
util::Table render_class_breakdown(const std::string& trace_name,
                                   const Breakdown& breakdown);

/// Tables 4/5: per-class size statistics and locality parameters.
util::Table render_size_and_locality(const std::string& trace_name,
                                     const SizeStats& sizes,
                                     const LocalityStats& locality);

/// Concentration-of-references statistics (ours): one-timers, top-N shares
/// per class plus overall.
util::Table render_concentration(const std::string& trace_name,
                                 const ConcentrationStats& concentration);

}  // namespace webcache::workload
