#include "workload/size_stats.hpp"

#include <unordered_map>

namespace webcache::workload {

SizeStats compute_size_stats(const trace::Trace& trace) {
  SizeStats stats;

  struct DocInfo {
    std::uint64_t last_size = 0;
    trace::DocumentClass doc_class = trace::DocumentClass::kOther;
  };
  std::unordered_map<trace::DocumentId, DocInfo> docs;
  docs.reserve(trace.requests.size());

  for (const trace::Request& r : trace.requests) {
    auto& cls = stats.per_class[static_cast<std::size_t>(r.doc_class)];
    cls.transfer_sizes.add(static_cast<double>(r.transfer_size));
    docs[r.document] = DocInfo{r.document_size, r.doc_class};
  }
  for (const auto& [id, info] : docs) {
    auto& cls = stats.per_class[static_cast<std::size_t>(info.doc_class)];
    cls.document_sizes.add(static_cast<double>(info.last_size));
  }
  return stats;
}

}  // namespace webcache::workload
