// Per-class size statistics — the upper half of the paper's Tables 4/5:
// mean / median / CoV of document sizes (over distinct documents) and of
// transfer sizes (over requests).
#pragma once

#include <array>

#include "trace/request.hpp"
#include "util/stats.hpp"

namespace webcache::workload {

struct ClassSizeStats {
  util::SizeSummary document_sizes;  // one sample per distinct document
  util::SizeSummary transfer_sizes;  // one sample per request
};

struct SizeStats {
  std::array<ClassSizeStats, trace::kDocumentClassCount> per_class;

  const ClassSizeStats& of(trace::DocumentClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }
};

/// Document-size samples use each document's most recently seen size (one
/// sample per distinct document); transfer-size samples use every request.
SizeStats compute_size_stats(const trace::Trace& trace);

}  // namespace webcache::workload
