#include "workload/stack_distance.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/fenwick.hpp"

namespace webcache::workload {

std::uint64_t StackDistanceProfile::hits_at(std::uint64_t slots) const {
  if (slots == 0) return 0;
  std::uint64_t hits = 0;
  const std::uint64_t limit =
      std::min<std::uint64_t>(slots, histogram.size());
  for (std::uint64_t d = 0; d < limit; ++d) hits += histogram[d];
  return hits;
}

double StackDistanceProfile::hit_rate_at(std::uint64_t slots) const {
  return total_references == 0
             ? 0.0
             : static_cast<double>(hits_at(slots)) /
                   static_cast<double>(total_references);
}

std::vector<double> StackDistanceProfile::hit_rate_curve(
    std::uint64_t max_slots) const {
  std::vector<double> curve;
  curve.reserve(max_slots);
  std::uint64_t hits = 0;
  for (std::uint64_t d = 0; d < max_slots; ++d) {
    if (d < histogram.size()) hits += histogram[d];
    curve.push_back(total_references == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total_references));
  }
  return curve;
}

StackDistanceProfile compute_stack_distances(const trace::Trace& trace) {
  StackDistanceProfile profile;
  profile.total_references = trace.requests.size();
  if (trace.requests.empty()) return profile;

  // Fenwick tree over request positions: a 1 marks the most recent access
  // position of a currently-tracked document. The reuse distance of a
  // reference at position i with previous access at position p is the
  // number of marks strictly between p and i.
  util::FenwickTree marks(trace.requests.size());
  std::unordered_map<trace::DocumentId, std::uint64_t> last_position;
  last_position.reserve(trace.requests.size() / 2 + 16);

  std::uint64_t position = 0;
  for (const trace::Request& r : trace.requests) {
    const auto it = last_position.find(r.document);
    if (it == last_position.end()) {
      ++profile.cold_misses;
    } else {
      const std::uint64_t prev = it->second;
      // Distinct documents touched since prev = marks in (prev, position).
      const double between = marks.prefix_sum(position) -
                             marks.prefix_sum(prev + 1);
      const auto distance = static_cast<std::uint64_t>(between + 0.5);
      if (profile.histogram.size() <= distance) {
        profile.histogram.resize(distance + 1, 0);
      }
      ++profile.histogram[distance];
      marks.add(prev, -1.0);  // the old position no longer marks the doc
    }
    marks.add(position, 1.0);
    last_position[r.document] = position;
    ++position;
  }
  return profile;
}

}  // namespace webcache::workload
