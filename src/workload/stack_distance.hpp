// LRU stack-distance (reuse-distance) analysis — Mattson et al.'s classic
// one-pass technique: because LRU is a stack algorithm, the histogram of
// reuse distances yields the LRU hit count for EVERY cache size from a
// single trace traversal, instead of one simulation per size.
//
// Distances here are measured in *distinct documents* touched since the
// previous reference (document granularity), so the predicted curve matches
// a cache that holds N documents. For byte-capacity caches with variable
// object sizes the curve is an approximation; the test suite pins exactness
// for unit-size workloads against the simulator.
//
// Implementation: timestamp per document + a Fenwick tree over positions;
// the reuse distance of a reference is the number of distinct documents
// referenced since the previous access, computed in O(log n).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/request.hpp"

namespace webcache::workload {

struct StackDistanceProfile {
  /// histogram[d] = number of references with reuse distance exactly d
  /// (distance 0 = immediate re-reference, i.e. a hit in a 1-slot cache).
  std::vector<std::uint64_t> histogram;
  /// References to documents never seen before (infinite distance).
  std::uint64_t cold_misses = 0;
  std::uint64_t total_references = 0;

  /// Hits an LRU cache holding `slots` documents would score on this trace
  /// (exact for unit-size objects; Mattson inclusion).
  std::uint64_t hits_at(std::uint64_t slots) const;
  /// hits_at(slots) / total_references.
  double hit_rate_at(std::uint64_t slots) const;
  /// The full cumulative curve up to max_slots (index i = i+1 slots).
  std::vector<double> hit_rate_curve(std::uint64_t max_slots) const;
};

/// One pass, O(n log n) in the number of requests.
StackDistanceProfile compute_stack_distances(const trace::Trace& trace);

}  // namespace webcache::workload
