#include "cache/beta_estimator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

TEST(BetaEstimator, RejectsInvalidOptions) {
  BetaEstimator::Options bad_clamp;
  bad_clamp.min_beta = 0.0;
  EXPECT_THROW(BetaEstimator{bad_clamp}, std::invalid_argument);

  BetaEstimator::Options inverted;
  inverted.min_beta = 2.0;
  inverted.max_beta = 1.0;
  EXPECT_THROW(BetaEstimator{inverted}, std::invalid_argument);

  BetaEstimator::Options outside;
  outside.initial_beta = 5.0;
  EXPECT_THROW(BetaEstimator{outside}, std::invalid_argument);

  BetaEstimator::Options bad_decay;
  bad_decay.decay = 0.0;
  EXPECT_THROW(BetaEstimator{bad_decay}, std::invalid_argument);
}

TEST(BetaEstimator, StartsAtInitialBeta) {
  BetaEstimator::Options opts;
  opts.initial_beta = 0.7;
  BetaEstimator est(opts);
  EXPECT_DOUBLE_EQ(est.beta(), 0.7);
  EXPECT_EQ(est.samples(), 0u);
}

TEST(BetaEstimator, HoldsInitialUntilEnoughSamples) {
  BetaEstimator::Options opts;
  opts.initial_beta = 1.0;
  opts.min_samples = 1000;
  opts.refit_interval = 10;
  BetaEstimator est(opts);
  for (int i = 0; i < 500; ++i) est.observe_gap(1 + i % 64);
  EXPECT_DOUBLE_EQ(est.beta(), 1.0);
}

TEST(BetaEstimator, RecoversPlantedExponent) {
  for (const double planted : {0.5, 0.9, 1.3}) {
    BetaEstimator::Options opts;
    opts.refit_interval = 2048;
    opts.min_samples = 1024;
    BetaEstimator est(opts);
    util::Rng rng(17);
    util::PowerLawGapDistribution gaps(1 << 20, planted);
    for (int i = 0; i < 60000; ++i) est.observe_gap(gaps.sample(rng));
    EXPECT_NEAR(est.beta(), planted, 0.2) << "planted beta " << planted;
  }
}

TEST(BetaEstimator, ClampsToRange) {
  BetaEstimator::Options opts;
  opts.min_beta = 0.4;
  opts.max_beta = 1.2;
  opts.initial_beta = 0.8;
  opts.refit_interval = 512;
  opts.min_samples = 256;
  BetaEstimator est(opts);
  util::Rng rng(23);
  // Planted exponent far below the clamp: estimate must stop at min_beta.
  util::PowerLawGapDistribution flat(1 << 16, 0.05);
  for (int i = 0; i < 20000; ++i) est.observe_gap(flat.sample(rng));
  EXPECT_GE(est.beta(), 0.4);
  EXPECT_LE(est.beta(), 1.2);
}

TEST(BetaEstimator, AdaptsToWorkloadDrift) {
  // Decay lets the estimate follow a regime change from weakly to strongly
  // correlated gaps.
  BetaEstimator::Options opts;
  opts.refit_interval = 2048;
  opts.min_samples = 1024;
  opts.decay = 0.5;
  BetaEstimator est(opts);
  util::Rng rng(29);
  util::PowerLawGapDistribution weak(1 << 18, 0.4);
  util::PowerLawGapDistribution strong(1 << 18, 1.4);
  for (int i = 0; i < 40000; ++i) est.observe_gap(weak.sample(rng));
  const double before = est.beta();
  for (int i = 0; i < 80000; ++i) est.observe_gap(strong.sample(rng));
  const double after = est.beta();
  EXPECT_GT(after, before + 0.3);
}

TEST(BetaEstimator, ZeroGapTreatedAsOne) {
  BetaEstimator est;
  est.observe_gap(0);  // must not throw or log(0)
  EXPECT_EQ(est.samples(), 1u);
}

TEST(BetaEstimator, ClearRestoresInitialState) {
  BetaEstimator::Options opts;
  opts.initial_beta = 0.9;
  opts.refit_interval = 64;
  opts.min_samples = 32;
  BetaEstimator est(opts);
  util::Rng rng(31);
  util::PowerLawGapDistribution gaps(1 << 14, 1.5);
  for (int i = 0; i < 5000; ++i) est.observe_gap(gaps.sample(rng));
  est.clear();
  EXPECT_DOUBLE_EQ(est.beta(), 0.9);
  EXPECT_EQ(est.samples(), 0u);
}

}  // namespace
}  // namespace webcache::cache
