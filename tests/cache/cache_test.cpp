#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/lru.hpp"
#include "policy_test_util.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::access_sized;
using trace::DocumentClass;

Cache make_cache(std::uint64_t capacity) {
  return Cache(capacity, std::make_unique<LruPolicy>());
}

TEST(Cache, NullPolicyRejected) {
  EXPECT_THROW(Cache(10, nullptr), std::invalid_argument);
}

TEST(Cache, ReserveDenseIdsOnNonEmptyCacheThrows) {
  // The flat-array representation is only sound when installed before any
  // object exists; switching under live contents would orphan them.
  Cache cache = make_cache(100);
  access_sized(cache, 1, 5);
  EXPECT_THROW(cache.reserve_dense_ids(64), std::logic_error);
  // Once drained back to empty the reservation becomes legal again.
  cache.erase(1);
  EXPECT_NO_THROW(cache.reserve_dense_ids(64));
}

TEST(Cache, MissInsertsThenHits) {
  Cache cache = make_cache(10);
  EXPECT_EQ(access_sized(cache, 1, 5).kind, Cache::AccessKind::kMiss);
  EXPECT_EQ(access_sized(cache, 1, 5).kind, Cache::AccessKind::kHit);
  EXPECT_EQ(cache.used_bytes(), 5u);
  EXPECT_EQ(cache.object_count(), 1u);
}

TEST(Cache, CapacityNeverExceeded) {
  Cache cache = make_cache(10);
  for (ObjectId id = 0; id < 100; ++id) {
    access_sized(cache, id, 1 + id % 7);
    EXPECT_LE(cache.used_bytes(), 10u);
    ASSERT_TRUE(cache.check_invariants());
  }
}

TEST(Cache, OversizedObjectBypasses) {
  Cache cache = make_cache(10);
  access_sized(cache, 1, 5);
  const auto outcome = access_sized(cache, 2, 11);
  EXPECT_EQ(outcome.kind, Cache::AccessKind::kBypass);
  EXPECT_EQ(outcome.evictions, 0u);
  EXPECT_FALSE(cache.contains(2));
  // The resident object is untouched by a bypass.
  EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, ExactFitAllowed) {
  Cache cache = make_cache(10);
  EXPECT_EQ(access_sized(cache, 1, 10).kind, Cache::AccessKind::kMiss);
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 10u);
}

TEST(Cache, ZeroCapacityBypassesEverything) {
  Cache cache = make_cache(0);
  EXPECT_EQ(access_sized(cache, 1, 1).kind, Cache::AccessKind::kBypass);
  EXPECT_EQ(cache.object_count(), 0u);
}

TEST(Cache, ZeroSizeObjectsOccupyNoBytes) {
  Cache cache = make_cache(10);
  EXPECT_EQ(access_sized(cache, 1, 0).kind, Cache::AccessKind::kMiss);
  EXPECT_EQ(access_sized(cache, 1, 0).kind, Cache::AccessKind::kHit);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.object_count(), 1u);
}

TEST(Cache, EvictionCountReported) {
  Cache cache = make_cache(3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  const auto outcome = access_sized(cache, 4, 3);  // evicts all three
  EXPECT_EQ(outcome.evictions, 3u);
  EXPECT_EQ(cache.eviction_count(), 3u);
  EXPECT_EQ(cache.insertion_count(), 4u);
}

TEST(Cache, ForceMissInvalidatesAndReplaces) {
  Cache cache = make_cache(10);
  access_sized(cache, 1, 5);
  const auto outcome =
      cache.access(1, 7, DocumentClass::kHtml, /*force_miss=*/true);
  EXPECT_EQ(outcome.kind, Cache::AccessKind::kMiss);
  const CacheObject* obj = cache.find(1);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->size, 7u);
  EXPECT_EQ(obj->reference_count, 1u);  // fresh object, not a hit
  EXPECT_EQ(cache.used_bytes(), 7u);
  ASSERT_TRUE(cache.check_invariants());
}

TEST(Cache, ForceMissOnAbsentIsPlainMiss) {
  Cache cache = make_cache(10);
  const auto outcome =
      cache.access(1, 5, DocumentClass::kOther, /*force_miss=*/true);
  EXPECT_EQ(outcome.kind, Cache::AccessKind::kMiss);
  EXPECT_TRUE(cache.contains(1));
}

TEST(Cache, ForceMissOversizedDropsResidentCopy) {
  // A modified document that no longer fits must not leave the stale copy.
  Cache cache = make_cache(10);
  access_sized(cache, 1, 5);
  const auto outcome =
      cache.access(1, 20, DocumentClass::kOther, /*force_miss=*/true);
  EXPECT_EQ(outcome.kind, Cache::AccessKind::kBypass);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(Cache, HitUpdatesMetadata) {
  Cache cache = make_cache(10);
  access_sized(cache, 1, 5);
  access_sized(cache, 1, 5);
  access_sized(cache, 1, 5);
  const CacheObject* obj = cache.find(1);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->reference_count, 3u);
  EXPECT_EQ(obj->insert_index, 1u);
  EXPECT_EQ(obj->previous_access, 2u);
  EXPECT_EQ(obj->last_access, 3u);
}

TEST(Cache, EraseRemovesWithoutEvictionCount) {
  Cache cache = make_cache(10);
  access_sized(cache, 1, 5);
  cache.erase(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.eviction_count(), 0u);
  cache.erase(1);  // idempotent
  ASSERT_TRUE(cache.check_invariants());
}

TEST(Cache, PerClassOccupancyTracked) {
  Cache cache = make_cache(100);
  cache.access(1, 10, DocumentClass::kImage);
  cache.access(2, 20, DocumentClass::kImage);
  cache.access(3, 30, DocumentClass::kMultiMedia);
  const Occupancy occ = cache.occupancy();
  EXPECT_EQ(occ.total_objects, 3u);
  EXPECT_EQ(occ.total_bytes, 60u);
  EXPECT_DOUBLE_EQ(occ.object_fraction(DocumentClass::kImage), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(occ.byte_fraction(DocumentClass::kImage), 0.5);
  EXPECT_DOUBLE_EQ(occ.byte_fraction(DocumentClass::kMultiMedia), 0.5);
  EXPECT_DOUBLE_EQ(occ.byte_fraction(DocumentClass::kHtml), 0.0);
}

TEST(Cache, OccupancyFractionsOnEmptyCacheAreZero) {
  Cache cache = make_cache(10);
  const Occupancy occ = cache.occupancy();
  EXPECT_EQ(occ.object_fraction(DocumentClass::kImage), 0.0);
  EXPECT_EQ(occ.byte_fraction(DocumentClass::kImage), 0.0);
}

TEST(Cache, TouchRecordsHitWithoutInsert) {
  Cache cache = make_cache(10);
  EXPECT_FALSE(cache.touch(1));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.put(1, 5, DocumentClass::kHtml));
  EXPECT_TRUE(cache.touch(1));
  EXPECT_EQ(cache.find(1)->reference_count, 2u);
}

TEST(Cache, PutReplacesResident) {
  Cache cache = make_cache(10);
  cache.put(1, 5, DocumentClass::kHtml);
  EXPECT_TRUE(cache.put(1, 8, DocumentClass::kHtml));
  EXPECT_EQ(cache.used_bytes(), 8u);
  EXPECT_EQ(cache.find(1)->reference_count, 1u);
}

TEST(Cache, PutOversizedReturnsFalse) {
  Cache cache = make_cache(10);
  EXPECT_FALSE(cache.put(1, 11, DocumentClass::kHtml));
  EXPECT_FALSE(cache.contains(1));
}

class RecordingListener final : public RemovalListener {
 public:
  void on_removal(const CacheObject& obj, RemovalCause cause) override {
    removed.push_back(obj.id);
    causes.push_back(cause);
  }
  std::vector<ObjectId> removed;
  std::vector<RemovalCause> causes;
};

TEST(Cache, RemovalListenerSeesEveryDeparture) {
  Cache cache = make_cache(3);
  RecordingListener listener;
  std::vector<ObjectId>& removed = listener.removed;
  cache.set_removal_listener(&listener);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 4);  // evicts 1
  cache.erase(3);    // explicit removal
  cache.access(2, 1, DocumentClass::kOther, /*force_miss=*/true);  // replace
  ASSERT_EQ(removed.size(), 3u);
  EXPECT_EQ(removed[0], 1u);
  EXPECT_EQ(removed[1], 3u);
  EXPECT_EQ(removed[2], 2u);
  EXPECT_EQ(listener.causes[0], RemovalCause::kEviction);
  EXPECT_EQ(listener.causes[1], RemovalCause::kInvalidation);
  EXPECT_EQ(listener.causes[2], RemovalCause::kInvalidation);
}

TEST(Cache, ResetClearsEverything) {
  Cache cache = make_cache(10);
  access_sized(cache, 1, 5);
  access_sized(cache, 2, 5);
  access_sized(cache, 3, 5);
  cache.reset();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.object_count(), 0u);
  EXPECT_EQ(cache.clock(), 0u);
  EXPECT_EQ(cache.eviction_count(), 0u);
  EXPECT_FALSE(cache.contains(1));
  // Still usable after reset.
  EXPECT_EQ(access_sized(cache, 1, 5).kind, Cache::AccessKind::kMiss);
  ASSERT_TRUE(cache.check_invariants());
}

TEST(Cache, ResizeGrowsWithoutEvictingAndShrinksThroughPolicy) {
  Cache cache = make_cache(10);
  RecordingListener listener;
  cache.set_removal_listener(&listener);
  access_sized(cache, 1, 4);
  access_sized(cache, 2, 4);
  access_sized(cache, 3, 2);

  // Growing never touches the contents.
  EXPECT_EQ(cache.resize(100), 0u);
  EXPECT_EQ(cache.capacity_bytes(), 100u);
  EXPECT_EQ(cache.object_count(), 3u);
  EXPECT_TRUE(listener.removed.empty());

  // Shrinking evicts through the replacement policy (LRU: oldest first),
  // counts the departures as ordinary evictions, and notifies the listener.
  const std::uint64_t before = cache.eviction_count();
  EXPECT_EQ(cache.resize(5), 2u);  // drops 1 then 2; 3 (2 bytes) fits
  EXPECT_EQ(cache.capacity_bytes(), 5u);
  EXPECT_EQ(cache.eviction_count(), before + 2);
  EXPECT_TRUE(cache.contains(3));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  ASSERT_EQ(listener.removed.size(), 2u);
  EXPECT_EQ(listener.removed[0], 1u);
  EXPECT_EQ(listener.removed[1], 2u);
  EXPECT_EQ(listener.causes[0], RemovalCause::kEviction);
  EXPECT_EQ(listener.causes[1], RemovalCause::kEviction);
  ASSERT_TRUE(cache.check_invariants());

  // Still fully usable at the new capacity.
  EXPECT_EQ(access_sized(cache, 4, 3).kind, Cache::AccessKind::kMiss);
  EXPECT_LE(cache.used_bytes(), 5u);
}

TEST(Cache, ClockCountsAccesses) {
  Cache cache = make_cache(10);
  access(cache, 1);
  access(cache, 1);
  access_sized(cache, 2, 100);  // bypass still advances the clock
  EXPECT_EQ(cache.clock(), 3u);
}

}  // namespace
}  // namespace webcache::cache
