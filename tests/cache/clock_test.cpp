#include "cache/clock.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "policy_test_util.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::unit_cache;

TEST(Clock, UnreferencedOneTimersEvictFirst) {
  // Objects enter unarmed, so a never-hit object loses to hit ones even
  // though it is not the oldest.
  Cache cache = unit_cache(std::make_unique<ClockPolicy>(), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 2);  // arm 2
  access(cache, 3);  // arm 3
  access(cache, 4);  // hand passes 1 (unarmed) -> evicted
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Clock, SecondChanceRecyclesArmedObjects) {
  Cache cache = unit_cache(std::make_unique<ClockPolicy>(), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 1);  // arm the oldest
  access(cache, 4);  // hand: 1 armed -> recycled; 2 unarmed -> evicted
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Clock, ReferenceBitIsCappedAtOne) {
  // Many hits still grant only one extra pass for k = 1: after the hand
  // strips the bit once, the next pass evicts.
  Cache cache = unit_cache(std::make_unique<ClockPolicy>(), 2);
  access(cache, 1);
  for (int i = 0; i < 10; ++i) access(cache, 1);
  access(cache, 2);
  access(cache, 3);  // hand: 1 recycled (bit stripped), 2 evicted
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  access(cache, 4);  // hand: 1 now unarmed -> evicted
  EXPECT_FALSE(cache.contains(1));
}

TEST(DelayClock, CounterGrantsMultipleChances) {
  // k = 2: two hits buy two hand passes; a single hit under plain CLOCK
  // would only buy one.
  Cache cache = unit_cache(std::make_unique<DelayClockPolicy>(2), 2);
  access(cache, 1);
  access(cache, 1);
  access(cache, 1);  // counter at cap 2
  access(cache, 2);
  access(cache, 3);  // pass 1: counter 2 -> 1, evict 2
  EXPECT_TRUE(cache.contains(1));
  access(cache, 4);  // pass 2: counter 1 -> 0, evict 3
  EXPECT_TRUE(cache.contains(1));
  access(cache, 5);  // pass 3: counter 0 -> 1 finally evicted
  EXPECT_FALSE(cache.contains(1));
}

TEST(Clock, DenseAndSparseCountersAgree) {
  auto run = [](bool dense) {
    auto policy = std::make_unique<ClockPolicy>();
    if (dense) policy->reserve_ids(128);
    Cache cache(32, std::move(policy));
    util::Rng rng(21);
    std::uint64_t hits = 0;
    for (int step = 0; step < 20000; ++step) {
      if (access(cache, rng.below(128))) ++hits;
    }
    return hits;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Clock, RejectsZeroCounterMax) {
  EXPECT_THROW(DelayClockPolicy(0), std::invalid_argument);
}

TEST(Clock, Names) {
  EXPECT_EQ(ClockPolicy().name(), "CLOCK");
  EXPECT_EQ(DelayClockPolicy(8).name(), "DELAY-CLOCK:k=8");
  EXPECT_EQ(ClockPolicy().counter_max(), 1u);
  EXPECT_EQ(DelayClockPolicy(8).counter_max(), 8u);
}

}  // namespace
}  // namespace webcache::cache
