#include "cache/cost_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::cache {
namespace {

TEST(ConstantCost, AlwaysOne) {
  ConstantCostModel model;
  EXPECT_EQ(model.cost(0), 1.0);
  EXPECT_EQ(model.cost(1), 1.0);
  EXPECT_EQ(model.cost(1'000'000'000), 1.0);
  EXPECT_EQ(model.name(), "constant");
}

TEST(PacketCost, PaperFormula) {
  // c(p) = 2 + s(p)/536 (paper, Section 3).
  PacketCostModel model;
  EXPECT_DOUBLE_EQ(model.cost(0), 2.0);
  EXPECT_DOUBLE_EQ(model.cost(536), 3.0);
  EXPECT_DOUBLE_EQ(model.cost(1072), 4.0);
  EXPECT_DOUBLE_EQ(model.cost(268), 2.5);
  EXPECT_EQ(model.name(), "packet");
}

TEST(PacketCost, GrowsLinearlyWithSize) {
  PacketCostModel model;
  const double c1 = model.cost(100000);
  const double c2 = model.cost(200000);
  EXPECT_NEAR(c2 - c1, 100000.0 / 536.0, 1e-9);
}

TEST(PacketCost, CostPerByteFlattensForLargeDocuments) {
  // The property that makes GDS(packet)/GD*(packet) stop discriminating
  // large documents: c(p)/s(p) tends to 1/536 as s grows.
  PacketCostModel model;
  const double small_ratio = model.cost(100) / 100.0;
  const double large_ratio = model.cost(100'000'000) / 100'000'000.0;
  EXPECT_GT(small_ratio, 10 * large_ratio);
  EXPECT_NEAR(large_ratio, 1.0 / 536.0, 1e-6);
}

TEST(LatencyCost, SetupPlusTransferTime) {
  LatencyCostModel model(150.0, 400.0);
  EXPECT_DOUBLE_EQ(model.cost(0), 150.0);
  EXPECT_DOUBLE_EQ(model.cost(4000), 160.0);
  EXPECT_DOUBLE_EQ(model.cost(400000), 1150.0);
  EXPECT_EQ(model.name(), "latency");
}

TEST(LatencyCost, RejectsInvalidParameters) {
  EXPECT_THROW(LatencyCostModel(-1.0, 400.0), std::invalid_argument);
  EXPECT_THROW(LatencyCostModel(150.0, 0.0), std::invalid_argument);
}

TEST(LatencyCost, SetupDominatesSmallDocuments) {
  // Like the packet model, cost-per-byte falls with size, but the setup
  // term makes small documents relatively expensive to re-fetch — the
  // latency-reduction objective.
  LatencyCostModel model;
  const double small = model.cost(1000) / 1000.0;
  const double large = model.cost(10'000'000) / 10'000'000.0;
  EXPECT_GT(small, 10 * large);
}

TEST(Factory, MakesAllModels) {
  EXPECT_EQ(make_cost_model(CostModelKind::kConstant)->name(), "constant");
  EXPECT_EQ(make_cost_model(CostModelKind::kPacket)->name(), "packet");
  EXPECT_EQ(make_cost_model(CostModelKind::kLatency)->name(), "latency");
}

TEST(Factory, FromName) {
  EXPECT_EQ(cost_model_from_name("constant"), CostModelKind::kConstant);
  EXPECT_EQ(cost_model_from_name("1"), CostModelKind::kConstant);
  EXPECT_EQ(cost_model_from_name("packet"), CostModelKind::kPacket);
  EXPECT_EQ(cost_model_from_name("latency"), CostModelKind::kLatency);
  EXPECT_THROW(cost_model_from_name("rtt"), std::invalid_argument);
}

TEST(Factory, SuffixNaming) {
  EXPECT_EQ(cost_model_suffix(CostModelKind::kConstant), "1");
  EXPECT_EQ(cost_model_suffix(CostModelKind::kPacket), "packet");
  EXPECT_EQ(cost_model_suffix(CostModelKind::kLatency), "latency");
}

}  // namespace
}  // namespace webcache::cache
