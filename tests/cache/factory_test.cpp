#include "cache/factory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::cache {
namespace {

TEST(Factory, MakesEveryKind) {
  for (const PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kSize,
        PolicyKind::kLfu, PolicyKind::kLfuDa, PolicyKind::kGds,
        PolicyKind::kGdsf, PolicyKind::kGdStar}) {
    PolicySpec spec;
    spec.kind = kind;
    const auto policy = make_policy(spec);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(Factory, PaperNamesRoundTrip) {
  for (const char* name : {"LRU", "LFU-DA", "GDS(1)", "GDS(packet)", "GD*(1)",
                           "GD*(packet)", "FIFO", "SIZE", "LFU", "GDSF(1)",
                           "GDSF(packet)"}) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name) << name;
  }
}

TEST(Factory, SpecFromNameSetsCostModel) {
  EXPECT_EQ(policy_spec_from_name("GDS(1)").cost_model,
            CostModelKind::kConstant);
  EXPECT_EQ(policy_spec_from_name("GDS(packet)").cost_model,
            CostModelKind::kPacket);
  EXPECT_EQ(policy_spec_from_name("GD*(packet)").kind, PolicyKind::kGdStar);
  EXPECT_EQ(policy_spec_from_name("GDSF(1)").kind, PolicyKind::kGdsf);
}

TEST(Factory, UnknownNamesRejected) {
  EXPECT_THROW(policy_spec_from_name(""), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("lru"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("GDS"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("GDS(rtt)"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("GD*"), std::invalid_argument);
}

TEST(Factory, PaperPolicySetOrderAndModels) {
  const auto constant = paper_policy_set(CostModelKind::kConstant);
  ASSERT_EQ(constant.size(), 4u);
  EXPECT_EQ(constant[0].kind, PolicyKind::kLru);
  EXPECT_EQ(constant[1].kind, PolicyKind::kLfuDa);
  EXPECT_EQ(constant[2].kind, PolicyKind::kGds);
  EXPECT_EQ(constant[3].kind, PolicyKind::kGdStar);
  EXPECT_EQ(make_policy(constant[2])->name(), "GDS(1)");

  const auto packet = paper_policy_set(CostModelKind::kPacket);
  EXPECT_EQ(make_policy(packet[2])->name(), "GDS(packet)");
  EXPECT_EQ(make_policy(packet[3])->name(), "GD*(packet)");
  // LRU / LFU-DA ignore the cost model; their names are unchanged.
  EXPECT_EQ(make_policy(packet[0])->name(), "LRU");
  EXPECT_EQ(make_policy(packet[1])->name(), "LFU-DA");
}

TEST(Factory, LazyFamilyNamesRoundTrip) {
  // The canonical display names are exactly what the parser accepts.
  for (const char* name :
       {"CLOCK", "DELAY-CLOCK:k=8", "PROB-LRU:p=0.1", "DELAY-LRU:k=4",
        "BATCH-LRU:batch=32", "RANDOM"}) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name) << name;
  }
}

TEST(Factory, LazyFamilyBaseNamesAreCaseInsensitive) {
  EXPECT_EQ(make_policy("random")->name(), "RANDOM");
  EXPECT_EQ(make_policy("Clock")->name(), "CLOCK");
  EXPECT_EQ(make_policy("delay-clock:k=8")->name(), "DELAY-CLOCK:k=8");
  EXPECT_EQ(make_policy("prob-lru:p=0.1")->name(), "PROB-LRU:p=0.1");
  EXPECT_EQ(make_policy("DELAY-lru:K=4")->name(), "DELAY-LRU:k=4");
  EXPECT_EQ(make_policy("batch-lru:BATCH=32")->name(), "BATCH-LRU:batch=32");
  // ...but the classic paper names stay exact-match (pinned above:
  // "lru" is rejected), so the relaxation is scoped to the new family.
}

TEST(Factory, LazyFamilySpecFields) {
  EXPECT_EQ(policy_spec_from_name("RANDOM").kind, PolicyKind::kRandom);
  EXPECT_EQ(policy_spec_from_name("RANDOM:seed=9").random_seed, 9u);
  EXPECT_EQ(policy_spec_from_name("CLOCK").kind, PolicyKind::kClock);
  EXPECT_EQ(policy_spec_from_name("DELAY-CLOCK:k=5").clock_counter_max, 5u);
  EXPECT_DOUBLE_EQ(policy_spec_from_name("PROB-LRU:p=0.125").promote_probability,
                   0.125);
  EXPECT_EQ(policy_spec_from_name("PROB-LRU:p=0.5,seed=3").random_seed, 3u);
  EXPECT_EQ(policy_spec_from_name("DELAY-LRU:k=7").promote_interval, 7u);
  EXPECT_EQ(policy_spec_from_name("BATCH-LRU:batch=128").promotion_batch, 128u);
}

// A bogus parameter string must be diagnosed with the policy and the
// offending field named, not swallowed into a generic "unknown policy".
void expect_error_mentions(const char* name, const char* fragment) {
  try {
    policy_spec_from_name(name);
    FAIL() << name << " was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << name << " error: " << e.what();
  }
}

TEST(Factory, LazyFamilyBadParametersDiagnosed) {
  expect_error_mentions("PROB-LRU:p=1.5", "'p'");
  expect_error_mentions("PROB-LRU:p=1.5", "1.5");
  expect_error_mentions("PROB-LRU:p=banana", "'p'");
  expect_error_mentions("PROB-LRU:probability=0.5", "probability");
  expect_error_mentions("DELAY-CLOCK:k=0", "'k'");
  expect_error_mentions("DELAY-LRU:k=-3", "'k'");
  expect_error_mentions("BATCH-LRU:batch=zero", "'batch'");
  expect_error_mentions("BATCH-LRU:batch=", "batch=");
  expect_error_mentions("RANDOM:seed=abc", "'seed'");
  expect_error_mentions("RANDOM:k=2", "'k'");
  expect_error_mentions("CLOCK:k=2", "'k'");  // CLOCK takes no parameters
  expect_error_mentions("DELAY-CLOCK:=3", "=3");
}

TEST(Factory, FixedBetaSpecHonored) {
  PolicySpec spec;
  spec.kind = PolicyKind::kGdStar;
  spec.fixed_beta = 0.5;
  const auto policy = make_policy(spec);
  EXPECT_NE(policy->name().find("beta"), std::string_view::npos);
}

}  // namespace
}  // namespace webcache::cache
