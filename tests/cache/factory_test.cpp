#include "cache/factory.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::cache {
namespace {

TEST(Factory, MakesEveryKind) {
  for (const PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kFifo, PolicyKind::kSize,
        PolicyKind::kLfu, PolicyKind::kLfuDa, PolicyKind::kGds,
        PolicyKind::kGdsf, PolicyKind::kGdStar}) {
    PolicySpec spec;
    spec.kind = kind;
    const auto policy = make_policy(spec);
    ASSERT_NE(policy, nullptr);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(Factory, PaperNamesRoundTrip) {
  for (const char* name : {"LRU", "LFU-DA", "GDS(1)", "GDS(packet)", "GD*(1)",
                           "GD*(packet)", "FIFO", "SIZE", "LFU", "GDSF(1)",
                           "GDSF(packet)"}) {
    const auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name) << name;
  }
}

TEST(Factory, SpecFromNameSetsCostModel) {
  EXPECT_EQ(policy_spec_from_name("GDS(1)").cost_model,
            CostModelKind::kConstant);
  EXPECT_EQ(policy_spec_from_name("GDS(packet)").cost_model,
            CostModelKind::kPacket);
  EXPECT_EQ(policy_spec_from_name("GD*(packet)").kind, PolicyKind::kGdStar);
  EXPECT_EQ(policy_spec_from_name("GDSF(1)").kind, PolicyKind::kGdsf);
}

TEST(Factory, UnknownNamesRejected) {
  EXPECT_THROW(policy_spec_from_name(""), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("lru"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("GDS"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("GDS(rtt)"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("GD*"), std::invalid_argument);
}

TEST(Factory, PaperPolicySetOrderAndModels) {
  const auto constant = paper_policy_set(CostModelKind::kConstant);
  ASSERT_EQ(constant.size(), 4u);
  EXPECT_EQ(constant[0].kind, PolicyKind::kLru);
  EXPECT_EQ(constant[1].kind, PolicyKind::kLfuDa);
  EXPECT_EQ(constant[2].kind, PolicyKind::kGds);
  EXPECT_EQ(constant[3].kind, PolicyKind::kGdStar);
  EXPECT_EQ(make_policy(constant[2])->name(), "GDS(1)");

  const auto packet = paper_policy_set(CostModelKind::kPacket);
  EXPECT_EQ(make_policy(packet[2])->name(), "GDS(packet)");
  EXPECT_EQ(make_policy(packet[3])->name(), "GD*(packet)");
  // LRU / LFU-DA ignore the cost model; their names are unchanged.
  EXPECT_EQ(make_policy(packet[0])->name(), "LRU");
  EXPECT_EQ(make_policy(packet[1])->name(), "LFU-DA");
}

TEST(Factory, FixedBetaSpecHonored) {
  PolicySpec spec;
  spec.kind = PolicyKind::kGdStar;
  spec.fixed_beta = 0.5;
  const auto policy = make_policy(spec);
  EXPECT_NE(policy->name().find("beta"), std::string_view::npos);
}

}  // namespace
}  // namespace webcache::cache
