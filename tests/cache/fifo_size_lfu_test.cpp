#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/fifo.hpp"
#include "cache/lfu.hpp"
#include "cache/size_policy.hpp"
#include "policy_test_util.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::access_sized;
using testutil::unit_cache;

// --------------------------------------------------------------- FIFO

TEST(Fifo, EvictsInInsertionOrderRegardlessOfHits) {
  Cache cache = unit_cache(std::make_unique<FifoPolicy>(), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  EXPECT_TRUE(access(cache, 1));  // hit must NOT refresh position
  access(cache, 4);               // evicts 1 anyway
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Fifo, EraseOutOfOrderThenEvict) {
  Cache cache = unit_cache(std::make_unique<FifoPolicy>(), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  cache.erase(2);  // tombstone in the middle of the queue
  access(cache, 4);
  access(cache, 5);  // must evict 1 (oldest), skipping the tombstone
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_TRUE(cache.contains(5));
}

TEST(Fifo, ReinsertAfterEviction) {
  Cache cache = unit_cache(std::make_unique<FifoPolicy>(), 2);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);  // evicts 1
  access(cache, 1);  // reinserted, now newest
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(1));
}

TEST(Fifo, ProtocolViolations) {
  FifoPolicy policy;
  CacheObject obj;
  obj.id = 1;
  policy.on_insert(obj);
  EXPECT_THROW(policy.on_insert(obj), std::logic_error);
  EXPECT_THROW(policy.on_evict(99), std::logic_error);
}

// --------------------------------------------------------------- SIZE

TEST(Size, EvictsLargestFirst) {
  Cache cache(100, std::make_unique<SizePolicy>());
  access_sized(cache, 1, 10);
  access_sized(cache, 2, 50);
  access_sized(cache, 3, 30);
  access_sized(cache, 4, 20);  // needs 10 free: evicts 2 (largest)
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Size, EvictsRepeatedlyLargest) {
  Cache cache(130, std::make_unique<SizePolicy>());
  access_sized(cache, 1, 40);
  access_sized(cache, 2, 35);
  access_sized(cache, 3, 25);
  access_sized(cache, 4, 90);  // evicts 1 then 2 (40 + 35 freed)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Size, EqualSizesBreakFifo) {
  Cache cache(3, std::make_unique<SizePolicy>());
  access_sized(cache, 1, 1);
  access_sized(cache, 2, 1);
  access_sized(cache, 3, 1);
  access_sized(cache, 4, 1);  // all equal: evicts earliest-inserted (1)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Size, HitsDoNotChangeOrder) {
  Cache cache(100, std::make_unique<SizePolicy>());
  access_sized(cache, 1, 60);
  access_sized(cache, 2, 30);
  access_sized(cache, 1, 60);  // hit on the large object
  access_sized(cache, 3, 40);  // still evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

// ---------------------------------------------------------------- LFU

TEST(Lfu, EvictsLeastFrequentlyUsed) {
  Cache cache = unit_cache(std::make_unique<LfuPolicy>(), 3);
  access(cache, 1);
  access(cache, 1);
  access(cache, 2);
  access(cache, 2);
  access(cache, 3);  // count 1
  access(cache, 4);  // evicts 3
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lfu, TiesBreakFifo) {
  Cache cache = unit_cache(std::make_unique<LfuPolicy>(), 2);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);  // 1 and 2 both count 1 -> evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(Lfu, CachePollution) {
  // The defect that motivates LFU-DA: documents hot in the past never age
  // out, so a new working set cannot establish itself.
  Cache cache = unit_cache(std::make_unique<LfuPolicy>(), 2);
  for (int i = 0; i < 100; ++i) {
    access(cache, 1);
    access(cache, 2);
  }
  // A new phase with documents 3 and 4: after the first insertion displaces
  // one incumbent, the newcomers (count 1) only evict each other and never
  // both fit, while the remaining high-count incumbent squats forever.
  int new_phase_hits = 0;
  for (int i = 0; i < 50; ++i) {
    if (access(cache, 3)) ++new_phase_hits;
    if (access(cache, 4)) ++new_phase_hits;
  }
  EXPECT_EQ(new_phase_hits, 0);
  EXPECT_TRUE(cache.contains(2));
}

}  // namespace
}  // namespace webcache::cache
