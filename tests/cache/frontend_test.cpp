#include "cache/frontend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/factory.hpp"

namespace webcache::cache {
namespace {

using trace::DocumentClass;

TEST(SingleCacheFrontend, PassesThroughAccessAndAccounting) {
  SingleCacheFrontend frontend(100, make_policy("LRU"));
  EXPECT_EQ(frontend.capacity_bytes(), 100u);
  EXPECT_EQ(frontend.description(), "LRU");

  EXPECT_EQ(frontend.access(1, 40, DocumentClass::kImage, false).kind,
            Cache::AccessKind::kMiss);
  EXPECT_TRUE(frontend.contains(1));
  EXPECT_EQ(frontend.access(1, 40, DocumentClass::kImage, false).kind,
            Cache::AccessKind::kHit);
  EXPECT_EQ(frontend.occupancy().total_bytes, 40u);
  EXPECT_EQ(frontend.eviction_count(), 0u);

  // Force evictions and confirm the counter propagates.
  frontend.access(2, 40, DocumentClass::kHtml, false);
  frontend.access(3, 40, DocumentClass::kHtml, false);
  EXPECT_GT(frontend.eviction_count(), 0u);
}

TEST(SingleCacheFrontend, AppliesAdmissionLimit) {
  SingleCacheFrontend frontend(1000, make_policy("LRU"),
                               /*admission_limit_bytes=*/100);
  EXPECT_EQ(frontend.access(1, 101, DocumentClass::kOther, false).kind,
            Cache::AccessKind::kBypass);
  EXPECT_EQ(frontend.access(2, 100, DocumentClass::kOther, false).kind,
            Cache::AccessKind::kMiss);
}

TEST(SingleCacheFrontend, ForceMissPropagates) {
  SingleCacheFrontend frontend(1000, make_policy("LFU-DA"));
  frontend.access(1, 50, DocumentClass::kHtml, false);
  const auto outcome = frontend.access(1, 60, DocumentClass::kHtml, true);
  EXPECT_EQ(outcome.kind, Cache::AccessKind::kMiss);
  EXPECT_EQ(frontend.occupancy().total_bytes, 60u);
}

TEST(SingleCacheFrontend, ReserveDenseIdsForwardsToCache) {
  SingleCacheFrontend frontend(1000, make_policy("LRU"));
  frontend.reserve_dense_ids(16);
  frontend.access(3, 10, DocumentClass::kHtml, false);
  EXPECT_TRUE(frontend.contains(3));
  // The reservation reached the underlying cache: it is no longer empty, so
  // a second reservation trips the cache's own guard.
  EXPECT_THROW(frontend.reserve_dense_ids(16), std::logic_error);
}

TEST(SingleCacheFrontend, ExposesUnderlyingCache) {
  SingleCacheFrontend frontend(100, make_policy("GDS(1)"));
  frontend.cache().put(9, 10, DocumentClass::kOther);
  EXPECT_TRUE(frontend.contains(9));
  EXPECT_EQ(frontend.description(), "GDS(1)");
}

}  // namespace
}  // namespace webcache::cache
