// Validates the inflation-value implementation of GreedyDual-Size against
// a literal transcription of the published algorithm: "When a document has
// to be replaced, the victim p with H_min = min{H(p)} is chosen ...
// Subsequently, all H values are reduced by H_min." The two formulations
// must produce identical hit/miss sequences on arbitrary workloads.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "cache/cache.hpp"
#include "cache/gds.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

/// Naive GDS(1): O(n) per eviction, explicit global decrement, FIFO tie
/// break by insertion sequence — exactly the paper's pseudo-code.
class NaiveGds {
 public:
  explicit NaiveGds(std::uint64_t capacity) : capacity_(capacity) {}

  bool access(ObjectId id, std::uint64_t size) {
    const auto it = objects_.find(id);
    if (it != objects_.end()) {
      it->second.h = 1.0 / std::max<double>(1.0, static_cast<double>(size));
      return true;
    }
    if (size > capacity_) return false;  // bypass
    while (used_ + size > capacity_) {
      // Find H_min with FIFO tie break.
      ObjectId victim = 0;
      double h_min = 0;
      std::uint64_t oldest = 0;
      bool first = true;
      for (const auto& [oid, obj] : objects_) {
        if (first || obj.h < h_min ||
            (obj.h == h_min && obj.sequence < oldest)) {
          victim = oid;
          h_min = obj.h;
          oldest = obj.sequence;
          first = false;
        }
      }
      used_ -= objects_[victim].size;
      objects_.erase(victim);
      // "all H values are reduced by H_min".
      for (auto& [oid, obj] : objects_) obj.h -= h_min;
    }
    objects_[id] =
        Entry{1.0 / std::max<double>(1.0, static_cast<double>(size)), size,
              next_sequence_++};
    used_ += size;
    return false;
  }

 private:
  struct Entry {
    double h;
    std::uint64_t size;
    std::uint64_t sequence;
  };
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::unordered_map<ObjectId, Entry> objects_;
};

TEST(GdsReference, InflationImplementationMatchesGlobalDecrement) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    NaiveGds naive(2000);
    Cache fast(2000, std::make_unique<GdsPolicy>(CostModelKind::kConstant));
    for (int step = 0; step < 8000; ++step) {
      const ObjectId id = rng.below(120);
      // Deterministic size per id so re-inserts match. Power-of-two sizes
      // keep every H value an exact dyadic rational, so the decrement-based
      // and inflation-based arithmetic agree bit-for-bit and the comparison
      // is not at the mercy of unrelated floating-point rounding.
      const std::uint64_t size = 1ULL << (id % 8);
      const bool naive_hit = naive.access(id, size);
      const bool fast_hit =
          fast.access(id, size, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit;
      ASSERT_EQ(naive_hit, fast_hit) << "seed " << seed << " step " << step;
    }
  }
}

TEST(GdsReference, MatchesOnAdversarialTies) {
  // All equal sizes force constant H values: pure tie-breaking territory.
  NaiveGds naive(10);
  Cache fast(10, std::make_unique<GdsPolicy>(CostModelKind::kConstant));
  util::Rng rng(42);
  for (int step = 0; step < 2000; ++step) {
    const ObjectId id = rng.below(30);
    const bool naive_hit = naive.access(id, 1);
    const bool fast_hit =
        fast.access(id, 1, trace::DocumentClass::kOther).kind ==
        Cache::AccessKind::kHit;
    ASSERT_EQ(naive_hit, fast_hit) << "step " << step;
  }
}

}  // namespace
}  // namespace webcache::cache
