#include "cache/gds.hpp"

#include <gtest/gtest.h>

#include "policy_test_util.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using testutil::access_sized;

TEST(Gds, Names) {
  EXPECT_EQ(GdsPolicy(CostModelKind::kConstant).name(), "GDS(1)");
  EXPECT_EQ(GdsPolicy(CostModelKind::kPacket).name(), "GDS(packet)");
}

TEST(GdsConstant, EvictsLargestUtilityLast) {
  // With c = 1, H = L + 1/size: the largest document has the smallest value
  // and goes first.
  Cache cache(100, std::make_unique<GdsPolicy>(CostModelKind::kConstant));
  access_sized(cache, 1, 10);
  access_sized(cache, 2, 50);
  access_sized(cache, 3, 30);
  access_sized(cache, 4, 20);  // evicts 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(GdsConstant, RecentlyTouchedLargeDocSurvivesStaleSmallDoc) {
  // The Greedy-Dual aging: after enough evictions the inflation L exceeds
  // the stale small document's H, so recency can beat pure size.
  Cache cache(100, std::make_unique<GdsPolicy>(CostModelKind::kConstant));
  access_sized(cache, 1, 4);  // H = 0.25, never touched again
  // Drive the inflation up with a stream of large one-timers.
  ObjectId id = 100;
  for (int i = 0; i < 60; ++i) {
    access_sized(cache, id++, 90);
  }
  // The loop keeps exactly one 90-byte doc resident plus doc 1 (4 bytes)
  // until L + 1/90 exceeds 0.25 ... after enough rounds doc 1 must fall.
  EXPECT_FALSE(cache.contains(1));
}

TEST(GdsConstant, InflationMonotone) {
  GdsPolicy policy(CostModelKind::kConstant);
  EXPECT_EQ(policy.inflation(), 0.0);
  CacheObject a;
  a.id = 1;
  a.size = 4;
  policy.on_insert(a);  // H = 0.25
  policy.on_evict(1);
  EXPECT_DOUBLE_EQ(policy.inflation(), 0.25);
  CacheObject b;
  b.id = 2;
  b.size = 2;
  policy.on_insert(b);  // H = 0.25 + 0.5
  policy.on_evict(2);
  EXPECT_DOUBLE_EQ(policy.inflation(), 0.75);
}

TEST(GdsConstant, EraseOfNonVictimDoesNotInflate) {
  GdsPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 2;  // H = 0.5 (the minimum)
  CacheObject b;
  b.id = 2;
  b.size = 1;  // H = 1.0
  policy.on_insert(a);
  policy.on_insert(b);
  policy.on_erase(2);  // not the minimum: L must stay 0
  EXPECT_EQ(policy.inflation(), 0.0);
  policy.on_evict(1);
  EXPECT_DOUBLE_EQ(policy.inflation(), 0.5);
}

TEST(GdsConstant, HitRestoresValueAboveInflation) {
  // Without the hit, documents b and c would tie at H = 1.0 and the older
  // b would be evicted; the hit lifts b to L + 1/s = 1.5, flipping the
  // victim to c.
  GdsPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 2;  // H = 0.5
  CacheObject b;
  b.id = 2;
  b.size = 1;  // H = 1.0
  policy.on_insert(a);
  policy.on_insert(b);
  EXPECT_EQ(policy.choose_victim(), 1u);
  policy.on_evict(1);  // L = 0.5
  CacheObject c;
  c.id = 3;
  c.size = 2;  // H = 0.5 + 0.5 = 1.0, ties b
  policy.on_insert(c);
  policy.on_hit(b);  // H(b) = 0.5 + 1.0 = 1.5
  EXPECT_EQ(policy.choose_victim(), 3u);
}

TEST(GdsPacket, LargeDocumentsNotDiscriminated) {
  // Under packet cost, c/s -> 1/536 for large docs, so a 1 MB document is
  // worth nearly the same per byte as a 100 KB one — unlike constant cost
  // where it is 10x cheaper to drop.
  GdsPolicy packet(CostModelKind::kPacket);
  CacheObject big;
  big.id = 1;
  big.size = 1 << 20;
  CacheObject medium;
  medium.id = 2;
  medium.size = 100 << 10;
  packet.on_insert(big);
  packet.on_insert(medium);
  // Priorities differ by far less than a factor 2 (they'd differ by ~10x
  // under the constant model).
  // Probe via victim selection on a tiny tie-breaking insertion.
  // Instead compare the policy's ordering: medium has slightly higher c/s.
  EXPECT_EQ(packet.choose_victim(), 1u);

  GdsPolicy constant(CostModelKind::kConstant);
  constant.on_insert(big);
  constant.on_insert(medium);
  EXPECT_EQ(constant.choose_victim(), 1u);
}

TEST(GdsPacket, SmallDocsStillPreferredUnderPacketCost) {
  Cache cache(2000, std::make_unique<GdsPolicy>(CostModelKind::kPacket));
  access_sized(cache, 1, 1000);  // c/s = (2 + 1000/536)/1000
  access_sized(cache, 2, 100);   // much higher c/s
  access_sized(cache, 3, 1500);  // must evict 1 (lowest H)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Gds, ZeroSizeObjectHandled) {
  GdsPolicy policy(CostModelKind::kConstant);
  CacheObject zero;
  zero.id = 1;
  zero.size = 0;
  policy.on_insert(zero);  // must not divide by zero
  EXPECT_EQ(policy.choose_victim(), 1u);
}

TEST(GdsProperty, InflationMonotoneUnderRandomWorkload) {
  // The Greedy-Dual correctness hinge: L only ever rises (it tracks the
  // priority of successive victims, which the heap guarantees are minimal).
  auto policy = std::make_unique<GdsPolicy>(CostModelKind::kPacket);
  GdsPolicy* raw = policy.get();
  Cache cache(5000, std::move(policy));
  util::Rng rng(71);
  double last = 0.0;
  for (int step = 0; step < 20000; ++step) {
    cache.access(rng.below(300), 1 + rng.below(400),
                 trace::DocumentClass::kOther);
    ASSERT_GE(raw->inflation(), last) << "step " << step;
    last = raw->inflation();
  }
  EXPECT_GT(last, 0.0);
}

TEST(Gds, ClearResetsInflation) {
  GdsPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 1;
  policy.on_insert(a);
  policy.on_evict(1);
  EXPECT_GT(policy.inflation(), 0.0);
  policy.clear();
  EXPECT_EQ(policy.inflation(), 0.0);
}

}  // namespace
}  // namespace webcache::cache
