#include "cache/gdsf.hpp"

#include <gtest/gtest.h>

#include "policy_test_util.hpp"

namespace webcache::cache {
namespace {

using testutil::access_sized;

TEST(Gdsf, Names) {
  EXPECT_EQ(GdsfPolicy(CostModelKind::kConstant).name(), "GDSF(1)");
  EXPECT_EQ(GdsfPolicy(CostModelKind::kPacket).name(), "GDSF(packet)");
}

TEST(Gdsf, FrequencyScalesUtility) {
  // Two equal-size docs; the frequently referenced one must survive.
  Cache cache(100, std::make_unique<GdsfPolicy>(CostModelKind::kConstant));
  access_sized(cache, 1, 40);
  access_sized(cache, 2, 40);
  access_sized(cache, 1, 40);  // f(1) = 2
  access_sized(cache, 3, 40);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Gdsf, FrequencyCanOutweighSize) {
  // A popular large document beats an unpopular smaller one once
  // f * c / s crosses over: f=8 at size 50 vs f=1 at size 20.
  Cache cache(90, std::make_unique<GdsfPolicy>(CostModelKind::kConstant));
  access_sized(cache, 1, 50);
  for (int i = 0; i < 7; ++i) access_sized(cache, 1, 50);  // f -> 8, H = 0.16
  access_sized(cache, 2, 20);  // H = 0.05
  access_sized(cache, 3, 30);  // must evict 2, not the popular giant
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(Gdsf, InflationFromEvictedVictim) {
  GdsfPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 10;
  a.reference_count = 5;
  policy.on_insert(a);  // H = 0.5
  policy.on_evict(1);
  EXPECT_DOUBLE_EQ(policy.inflation(), 0.5);
}

TEST(Gdsf, ResetClearsState) {
  GdsfPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 1;
  policy.on_insert(a);
  policy.on_evict(1);
  policy.clear();
  EXPECT_EQ(policy.inflation(), 0.0);
}

}  // namespace
}  // namespace webcache::cache
