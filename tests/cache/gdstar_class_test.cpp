#include "cache/gdstar_class.hpp"

#include <gtest/gtest.h>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"

namespace webcache::cache {
namespace {

using trace::DocumentClass;

TEST(GdStarClass, Names) {
  EXPECT_EQ(GdStarPerClassPolicy(CostModelKind::kConstant).name(), "GD*C(1)");
  EXPECT_EQ(GdStarPerClassPolicy(CostModelKind::kPacket).name(),
            "GD*C(packet)");
}

TEST(GdStarClass, FactoryRoundTrip) {
  EXPECT_EQ(make_policy("GD*C(1)")->name(), "GD*C(1)");
  EXPECT_EQ(make_policy("GD*C(packet)")->name(), "GD*C(packet)");
  EXPECT_EQ(policy_spec_from_name("GD*C(packet)").kind,
            PolicyKind::kGdStarPerClass);
}

TEST(GdStarClass, StartsAtInitialBetaPerClass) {
  GdStarPerClassPolicy policy(CostModelKind::kConstant);
  for (const auto cls : trace::kAllDocumentClasses) {
    EXPECT_DOUBLE_EQ(policy.beta(cls), 1.0);
  }
}

TEST(GdStarClass, EstimatorsAreIndependent) {
  // Feed strongly correlated image hits and uncorrelated HTML hits through
  // a large cache; only the image estimator should move.
  auto policy = std::make_unique<GdStarPerClassPolicy>(
      CostModelKind::kConstant);
  GdStarPerClassPolicy* raw = policy.get();
  Cache cache(1 << 24, std::move(policy));

  util::Rng rng(13);
  std::vector<ObjectId> history;
  for (int i = 0; i < 40000; ++i) {
    // Images: 70% re-reference with small power-law-ish gaps.
    ObjectId img;
    if (!history.empty() && rng.chance(0.7)) {
      const auto gap = 1 + rng.below(std::min<std::uint64_t>(
                               4, history.size()));
      img = history[history.size() - gap];
    } else {
      img = 1'000'000 + rng.below(500000);
    }
    history.push_back(img);
    cache.access(img, 10, DocumentClass::kImage);
    // HTML: uniform over a small population (geometric gaps).
    cache.access(2'000'000 + rng.below(300), 10, DocumentClass::kHtml);
  }
  EXPECT_NE(raw->beta(DocumentClass::kImage), 1.0);
  // The multimedia estimator saw no gaps at all: untouched.
  EXPECT_DOUBLE_EQ(raw->beta(DocumentClass::kMultiMedia), 1.0);
  EXPECT_NE(raw->beta(DocumentClass::kImage),
            raw->beta(DocumentClass::kHtml));
}

TEST(GdStarClass, InflationMechanicsMatchGdStar) {
  GdStarPerClassPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 4;  // utility 0.25, beta 1 -> H = 0.25
  policy.on_insert(a);
  EXPECT_EQ(policy.choose_victim(), 1u);
  policy.on_evict(1);
  EXPECT_DOUBLE_EQ(policy.inflation(), 0.25);
  policy.clear();
  EXPECT_EQ(policy.inflation(), 0.0);
}

TEST(GdStarClass, ImprovesNonImageByteHitRateOnRtp) {
  // The paper's Section 4.4 diagnosis, as a regression: per-class beta must
  // recover application byte hit rate relative to single-beta GD* on the
  // RTP-like workload under packet cost.
  synth::GeneratorOptions gen;
  gen.seed = 42;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::RTP().scaled(0.01), gen)
          .generate();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;

  const sim::SimResult single = sim::simulate(
      t, capacity, policy_spec_from_name("GD*(packet)"), {});
  const sim::SimResult per_class = sim::simulate(
      t, capacity, policy_spec_from_name("GD*C(packet)"), {});
  EXPECT_GT(per_class.of(DocumentClass::kApplication).byte_hit_rate(),
            single.of(DocumentClass::kApplication).byte_hit_rate());
}

}  // namespace
}  // namespace webcache::cache
