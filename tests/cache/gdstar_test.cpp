#include "cache/gdstar.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/gdsf.hpp"
#include "policy_test_util.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using testutil::access_sized;

TEST(GdStar, Names) {
  EXPECT_EQ(GdStarPolicy(CostModelKind::kConstant).name(), "GD*(1)");
  EXPECT_EQ(GdStarPolicy(CostModelKind::kPacket).name(), "GD*(packet)");
}

TEST(GdStar, RejectsNonPositiveFixedBeta) {
  EXPECT_THROW(GdStarPolicy(CostModelKind::kConstant, 0.0),
               std::invalid_argument);
  EXPECT_THROW(GdStarPolicy(CostModelKind::kConstant, -1.0),
               std::invalid_argument);
}

TEST(GdStar, FixedBetaReported) {
  GdStarPolicy policy(CostModelKind::kConstant, 0.5);
  EXPECT_DOUBLE_EQ(policy.beta(), 0.5);
}

TEST(GdStar, WithBetaOneMatchesGdsfEvictionOrder) {
  // H = L + (f c / s)^(1/1) is exactly GDSF: replay a mixed workload on
  // both policies and demand identical victims throughout.
  util::Rng rng(41);
  Cache gdstar(500, std::make_unique<GdStarPolicy>(CostModelKind::kConstant,
                                                   /*fixed_beta=*/1.0));
  Cache gdsf(500, std::make_unique<GdsfPolicy>(CostModelKind::kConstant));
  for (int i = 0; i < 3000; ++i) {
    const ObjectId id = rng.below(100);
    const std::uint64_t size = 10 + (id % 7) * 13;
    const auto a = gdstar.access(id, size, trace::DocumentClass::kOther);
    const auto b = gdsf.access(id, size, trace::DocumentClass::kOther);
    ASSERT_EQ(a.kind, b.kind) << "diverged at step " << i;
    ASSERT_EQ(a.evictions, b.evictions) << "diverged at step " << i;
  }
}

TEST(GdStar, SmallBetaAmplifiesFrequency) {
  // beta = 0.5 squares the utility: a doc with f=3 at size 9 (utility
  // 1/3 -> 1/9) still loses to f=1 at size 2 (utility 1/2 -> 1/4), but wins
  // under beta small when its frequency grows: check the relative ordering
  // flips between beta = 1 and beta = 0.5 for a crafted pair.
  // Pair: A(f=2, s=6) utility 1/3; B(f=1, s=2) utility 1/2.
  //   beta=1:   A=0.333 < B=0.5   -> victim A
  //   beta=0.5: A=0.111 < B=0.25  -> victim A (ordering preserved)
  // Pair that flips: A(f=4, s=2) utility 2; B(f=1, s=1) utility 1.
  //   both > 1 so exponent 2 amplifies A's lead; use C(f=2,s=4)=0.5 vs
  //   D(f=3,s=5)=0.6: beta=1 victim C; beta=0.5: C=0.25 vs D=0.36, victim C.
  // Sub-unit utilities keep order under powers; the *mixture* with the
  // inflation is where beta matters. Verify the direct formula instead.
  GdStarPolicy half(CostModelKind::kConstant, 0.5);
  CacheObject a;
  a.id = 1;
  a.size = 4;
  a.reference_count = 1;  // utility 0.25 -> H = 0.0625
  CacheObject b;
  b.id = 2;
  b.size = 3;
  b.reference_count = 1;  // utility 0.333 -> H = 0.111
  half.on_insert(a);
  half.on_insert(b);
  EXPECT_EQ(half.choose_victim(), 1u);
  half.on_evict(1);
  // Inflation L = 0.0625: a fresh doc with utility u enters at L + u^2.
  EXPECT_DOUBLE_EQ(half.inflation(), 0.0625);
}

TEST(GdStar, LargeBetaCompressesUtilitySpread) {
  // With beta = 2, utilities 0.25 and 0.0625 map to 0.5 and 0.25: the gap
  // shrinks so the inflation (recency) dominates sooner. Verify the H
  // values via inflation checkpoints.
  GdStarPolicy two(CostModelKind::kConstant, 2.0);
  CacheObject a;
  a.id = 1;
  a.size = 16;  // utility 1/16 -> sqrt = 0.25
  CacheObject b;
  b.id = 2;
  b.size = 4;  // utility 1/4 -> sqrt = 0.5
  two.on_insert(a);
  two.on_insert(b);
  EXPECT_EQ(two.choose_victim(), 1u);
  two.on_evict(1);
  EXPECT_DOUBLE_EQ(two.inflation(), 0.25);
}

TEST(GdStar, FrequencyRewardsResidentDocument) {
  Cache cache(100,
              std::make_unique<GdStarPolicy>(CostModelKind::kConstant, 1.0));
  access_sized(cache, 1, 40);
  access_sized(cache, 2, 40);
  access_sized(cache, 1, 40);
  access_sized(cache, 1, 40);  // f(1) = 3
  access_sized(cache, 3, 40);  // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(GdStar, OnlineBetaLearnsFromHits) {
  // Feed a strongly correlated reference stream through a cache large
  // enough that every re-reference is a hit; the online estimator must move
  // away from its initial value.
  BetaEstimator::Options opts;
  opts.initial_beta = 1.0;
  opts.refit_interval = 512;
  opts.min_samples = 256;
  auto policy = std::make_unique<GdStarPolicy>(CostModelKind::kConstant,
                                               std::nullopt, opts);
  GdStarPolicy* policy_ptr = policy.get();
  Cache cache(1 << 20, std::move(policy));

  util::Rng rng(47);
  util::PowerLawGapDistribution gaps(256, 1.6);
  std::vector<ObjectId> history;
  for (int i = 0; i < 20000; ++i) {
    ObjectId id;
    if (!history.empty() && rng.chance(0.8)) {
      const auto gap =
          std::min<std::uint64_t>(gaps.sample(rng), history.size());
      id = history[history.size() - gap];
    } else {
      id = 1000000 + rng.below(100000);  // fresh document
    }
    history.push_back(id);
    cache.access(id, 10, trace::DocumentClass::kOther);
  }
  EXPECT_NE(policy_ptr->beta(), 1.0);
  EXPECT_GT(policy_ptr->beta(), 0.1);
  EXPECT_LE(policy_ptr->beta(), 2.0);
}

TEST(GdStar, ZeroSizeObjectHandled) {
  GdStarPolicy policy(CostModelKind::kConstant, 0.5);
  CacheObject zero;
  zero.id = 1;
  zero.size = 0;
  policy.on_insert(zero);
  EXPECT_EQ(policy.choose_victim(), 1u);
}

TEST(GdStarProperty, InflationMonotoneUnderRandomWorkload) {
  auto policy = std::make_unique<GdStarPolicy>(CostModelKind::kPacket);
  GdStarPolicy* raw = policy.get();
  Cache cache(5000, std::move(policy));
  util::Rng rng(73);
  double last = 0.0;
  for (int step = 0; step < 20000; ++step) {
    cache.access(rng.below(300), 1 + rng.below(400),
                 trace::DocumentClass::kOther);
    ASSERT_GE(raw->inflation(), last) << "step " << step;
    last = raw->inflation();
  }
  EXPECT_GT(last, 0.0);
}

TEST(GdStar, ClearResetsEverything) {
  GdStarPolicy policy(CostModelKind::kConstant);
  CacheObject a;
  a.id = 1;
  a.size = 1;
  policy.on_insert(a);
  policy.on_evict(1);
  EXPECT_GT(policy.inflation(), 0.0);
  policy.clear();
  EXPECT_EQ(policy.inflation(), 0.0);
}

}  // namespace
}  // namespace webcache::cache
