#include "cache/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using Heap = IndexedMinHeap<std::uint64_t, double>;

TEST(IndexedHeap, EmptyBehaviour) {
  Heap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_THROW(h.top(), std::logic_error);
  EXPECT_THROW(h.pop(), std::logic_error);
}

TEST(IndexedHeap, PushPopOrdersByPriority) {
  Heap h;
  h.push(1, 5.0);
  h.push(2, 1.0);
  h.push(3, 3.0);
  EXPECT_EQ(h.pop().key, 2u);
  EXPECT_EQ(h.pop().key, 3u);
  EXPECT_EQ(h.pop().key, 1u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, DuplicateKeyThrows) {
  Heap h;
  h.push(1, 1.0);
  EXPECT_THROW(h.push(1, 2.0), std::logic_error);
}

TEST(IndexedHeap, TieBreaksFifo) {
  Heap h;
  h.push(10, 1.0);
  h.push(20, 1.0);
  h.push(30, 1.0);
  EXPECT_EQ(h.pop().key, 10u);
  EXPECT_EQ(h.pop().key, 20u);
  EXPECT_EQ(h.pop().key, 30u);
}

TEST(IndexedHeap, UpdateRaisesPriority) {
  Heap h;
  h.push(1, 1.0);
  h.push(2, 2.0);
  h.update(1, 10.0);
  EXPECT_EQ(h.top().key, 2u);
}

TEST(IndexedHeap, UpdateLowersPriority) {
  Heap h;
  h.push(1, 5.0);
  h.push(2, 4.0);
  h.update(1, 0.5);
  EXPECT_EQ(h.top().key, 1u);
}

TEST(IndexedHeap, UpdateAbsentThrows) {
  Heap h;
  EXPECT_THROW(h.update(9, 1.0), std::logic_error);
}

TEST(IndexedHeap, UpdateKeepsSequenceForTies) {
  Heap h;
  h.push(1, 1.0);
  h.push(2, 2.0);
  h.update(2, 1.0);  // now equal; 1 was inserted earlier
  EXPECT_EQ(h.top().key, 1u);
}

TEST(IndexedHeap, EraseArbitraryKey) {
  Heap h;
  h.push(1, 1.0);
  h.push(2, 2.0);
  h.push(3, 3.0);
  h.erase(2);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_FALSE(h.contains(2));
  EXPECT_EQ(h.pop().key, 1u);
  EXPECT_EQ(h.pop().key, 3u);
}

TEST(IndexedHeap, EraseAbsentThrows) {
  Heap h;
  h.push(1, 1.0);
  EXPECT_THROW(h.erase(2), std::logic_error);
}

TEST(IndexedHeap, PriorityOf) {
  Heap h;
  h.push(7, 3.25);
  EXPECT_DOUBLE_EQ(h.priority_of(7), 3.25);
  EXPECT_THROW(h.priority_of(8), std::logic_error);
}

TEST(IndexedHeap, ClearEmpties) {
  Heap h;
  h.push(1, 1.0);
  h.clear();
  EXPECT_TRUE(h.empty());
  h.push(1, 1.0);  // reusable after clear
  EXPECT_EQ(h.size(), 1u);
}

TEST(IndexedHeapProperty, RandomizedOperationsKeepInvariantsAndOrder) {
  util::Rng rng(99);
  Heap h;
  std::vector<std::uint64_t> live;
  std::uint64_t next_key = 0;

  for (int step = 0; step < 5000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.5 || live.empty()) {
      h.push(next_key, rng.uniform(0, 100));
      live.push_back(next_key);
      ++next_key;
    } else if (dice < 0.75) {
      const auto& key = live[rng.below(live.size())];
      h.update(key, rng.uniform(0, 100));
    } else {
      const auto idx = rng.below(live.size());
      h.erase(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(h.check_invariants());
    }
  }
  ASSERT_TRUE(h.check_invariants());

  // Draining pop() must yield non-decreasing priorities.
  double last = -1.0;
  while (!h.empty()) {
    const auto entry = h.pop();
    EXPECT_GE(entry.priority, last);
    last = entry.priority;
  }
}

TEST(IndexedHeapProperty, MatchesSortReference) {
  util::Rng rng(7);
  Heap h;
  std::vector<std::pair<double, std::uint64_t>> reference;
  for (std::uint64_t k = 0; k < 300; ++k) {
    const double p = rng.uniform(0, 10);
    h.push(k, p);
    reference.emplace_back(p, k);
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [p, k] : reference) {
    const auto entry = h.pop();
    EXPECT_EQ(entry.key, k);
    EXPECT_DOUBLE_EQ(entry.priority, p);
  }
}

}  // namespace
}  // namespace webcache::cache
