// Unit tests for the lazy-promotion LRU variants. The strongest checks are
// differential: at their degenerate parameter settings (p = 1, k = 1,
// batch = 1) all three collapse to plain LRU, and the fuzzed hit sequences
// must match LruPolicy exactly.
#include "cache/lazy_lru.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cache/lru.hpp"
#include "policy_test_util.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::unit_cache;

std::vector<bool> fuzz_outcomes(std::unique_ptr<ReplacementPolicy> policy) {
  Cache cache = unit_cache(std::move(policy), 16);
  util::Rng rng(314);
  std::vector<bool> out;
  out.reserve(20000);
  for (int step = 0; step < 20000; ++step) {
    out.push_back(access(cache, rng.below(1 + rng.below(200))));
  }
  return out;
}

TEST(ProbLru, ProbabilityOneIsExactlyLru) {
  EXPECT_EQ(fuzz_outcomes(std::make_unique<ProbLruPolicy>(1.0)),
            fuzz_outcomes(std::make_unique<LruPolicy>()));
}

TEST(DelayLru, IntervalOneIsExactlyLru) {
  // With k = 1 every hit clears the window (the clock advanced since the
  // last promotion), so promotion happens on every hit: plain LRU.
  EXPECT_EQ(fuzz_outcomes(std::make_unique<DelayLruPolicy>(1)),
            fuzz_outcomes(std::make_unique<LruPolicy>()));
}

TEST(BatchLru, BatchOneIsExactlyLru) {
  EXPECT_EQ(fuzz_outcomes(std::make_unique<BatchPromotionPolicy>(1)),
            fuzz_outcomes(std::make_unique<LruPolicy>()));
}

TEST(ProbLru, SameSeedIsDeterministicDifferentSeedDiverges) {
  auto outcomes = [](std::uint64_t seed) {
    return fuzz_outcomes(std::make_unique<ProbLruPolicy>(0.3, seed));
  };
  EXPECT_EQ(outcomes(9), outcomes(9));
  EXPECT_NE(outcomes(9), outcomes(10));
}

TEST(ProbLru, ZeroPromotionNeverReorders) {
  // p is required to be > 0, but a tiny p on a short trace means no
  // promotion ever fires; eviction order then equals insertion order.
  Cache cache = unit_cache(std::make_unique<ProbLruPolicy>(1e-12), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 1);  // hit, (almost surely) not promoted
  access(cache, 4);  // FIFO order: evicts 1 despite its recent hit
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(DelayLru, PromotionWaitsOutTheWindow) {
  // k = 100 on a short run: the window never closes, so hits do not
  // promote and the order is pure insertion order.
  Cache cache = unit_cache(std::make_unique<DelayLruPolicy>(100), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 1);
  access(cache, 4);  // evicts 1 (hit within the window does not promote)
  EXPECT_FALSE(cache.contains(1));

  // And with a window that does close, the promotion lands.
  Cache cache2 = unit_cache(std::make_unique<DelayLruPolicy>(2), 3);
  access(cache2, 1);
  access(cache2, 2);
  access(cache2, 3);
  access(cache2, 1);  // clock 4, stamp 1, 4 - 1 >= 2 -> promoted
  access(cache2, 4);  // evicts 2
  EXPECT_TRUE(cache2.contains(1));
  EXPECT_FALSE(cache2.contains(2));
}

TEST(BatchLru, HitsQueueUntilTheBatchBoundary) {
  Cache cache = unit_cache(std::make_unique<BatchPromotionPolicy>(3), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 1);  // queued (1 of 3)
  access(cache, 4);  // still FIFO order: evicts 1, purging its queued entry
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(BatchLru, FlushPromotesInArrivalOrder) {
  Cache cache = unit_cache(std::make_unique<BatchPromotionPolicy>(3), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  // Three queued hits flush on the last one: promotion order 2, 3, 1, so
  // the list (MRU -> LRU) becomes 1, 3, 2.
  access(cache, 2);
  access(cache, 3);
  access(cache, 1);
  access(cache, 4);  // evicts 2
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
}

TEST(BatchLru, EvictionPurgesPendingEntries) {
  BatchPromotionPolicy policy(8);
  CacheObject obj;
  for (ObjectId id = 1; id <= 3; ++id) {
    obj.id = id;
    policy.on_insert(obj);
  }
  obj.id = 2;
  policy.on_hit(obj);
  policy.on_hit(obj);
  EXPECT_EQ(policy.pending_promotions(), 2u);
  policy.on_evict(2);
  EXPECT_EQ(policy.pending_promotions(), 0u);
}

TEST(LazyLru, ParameterValidation) {
  EXPECT_THROW(ProbLruPolicy(0.0), std::invalid_argument);
  EXPECT_THROW(ProbLruPolicy(1.5), std::invalid_argument);
  EXPECT_THROW(DelayLruPolicy(0), std::invalid_argument);
  EXPECT_THROW(BatchPromotionPolicy(0), std::invalid_argument);
}

TEST(LazyLru, NamesAndAccessors) {
  EXPECT_EQ(ProbLruPolicy(0.25).name(), "PROB-LRU:p=0.25");
  EXPECT_EQ(DelayLruPolicy(8).name(), "DELAY-LRU:k=8");
  EXPECT_EQ(BatchPromotionPolicy(32).name(), "BATCH-LRU:batch=32");
  EXPECT_DOUBLE_EQ(ProbLruPolicy(0.25).promote_probability(), 0.25);
  EXPECT_EQ(DelayLruPolicy(8).promote_interval(), 8u);
  EXPECT_EQ(BatchPromotionPolicy(32).batch_size(), 32u);
}

}  // namespace
}  // namespace webcache::cache
