#include "cache/lfu_da.hpp"

#include <gtest/gtest.h>

#include "policy_test_util.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::unit_cache;

TEST(LfuDa, EvictsLeastFrequentAmongContemporaries) {
  Cache cache = unit_cache(std::make_unique<LfuDaPolicy>(), 3);
  access(cache, 1);
  access(cache, 1);
  access(cache, 2);
  access(cache, 2);
  access(cache, 3);
  access(cache, 4);  // evicts 3 (lowest count, same age)
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LfuDa, CacheAgeStartsAtZeroAndRises) {
  LfuDaPolicy policy;
  EXPECT_EQ(policy.cache_age(), 0.0);
  CacheObject a;
  a.id = 1;
  a.reference_count = 3;
  policy.on_insert(a);
  const ObjectId victim = policy.choose_victim();
  EXPECT_EQ(victim, 1u);
  policy.on_evict(victim);
  EXPECT_EQ(policy.cache_age(), 3.0);  // age := priority of the evictee
}

TEST(LfuDa, AgingDefeatsCachePollution) {
  // Unlike plain LFU (see fifo_size_lfu_test), the dynamic aging lets a new
  // working set displace stale high-count documents: each eviction raises
  // the cache age, so newcomers enter at (age + 1), quickly catching up.
  Cache cache = unit_cache(std::make_unique<LfuDaPolicy>(), 2);
  for (int i = 0; i < 100; ++i) {
    access(cache, 1);
    access(cache, 2);
  }
  int new_phase_hits = 0;
  for (int i = 0; i < 150; ++i) {
    if (access(cache, 3)) ++new_phase_hits;
    if (access(cache, 4)) ++new_phase_hits;
  }
  // The new working set must establish itself and then hit continuously.
  EXPECT_GT(new_phase_hits, 100);
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LfuDa, NewcomerEntersAboveAge) {
  LfuDaPolicy policy;
  CacheObject stale;
  stale.id = 1;
  stale.reference_count = 10;
  policy.on_insert(stale);
  policy.on_evict(policy.choose_victim());  // age becomes 10

  CacheObject fresh;
  fresh.id = 2;
  fresh.reference_count = 1;
  policy.on_insert(fresh);  // priority 11
  CacheObject fresh2;
  fresh2.id = 3;
  fresh2.reference_count = 1;
  policy.on_insert(fresh2);  // priority 11, later sequence
  EXPECT_EQ(policy.choose_victim(), 2u);
}

TEST(LfuDa, HitRestoresPriorityOnTopOfCurrentAge) {
  Cache cache = unit_cache(std::make_unique<LfuDaPolicy>(), 2);
  access(cache, 1);  // prio 1
  access(cache, 2);  // prio 1
  access(cache, 1);  // prio 2
  access(cache, 3);  // evicts 2 (prio 1); age -> 1
  EXPECT_FALSE(cache.contains(2));
  // 3 entered at age 1 + count 1 = 2; 1 sits at 2 with older sequence.
  access(cache, 4);  // evicts 1 (tie at 2, older sequence)
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LfuDa, ClearResetsAge) {
  LfuDaPolicy policy;
  CacheObject a;
  a.id = 1;
  a.reference_count = 7;
  policy.on_insert(a);
  policy.on_evict(1);
  EXPECT_GT(policy.cache_age(), 0.0);
  policy.clear();
  EXPECT_EQ(policy.cache_age(), 0.0);
}

TEST(LfuDa, Name) { EXPECT_EQ(LfuDaPolicy().name(), "LFU-DA"); }

}  // namespace
}  // namespace webcache::cache
