#include "cache/lru_k.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/factory.hpp"
#include "policy_test_util.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::unit_cache;

TEST(LruK, SingleAccessObjectsEvictedFirst) {
  Cache cache = unit_cache(std::make_unique<LruKPolicy>(), 3);
  access(cache, 1);
  access(cache, 1);  // 1 has two accesses
  access(cache, 2);  // one access
  access(cache, 3);  // one access
  access(cache, 4);  // must evict a one-timer, the colder one: 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
}

TEST(LruK, AmongOneTimersEvictsLeastRecent) {
  Cache cache = unit_cache(std::make_unique<LruKPolicy>(), 2);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);  // both 1 and 2 are one-timers; 1 is older
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruK, EvictsOldestPenultimateAccess) {
  // Clocks: 1@(1,2), 2@(3,4): penultimate(1)=1 < penultimate(2)=3.
  Cache cache = unit_cache(std::make_unique<LruKPolicy>(), 2);
  access(cache, 1);
  access(cache, 1);
  access(cache, 2);
  access(cache, 2);
  access(cache, 3);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
}

TEST(LruK, RecentSingleBeatsAncientPair) {
  // Unlike plain LFU, LRU-2 eventually ages out a pair referenced long ago:
  // its penultimate access stays ancient while the stream moves on. But a
  // one-timer always loses to any twice-referenced object, however old.
  Cache cache = unit_cache(std::make_unique<LruKPolicy>(), 2);
  access(cache, 1);
  access(cache, 1);        // pair at clocks (1,2)
  for (ObjectId id = 10; id < 30; ++id) {
    access(cache, id);     // parade of one-timers
  }
  // The pair survived the whole parade.
  EXPECT_TRUE(cache.contains(1));
}

TEST(LruK, ScanResistantUnlikeLru) {
  // Working set {1,2} accessed repeatedly, interleaved with a one-pass
  // scan. LRU-2 keeps the working set; LRU loses it to the scan.
  auto run = [](const char* policy) {
    Cache cache(4, make_policy(policy));
    std::uint64_t working_set_hits = 0;
    ObjectId scan_id = 1000;
    for (int round = 0; round < 50; ++round) {
      for (const ObjectId id : {1u, 2u}) {
        if (cache.access(id, 1, trace::DocumentClass::kOther).kind ==
            Cache::AccessKind::kHit) {
          ++working_set_hits;
        }
      }
      for (int s = 0; s < 4; ++s) {
        cache.access(scan_id++, 1, trace::DocumentClass::kOther);
      }
    }
    return working_set_hits;
  };
  EXPECT_GT(run("LRU-2"), run("LRU") + 50);
}

TEST(LruK, RejectsZeroHistoryLimit) {
  EXPECT_THROW(LruKPolicy(0), std::invalid_argument);
}

TEST(LruK, HistoryIsBounded) {
  auto policy = std::make_unique<LruKPolicy>(/*history_limit=*/8);
  LruKPolicy* raw = policy.get();
  Cache cache(2, std::move(policy));
  for (ObjectId id = 0; id < 500; ++id) access(cache, id);
  EXPECT_LE(raw->history_size(), 8u);
  EXPECT_GT(raw->history_size(), 0u);
}

TEST(LruK, RetainedHistorySurvivesReinsertion) {
  // Evict a doc, re-access it: the retained record must lift it out of the
  // one-timer band immediately, so a fresh one-timer is evicted instead.
  Cache cache = unit_cache(std::make_unique<LruKPolicy>(), 2);
  access(cache, 1);  // clock 1
  access(cache, 2);  // clock 2
  access(cache, 3);  // clock 3: evicts 1 (oldest one-timer); history: 1@1
  access(cache, 1);  // clock 4: evicts 2; 1 re-enters with penultimate 1
  access(cache, 4);  // clock 5: must evict 3 (one-timer), not 1
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruK, ClearDropsHistory) {
  auto policy = std::make_unique<LruKPolicy>();
  LruKPolicy* raw = policy.get();
  {
    Cache cache(1, std::move(policy));
    access(cache, 1);
    access(cache, 2);  // evicts 1 -> history
    EXPECT_EQ(raw->history_size(), 1u);
    cache.reset();
    EXPECT_EQ(raw->history_size(), 0u);
  }
}

TEST(LruK, FactoryNameRoundTrip) {
  EXPECT_EQ(make_policy("LRU-2")->name(), "LRU-2");
  EXPECT_EQ(policy_spec_from_name("LRU-2").kind, PolicyKind::kLruK);
}

}  // namespace
}  // namespace webcache::cache
