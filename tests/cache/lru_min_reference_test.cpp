// Differential test for the bucketed LRU-MIN: the production implementation
// (per-size-class LRU lists, O(#buckets) victim selection) must make
// exactly the same decisions as a literal transcription of the algorithm
// (single recency list, full scan from the cold end, threshold halving).
#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "cache/cache.hpp"
#include "cache/lru_variants.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

/// The naive formulation: O(n) scans, unmistakably correct.
class NaiveLruMin {
 public:
  explicit NaiveLruMin(std::uint64_t capacity) : capacity_(capacity) {}

  bool access(ObjectId id, std::uint64_t size) {
    const auto it = where_.find(id);
    if (it != where_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    if (size > capacity_) return false;
    while (used_ + size > capacity_) {
      std::uint64_t threshold = size;
      ObjectId victim = 0;
      for (;;) {
        bool found = false;
        for (auto rit = order_.rbegin(); rit != order_.rend(); ++rit) {
          if (rit->size >= threshold) {
            victim = rit->id;
            found = true;
            break;
          }
        }
        if (found) break;
        threshold /= 2;
      }
      const auto vit = where_.find(victim);
      used_ -= vit->second->size;
      order_.erase(vit->second);
      where_.erase(vit);
    }
    order_.push_front(Entry{id, size});
    where_[id] = order_.begin();
    used_ += size;
    return false;
  }

 private:
  struct Entry {
    ObjectId id;
    std::uint64_t size;
  };
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Entry> order_;  // front = MRU
  std::unordered_map<ObjectId, std::list<Entry>::iterator> where_;
};

TEST(LruMinReference, BucketedMatchesNaiveOnRandomWorkloads) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(seed);
    NaiveLruMin naive(5000);
    Cache fast(5000, std::make_unique<LruMinPolicy>());
    for (int step = 0; step < 8000; ++step) {
      const ObjectId id = rng.below(150);
      // Deterministic size per id, spanning several size classes including
      // exact powers of two (the boundary-bucket edge).
      const std::uint64_t size = 1 + (id * id * 131) % 2048;
      const bool naive_hit = naive.access(id, size);
      const bool fast_hit =
          fast.access(id, size, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit;
      ASSERT_EQ(naive_hit, fast_hit) << "seed " << seed << " step " << step;
    }
  }
}

TEST(LruMinReference, MatchesWithOversizedArrivals) {
  // Incoming sizes larger than anything resident: the halving loop is the
  // only path to a victim; both implementations must walk it identically.
  util::Rng rng(7);
  NaiveLruMin naive(1000);
  Cache fast(1000, std::make_unique<LruMinPolicy>());
  for (int step = 0; step < 3000; ++step) {
    const ObjectId id = rng.below(60);
    const std::uint64_t size = (id % 5 == 0) ? 900 : 1 + (id * 37) % 50;
    const bool naive_hit = naive.access(id, size);
    const bool fast_hit =
        fast.access(id, size, trace::DocumentClass::kOther).kind ==
        Cache::AccessKind::kHit;
    ASSERT_EQ(naive_hit, fast_hit) << "step " << step;
  }
}

TEST(LruMinReference, MatchesOnPowerOfTwoThresholds) {
  // Thresholds exactly at bucket boundaries exercise the all-qualify
  // shortcut in oldest_at_least.
  util::Rng rng(11);
  NaiveLruMin naive(4096);
  Cache fast(4096, std::make_unique<LruMinPolicy>());
  for (int step = 0; step < 4000; ++step) {
    const ObjectId id = rng.below(100);
    const std::uint64_t size = 1ULL << (id % 10);
    const bool naive_hit = naive.access(id, size);
    const bool fast_hit =
        fast.access(id, size, trace::DocumentClass::kOther).kind ==
        Cache::AccessKind::kHit;
    ASSERT_EQ(naive_hit, fast_hit) << "step " << step;
  }
}

}  // namespace
}  // namespace webcache::cache
