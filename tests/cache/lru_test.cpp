#include "cache/lru.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "policy_test_util.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::unit_cache;

TEST(Lru, EvictsLeastRecentlyUsed) {
  Cache cache = unit_cache(std::make_unique<LruPolicy>(), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  access(cache, 4);  // evicts 1
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(Lru, HitRefreshesRecency) {
  Cache cache = unit_cache(std::make_unique<LruPolicy>(), 3);
  access(cache, 1);
  access(cache, 2);
  access(cache, 3);
  EXPECT_TRUE(access(cache, 1));  // 1 becomes MRU; 2 is now LRU
  access(cache, 4);               // evicts 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(Lru, SequentialScanEvictsInOrder) {
  Cache cache = unit_cache(std::make_unique<LruPolicy>(), 2);
  for (ObjectId id = 1; id <= 10; ++id) access(cache, id);
  EXPECT_TRUE(cache.contains(9));
  EXPECT_TRUE(cache.contains(10));
  for (ObjectId id = 1; id <= 8; ++id) EXPECT_FALSE(cache.contains(id));
}

TEST(Lru, CyclicAccessOverCapacityNeverHits) {
  // The classic LRU pathology: a loop one item larger than the cache.
  Cache cache = unit_cache(std::make_unique<LruPolicy>(), 3);
  int hits = 0;
  for (int round = 0; round < 5; ++round) {
    for (ObjectId id = 1; id <= 4; ++id) {
      if (access(cache, id)) ++hits;
    }
  }
  EXPECT_EQ(hits, 0);
}

TEST(Lru, PolicyRejectsProtocolViolations) {
  LruPolicy policy;
  CacheObject obj;
  obj.id = 1;
  policy.on_insert(obj);
  EXPECT_THROW(policy.on_insert(obj), std::logic_error);
  CacheObject absent;
  absent.id = 2;
  EXPECT_THROW(policy.on_hit(absent), std::logic_error);
  EXPECT_THROW(policy.on_evict(2), std::logic_error);
  policy.on_evict(1);
  EXPECT_THROW(policy.choose_victim(), std::logic_error);
}

TEST(Lru, ClearResetsState) {
  LruPolicy policy;
  CacheObject obj;
  obj.id = 5;
  policy.on_insert(obj);
  policy.clear();
  EXPECT_THROW(policy.choose_victim(), std::logic_error);
  policy.on_insert(obj);  // reusable
  EXPECT_EQ(policy.choose_victim(), 5u);
}

TEST(Lru, Name) { EXPECT_EQ(LruPolicy().name(), "LRU"); }

}  // namespace
}  // namespace webcache::cache
