#include "cache/lru_variants.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "cache/factory.hpp"
#include "policy_test_util.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using testutil::access_sized;

// ------------------------------------------------------- LRU-Threshold

TEST(LruThreshold, RejectsZeroThreshold) {
  EXPECT_THROW(LruThresholdPolicy(0), std::invalid_argument);
}

TEST(LruThreshold, NameCarriesThreshold) {
  EXPECT_EQ(LruThresholdPolicy(1024).name(), "LRU-THOLD(1024)");
}

TEST(LruThreshold, EvictionOrderIsLru) {
  Cache cache(3, std::make_unique<LruThresholdPolicy>(100));
  access_sized(cache, 1, 1);
  access_sized(cache, 2, 1);
  access_sized(cache, 1, 1);  // refresh 1
  access_sized(cache, 3, 1);
  access_sized(cache, 4, 1);  // evicts 2 (LRU)
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruThreshold, CacheAdmissionLimitBypassesLargeObjects) {
  Cache cache(1000, std::make_unique<LruThresholdPolicy>(100));
  cache.set_admission_limit(100);
  EXPECT_EQ(access_sized(cache, 1, 101).kind, Cache::AccessKind::kBypass);
  EXPECT_EQ(access_sized(cache, 2, 100).kind, Cache::AccessKind::kMiss);
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(1));
}

TEST(LruThreshold, SimulatorInstallsAdmissionLimit) {
  // Through the PolicySpec path the simulator must wire the threshold into
  // the cache: large documents never get cached, so re-requests to them
  // miss even with ample capacity.
  trace::Trace t;
  for (int i = 0; i < 10; ++i) {
    trace::Request r;
    r.document = 1;
    r.document_size = 5000;
    r.transfer_size = 5000;
    t.requests.push_back(r);
    r.document = 2;
    r.document_size = 100;
    r.transfer_size = 100;
    t.requests.push_back(r);
  }
  PolicySpec spec;
  spec.kind = PolicyKind::kLruThreshold;
  spec.admission_threshold_bytes = 1000;
  sim::SimulatorOptions opts;
  opts.warmup_fraction = 0.0;
  const sim::SimResult r = sim::simulate(t, 1 << 20, spec, opts);
  // Doc 2 (small) hits 9 times, doc 1 (large) never.
  EXPECT_EQ(r.overall.hits, 9u);
  EXPECT_EQ(r.bypasses, 10u);
}

TEST(LruThreshold, FactoryParsesName) {
  const PolicySpec spec = policy_spec_from_name("LRU-THOLD(524288)");
  EXPECT_EQ(spec.kind, PolicyKind::kLruThreshold);
  EXPECT_EQ(spec.admission_threshold_bytes, 524288u);
  EXPECT_THROW(policy_spec_from_name("LRU-THOLD()"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("LRU-THOLD(-5)"), std::invalid_argument);
  EXPECT_THROW(policy_spec_from_name("LRU-THOLD(abc)"), std::invalid_argument);
}

// ------------------------------------------------------------- LRU-MIN

TEST(LruMin, PrefersEvictingLargeDocuments) {
  Cache cache(100, std::make_unique<LruMinPolicy>());
  access_sized(cache, 1, 60);  // large, oldest
  access_sized(cache, 2, 10);
  access_sized(cache, 3, 30);
  // Incoming 40 bytes: LRU-MIN evicts the LRU doc with size >= 40 -> doc 1.
  access_sized(cache, 4, 40);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruMin, HalvesThresholdWhenNoLargeDocument) {
  Cache cache(120, std::make_unique<LruMinPolicy>());
  access_sized(cache, 1, 30);
  access_sized(cache, 2, 35);
  access_sized(cache, 3, 35);
  // Incoming 80: no doc >= 80; >= 40 none either; >= 20 -> LRU match is 1.
  access_sized(cache, 4, 80);
  EXPECT_FALSE(cache.contains(1));
  // 1 freed 30, still 70 + 80 > 120: next pick (>= 20) is doc 2.
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(4));
}

TEST(LruMin, RecencyStillMattersWithinSizeClass) {
  Cache cache(100, std::make_unique<LruMinPolicy>());
  access_sized(cache, 1, 40);
  access_sized(cache, 2, 40);
  access_sized(cache, 1, 40);  // 1 now MRU
  access_sized(cache, 3, 40);  // needs 20: evicts LRU doc >= 20 -> doc 2
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(LruMin, DegeneratesToLruForUniformSizes) {
  Cache min_cache(5, std::make_unique<LruMinPolicy>());
  Cache lru_cache(5, make_policy("LRU"));
  util::Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const ObjectId id = rng.below(20);
    const auto a = min_cache.access(id, 1, trace::DocumentClass::kOther);
    const auto b = lru_cache.access(id, 1, trace::DocumentClass::kOther);
    ASSERT_EQ(a.kind, b.kind) << "step " << i;
  }
}

TEST(LruMin, FactoryName) {
  EXPECT_EQ(make_policy("LRU-MIN")->name(), "LRU-MIN");
}

TEST(LruMin, ProtocolViolations) {
  LruMinPolicy policy;
  CacheObject obj;
  obj.id = 1;
  obj.size = 10;
  policy.on_insert(obj);
  EXPECT_THROW(policy.on_insert(obj), std::logic_error);
  CacheObject absent;
  absent.id = 2;
  EXPECT_THROW(policy.on_hit(absent), std::logic_error);
  EXPECT_THROW(policy.on_evict(2), std::logic_error);
}

}  // namespace
}  // namespace webcache::cache
