#include "cache/opt.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc, std::uint64_t size = 1) {
  Request r;
  r.document = doc;
  r.document_size = size;
  r.transfer_size = size;
  return r;
}

/// Replays the trace through a Cache wired to OPT; returns the hit count.
std::uint64_t replay_opt(const Trace& t, std::uint64_t capacity) {
  Cache cache(capacity, std::make_unique<OptPolicy>(t.requests));
  std::uint64_t hits = 0;
  for (const Request& r : t.requests) {
    if (cache.access(r.document, r.transfer_size, r.doc_class).kind ==
        Cache::AccessKind::kHit) {
      ++hits;
    }
  }
  return hits;
}

std::uint64_t replay_named(const Trace& t, std::uint64_t capacity,
                           const char* name) {
  Cache cache(capacity, make_policy(name));
  std::uint64_t hits = 0;
  for (const Request& r : t.requests) {
    if (cache.access(r.document, r.transfer_size, r.doc_class).kind ==
        Cache::AccessKind::kHit) {
      ++hits;
    }
  }
  return hits;
}

TEST(Opt, BeladyTextbookExample) {
  // Unit-size objects, 3 slots: the classic reference string where OPT gets
  // more hits than LRU. Sequence: 1 2 3 4 1 2 5 1 2 3 4 5.
  Trace t;
  for (const trace::DocumentId d : {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}) {
    t.requests.push_back(req(d));
  }
  // OPT (Belady) on this string with 3 frames: 7 faults -> 5 hits.
  EXPECT_EQ(replay_opt(t, 3), 5u);
  // LRU: 10 faults -> 2 hits.
  EXPECT_EQ(replay_named(t, 3, "LRU"), 2u);
}

TEST(Opt, EvictsNeverReferencedAgainFirst) {
  // Docs 1 and 2 resident; 2 never recurs, 1 recurs; inserting 3 must
  // evict 2 even though 1 is older and colder by LRU standards.
  Trace t;
  t.requests = {req(1), req(2), req(3), req(1)};
  EXPECT_EQ(replay_opt(t, 2), 1u);  // final access to 1 hits
}

TEST(Opt, AmongDeadObjectsEvictsLargestFirst) {
  OptPolicy policy({req(10, 5), req(11, 50)});
  CacheObject small;
  small.id = 10;
  small.size = 5;
  small.last_access = 1;
  CacheObject big;
  big.id = 11;
  big.size = 50;
  big.last_access = 2;
  policy.on_insert(small);
  policy.on_insert(big);
  // Neither recurs after its access -> both dead; the larger goes first.
  EXPECT_EQ(policy.choose_victim(), 11u);
}

TEST(Opt, DominatesEveryOnlinePolicyOnUnitObjects) {
  // With unit sizes the furthest-next-reference rule IS Belady's optimum,
  // so no online policy may beat it. (With variable sizes the greedy is
  // only a heuristic bound, hence the unit-size restriction here.)
  util::Rng rng(77);
  Trace t;
  for (int i = 0; i < 20000; ++i) {
    t.requests.push_back(req(rng.below(1 + rng.below(500))));
  }
  const std::uint64_t capacity = 50;
  const std::uint64_t opt_hits = replay_opt(t, capacity);
  for (const char* name : {"LRU", "FIFO", "LFU", "LFU-DA", "GDS(1)",
                           "GD*(1)", "SIZE"}) {
    EXPECT_GE(opt_hits, replay_named(t, capacity, name)) << name;
  }
}

TEST(Opt, WorksThroughSimulatorOverload) {
  util::Rng rng(5);
  Trace t;
  for (int i = 0; i < 5000; ++i) {
    t.requests.push_back(req(rng.below(200), 100 + rng.below(900)));
  }
  sim::SimulatorOptions opts;
  opts.warmup_fraction = 0.0;
  const sim::SimResult opt = sim::simulate(
      t, 20000, std::make_unique<OptPolicy>(t.requests), opts);
  EXPECT_EQ(opt.policy_name, "OPT");
  const sim::SimResult lru =
      sim::simulate(t, 20000, policy_spec_from_name("LRU"), opts);
  EXPECT_GE(opt.overall.hit_rate(), lru.overall.hit_rate());
  EXPECT_GT(opt.overall.hit_rate(), 0.0);
}

TEST(Opt, ClearAndReplayIsDeterministic) {
  util::Rng rng(9);
  Trace t;
  for (int i = 0; i < 3000; ++i) t.requests.push_back(req(rng.below(100)));
  const std::uint64_t first = replay_opt(t, 20);
  const std::uint64_t second = replay_opt(t, 20);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace webcache::cache
