// The PartitionedCache dense-id fast path: reserving the dense universe
// forwards to every per-class partition, results stay bit-identical to the
// sparse path (simulate and sweep), and misuse — mixing dense and sparse
// ids, reserving on a non-empty cache — is rejected loudly.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::cache {
namespace {

using trace::DocumentClass;

void expect_identical_counters(const sim::HitCounters& a,
                               const sim::HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const sim::SimResult& sparse, const sim::SimResult& dense,
                      const std::string& label) {
  EXPECT_EQ(sparse.policy_name, dense.policy_name) << label;
  EXPECT_EQ(sparse.capacity_bytes, dense.capacity_bytes) << label;
  expect_identical_counters(sparse.overall, dense.overall, label);
  for (std::size_t c = 0; c < sparse.per_class.size(); ++c) {
    expect_identical_counters(sparse.per_class[c], dense.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(sparse.evictions, dense.evictions) << label;
  EXPECT_EQ(sparse.bypasses, dense.bypasses) << label;
  EXPECT_EQ(sparse.modification_misses, dense.modification_misses) << label;
  EXPECT_EQ(sparse.interrupted_transfers, dense.interrupted_transfers)
      << label;
}

trace::Trace recorded_trace() {
  synth::GeneratorOptions gen;
  gen.seed = 3;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002),
                               gen)
      .generate();
}

std::array<double, trace::kDocumentClassCount> uniform_weights() {
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0);
  return weights;
}

std::array<double, trace::kDocumentClassCount> profile_weights() {
  const synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  std::array<double, trace::kDocumentClassCount> weights{};
  for (const auto cls : trace::kAllDocumentClasses) {
    weights[static_cast<std::size_t>(cls)] = profile.of(cls).request_fraction;
  }
  return weights;
}

TEST(PartitionedDenseEquivalence, UniformSharesMatchSparsePath) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;

  for (const char* name : {"LRU", "LFU-DA", "GDS(1)", "GD*(packet)",
                           "LRU-MIN", "LRU-THOLD(300000)"}) {
    const auto config = PartitionedCacheConfig::uniform_policy(
        capacity, policy_spec_from_name(name), uniform_weights());
    PartitionedCache sparse_cache(config);
    PartitionedCache dense_cache(config);
    const sim::SimResult a = sim::simulate(sparse, sparse_cache, {});
    const sim::SimResult b = sim::simulate(dense, dense_cache, {});
    expect_identical(a, b, std::string("uniform ") + name);
  }
}

TEST(PartitionedDenseEquivalence, ProfileDerivedSharesMatchSparsePath) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 12;

  for (const char* name : {"GD*(1)", "GDSF(packet)"}) {
    const auto config = PartitionedCacheConfig::uniform_policy(
        capacity, policy_spec_from_name(name), profile_weights());
    PartitionedCache sparse_cache(config);
    PartitionedCache dense_cache(config);
    const sim::SimResult a = sim::simulate(sparse, sparse_cache, {});
    const sim::SimResult b = sim::simulate(dense, dense_cache, {});
    expect_identical(a, b, std::string("profile ") + name);
  }
}

TEST(PartitionedDenseEquivalence, FrontendSweepMatchesSparsePath) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);

  sim::FrontendSweepConfig config;
  config.cache_fractions = {0.02, 0.08};
  config.threads = 2;
  for (const auto& weights : {uniform_weights(), profile_weights()}) {
    config.frontends.push_back(
        [weights](std::uint64_t capacity) -> std::unique_ptr<CacheFrontend> {
          return std::make_unique<PartitionedCache>(
              PartitionedCacheConfig::uniform_policy(
                  capacity, policy_spec_from_name("GD*(1)"), weights));
        });
  }

  const sim::SweepResult a = sim::run_sweep(sparse, config);
  const sim::SweepResult b = sim::run_sweep(dense, config);
  ASSERT_EQ(a.points.size(), b.points.size());
  EXPECT_EQ(a.overall_size_bytes, b.overall_size_bytes);
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    ASSERT_EQ(a.points[f].results.size(), b.points[f].results.size());
    EXPECT_EQ(a.points[f].capacity_bytes, b.points[f].capacity_bytes);
    for (std::size_t p = 0; p < a.points[f].results.size(); ++p) {
      expect_identical(a.points[f].results[p], b.points[f].results[p],
                       "cell f" + std::to_string(f) + " p" + std::to_string(p));
    }
  }
}

TEST(PartitionedDenseEquivalence, FrontendSweepRejectsBadConfig) {
  const trace::Trace t = recorded_trace();
  sim::FrontendSweepConfig config;  // no frontends
  EXPECT_THROW(sim::run_sweep(t, config), std::invalid_argument);
  config.frontends.push_back(sim::FrontendFactory{});  // null factory
  EXPECT_THROW(sim::run_sweep(t, config), std::invalid_argument);
}

TEST(PartitionedDenseEquivalence, ReserveForwardsToEveryPartition) {
  PartitionedCache cache(PartitionedCacheConfig::uniform_policy(
      1000, policy_spec_from_name("LRU"), uniform_weights()));
  cache.reserve_dense_ids(64);
  // Every class accepts in-universe ids into its own (now dense) partition.
  for (const auto cls : trace::kAllDocumentClasses) {
    const auto id = static_cast<ObjectId>(cls);
    EXPECT_EQ(cache.access(id, 10, cls, false).kind, Cache::AccessKind::kMiss);
    EXPECT_TRUE(cache.partition(cls).contains(id));
  }
}

TEST(PartitionedDenseEquivalence, MixingDenseAndSparseIdsIsRejected) {
  PartitionedCache cache(PartitionedCacheConfig::uniform_policy(
      1000, policy_spec_from_name("LRU"), uniform_weights()));
  cache.reserve_dense_ids(100);
  EXPECT_EQ(cache.access(99, 10, DocumentClass::kHtml, false).kind,
            Cache::AccessKind::kMiss);
  // A sparse id (outside the reserved universe) must not reach a partition.
  EXPECT_THROW(cache.access(100, 10, DocumentClass::kHtml, false),
               std::invalid_argument);
  EXPECT_THROW(cache.access(0xdeadbeefULL, 10, DocumentClass::kImage, false),
               std::invalid_argument);
  // The in-universe content is untouched by the rejected accesses.
  EXPECT_TRUE(cache.contains(99));
}

TEST(PartitionedDenseEquivalence, ReserveOnNonEmptyCacheThrows) {
  PartitionedCache cache(PartitionedCacheConfig::uniform_policy(
      1000, policy_spec_from_name("LRU"), uniform_weights()));
  cache.access(7, 10, DocumentClass::kImage, false);
  EXPECT_THROW(cache.reserve_dense_ids(100), std::logic_error);
}

}  // namespace
}  // namespace webcache::cache
