#include "cache/partitioned.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulator.hpp"
#include "synth/generator.hpp"

namespace webcache::cache {
namespace {

using trace::DocumentClass;

PartitionedCacheConfig basic_config(std::uint64_t capacity = 1000) {
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0);
  PolicySpec lru;
  lru.kind = PolicyKind::kLru;
  return PartitionedCacheConfig::uniform_policy(capacity, lru, weights);
}

TEST(Partitioned, RejectsInvalidConfig) {
  PartitionedCacheConfig config = basic_config();
  config.capacity_bytes = 0;
  EXPECT_THROW(PartitionedCache{config}, std::invalid_argument);

  config = basic_config();
  config.shares[0] += 0.5;  // no longer sums to 1
  EXPECT_THROW(PartitionedCache{config}, std::invalid_argument);

  std::array<double, trace::kDocumentClassCount> zero{};
  PolicySpec lru;
  EXPECT_THROW(PartitionedCacheConfig::uniform_policy(100, lru, zero),
               std::invalid_argument);
}

TEST(Partitioned, UniformPolicyNormalizesWeights) {
  std::array<double, trace::kDocumentClassCount> weights{};
  weights[0] = 3.0;
  weights[1] = 1.0;
  PolicySpec lru;
  const auto config = PartitionedCacheConfig::uniform_policy(100, lru, weights);
  EXPECT_DOUBLE_EQ(config.shares[0], 0.75);
  EXPECT_DOUBLE_EQ(config.shares[1], 0.25);
  EXPECT_DOUBLE_EQ(config.shares[2], 0.0);
}

TEST(Partitioned, ClassesAreIsolated) {
  // Flooding the image partition must not evict HTML documents.
  PartitionedCacheConfig config = basic_config(1000);  // 200 bytes each
  PartitionedCache cache(config);
  cache.access(1, 100, DocumentClass::kHtml, false);
  for (ObjectId id = 100; id < 150; ++id) {
    cache.access(id, 100, DocumentClass::kImage, false);
  }
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.access(1, 100, DocumentClass::kHtml, false).kind,
            Cache::AccessKind::kHit);
}

TEST(Partitioned, ZeroSharePartitionBypasses) {
  std::array<double, trace::kDocumentClassCount> weights{};
  weights[static_cast<std::size_t>(DocumentClass::kImage)] = 1.0;
  PolicySpec lru;
  PartitionedCache cache(
      PartitionedCacheConfig::uniform_policy(1000, lru, weights));
  EXPECT_EQ(cache.access(1, 10, DocumentClass::kMultiMedia, false).kind,
            Cache::AccessKind::kBypass);
  EXPECT_EQ(cache.access(2, 10, DocumentClass::kImage, false).kind,
            Cache::AccessKind::kMiss);
  EXPECT_TRUE(cache.contains(2));
}

TEST(Partitioned, OccupancyAggregatesPartitions) {
  PartitionedCache cache(basic_config(1000));
  cache.access(1, 50, DocumentClass::kImage, false);
  cache.access(2, 70, DocumentClass::kApplication, false);
  const Occupancy occ = cache.occupancy();
  EXPECT_EQ(occ.total_objects, 2u);
  EXPECT_EQ(occ.total_bytes, 120u);
  EXPECT_EQ(occ.bytes[static_cast<std::size_t>(DocumentClass::kImage)], 50u);
}

TEST(Partitioned, EvictionCountSumsPartitions) {
  PartitionedCache cache(basic_config(500));  // 100 bytes per class
  for (ObjectId id = 0; id < 10; ++id) {
    cache.access(id, 60, DocumentClass::kHtml, false);
  }
  EXPECT_GT(cache.eviction_count(), 0u);
}

TEST(Partitioned, DescriptionListsPartitions) {
  const std::string desc = PartitionedCache(basic_config()).description();
  EXPECT_NE(desc.find("Partitioned["), std::string::npos);
  EXPECT_NE(desc.find("Multi Media:LRU"), std::string::npos);
}

TEST(Partitioned, ForceMissInvalidatesWithinPartition) {
  PartitionedCache cache(basic_config(1000));
  cache.access(1, 50, DocumentClass::kHtml, false);
  const auto outcome = cache.access(1, 60, DocumentClass::kHtml, true);
  EXPECT_EQ(outcome.kind, Cache::AccessKind::kMiss);
  EXPECT_EQ(cache.partition(DocumentClass::kHtml).used_bytes(), 60u);
}

TEST(Partitioned, RunsThroughSimulatorFrontend) {
  synth::GeneratorOptions gen;
  gen.seed = 3;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002), gen)
          .generate();

  // Shares proportional to the class request mix, GD*(1) everywhere.
  const synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  std::array<double, trace::kDocumentClassCount> weights{};
  for (const auto cls : trace::kAllDocumentClasses) {
    weights[static_cast<std::size_t>(cls)] = profile.of(cls).request_fraction;
  }
  PartitionedCache cache(PartitionedCacheConfig::uniform_policy(
      t.overall_size_bytes() / 25, policy_spec_from_name("GD*(1)"), weights));

  const sim::SimResult r = sim::simulate(t, cache, {});
  EXPECT_GT(r.overall.hit_rate(), 0.1);
  EXPECT_NE(r.policy_name.find("Partitioned["), std::string::npos);
  // The multimedia partition exists but is tiny; metrics still consistent.
  EXPECT_LE(r.overall.hit_bytes, r.overall.requested_bytes);
}

TEST(Partitioned, GuaranteedMultimediaBudgetRaisesItsByteHitRate) {
  // The design question from the paper's conclusion: giving multi media a
  // protected byte budget buys back the byte hit rate GD*(1) gives up.
  synth::GeneratorOptions gen;
  gen.seed = 11;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.02), gen)
          .generate();
  const std::uint64_t capacity = t.overall_size_bytes() / 12;  // ~8%

  const sim::SimResult unified = sim::simulate(
      t, capacity, policy_spec_from_name("GD*(1)"), {});

  std::array<double, trace::kDocumentClassCount> weights{};
  weights[static_cast<std::size_t>(DocumentClass::kImage)] = 0.40;
  weights[static_cast<std::size_t>(DocumentClass::kHtml)] = 0.20;
  weights[static_cast<std::size_t>(DocumentClass::kMultiMedia)] = 0.20;
  weights[static_cast<std::size_t>(DocumentClass::kApplication)] = 0.15;
  weights[static_cast<std::size_t>(DocumentClass::kOther)] = 0.05;
  PartitionedCache partitioned(PartitionedCacheConfig::uniform_policy(
      capacity, policy_spec_from_name("GD*(1)"), weights));
  const sim::SimResult split = sim::simulate(t, partitioned, {});

  EXPECT_GT(split.of(DocumentClass::kMultiMedia).byte_hit_rate(),
            unified.of(DocumentClass::kMultiMedia).byte_hit_rate());
}

}  // namespace
}  // namespace webcache::cache
