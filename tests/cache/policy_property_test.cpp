// Property tests run uniformly against every replacement policy: whatever
// the eviction order, the container invariants and the policy protocol must
// hold under randomized workloads.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

const std::vector<std::string>& all_policy_names() {
  static const std::vector<std::string> names = {
      "LRU",          "FIFO",          "SIZE",
      "LFU",          "LFU-DA",        "GDS(1)",
      "GDS(packet)",  "GDS(latency)",  "GDSF(1)",
      "GDSF(packet)", "GD*(1)",        "GD*(packet)",
      "GD*(latency)", "LRU-MIN",       "LRU-THOLD(300)",
      "LRU-2",        "GD*C(1)",       "GD*C(packet)"};
  return names;
}

class PolicyPropertyTest : public testing::TestWithParam<std::string> {};

TEST_P(PolicyPropertyTest, RandomWorkloadKeepsInvariants) {
  Cache cache(10000, make_policy(GetParam()));
  util::Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const ObjectId id = rng.below(500);
    const std::uint64_t size = 1 + rng.below(400);
    const auto cls = static_cast<trace::DocumentClass>(rng.below(5));
    const bool force_miss = rng.chance(0.02);
    cache.access(id, size, cls, force_miss);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
    if (step % 1000 == 0) {
      ASSERT_TRUE(cache.check_invariants());
    }
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST_P(PolicyPropertyTest, DeterministicReplay) {
  auto run = [&](std::uint64_t seed) {
    Cache cache(5000, make_policy(GetParam()));
    util::Rng rng(seed);
    std::uint64_t hits = 0;
    for (int step = 0; step < 10000; ++step) {
      const ObjectId id = rng.below(300);
      const std::uint64_t size = 1 + rng.below(200);
      if (cache.access(id, size, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    return std::pair(hits, cache.used_bytes());
  };
  EXPECT_EQ(run(7), run(7));
}

TEST_P(PolicyPropertyTest, SingleObjectWorkload) {
  Cache cache(100, make_policy(GetParam()));
  EXPECT_EQ(cache.access(1, 50, trace::DocumentClass::kHtml).kind,
            Cache::AccessKind::kMiss);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cache.access(1, 50, trace::DocumentClass::kHtml).kind,
              Cache::AccessKind::kHit);
  }
  EXPECT_EQ(cache.object_count(), 1u);
}

TEST_P(PolicyPropertyTest, FullChurnNeverUnderflows) {
  // Objects exactly the cache size force a full eviction every miss.
  Cache cache(64, make_policy(GetParam()));
  for (ObjectId id = 0; id < 200; ++id) {
    const auto outcome = cache.access(id, 64, trace::DocumentClass::kOther);
    ASSERT_EQ(outcome.kind, Cache::AccessKind::kMiss);
    ASSERT_EQ(cache.object_count(), 1u);
    ASSERT_EQ(cache.used_bytes(), 64u);
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST_P(PolicyPropertyTest, EraseDuringChurnIsSafe) {
  Cache cache(1000, make_policy(GetParam()));
  util::Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    const ObjectId id = rng.below(100);
    if (rng.chance(0.15)) {
      cache.erase(id);
    } else {
      cache.access(id, 1 + rng.below(100), trace::DocumentClass::kImage);
    }
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST_P(PolicyPropertyTest, HitRateGrowsWithCacheSize) {
  // The paper's log-like growth claim in its weakest form: more capacity
  // never hurts badly. We demand monotone non-decreasing hit counts along a
  // doubling ladder (allowing a tiny tolerance for non-stack policies,
  // which are not strictly inclusive).
  auto hits_at = [&](std::uint64_t capacity) {
    Cache cache(capacity, make_policy(GetParam()));
    util::Rng rng(5);
    std::uint64_t hits = 0;
    for (int step = 0; step < 30000; ++step) {
      // Zipf-ish: small ids much more likely.
      const ObjectId id = rng.below(1 + rng.below(400));
      const std::uint64_t size = 1 + (id * 37) % 256;
      if (cache.access(id, size, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    return hits;
  };
  const std::uint64_t h1 = hits_at(1 << 10);
  const std::uint64_t h2 = hits_at(1 << 13);
  const std::uint64_t h3 = hits_at(1 << 16);
  EXPECT_GE(static_cast<double>(h2), static_cast<double>(h1) * 0.95);
  EXPECT_GE(static_cast<double>(h3), static_cast<double>(h2) * 0.95);
  EXPECT_GT(h3, h1);  // strictly better across a 64x capacity range
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         testing::ValuesIn(all_policy_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace webcache::cache
