// Property tests run uniformly against every replacement policy: whatever
// the eviction order, the container invariants and the policy protocol must
// hold under randomized workloads.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "cache/opt.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

const std::vector<std::string>& all_policy_names() {
  static const std::vector<std::string> names = {
      "LRU",          "FIFO",          "SIZE",
      "LFU",          "LFU-DA",        "GDS(1)",
      "GDS(packet)",  "GDS(latency)",  "GDSF(1)",
      "GDSF(packet)", "GD*(1)",        "GD*(packet)",
      "GD*(latency)", "LRU-MIN",       "LRU-THOLD(300)",
      "LRU-2",        "GD*C(1)",       "GD*C(packet)",
      "RANDOM",       "CLOCK",         "DELAY-CLOCK:k=3",
      "PROB-LRU:p=0.25", "DELAY-LRU:k=8", "BATCH-LRU:batch=16"};
  return names;
}

class PolicyPropertyTest : public testing::TestWithParam<std::string> {};

// Small synthetic traces with deliberately different request mixes for the
// dense/sparse differential: the paper's DFN profile, the RTP profile (very
// different class composition), and a one-timer-heavy DFN variant (flatter
// popularity curve => many documents referenced exactly once, the situation
// where eviction-order divergence between the two representations would
// surface first).
const std::vector<trace::Trace>& fuzz_traces() {
  static const std::vector<trace::Trace> traces = [] {
    std::vector<trace::Trace> out;

    synth::GeneratorOptions gen;
    gen.seed = 101;
    out.push_back(synth::TraceGenerator(
                      synth::WorkloadProfile::DFN().scaled(0.001), gen)
                      .generate());

    gen.seed = 202;
    out.push_back(synth::TraceGenerator(
                      synth::WorkloadProfile::RTP().scaled(0.0012), gen)
                      .generate());

    gen.seed = 303;
    synth::WorkloadProfile one_timer_heavy =
        synth::WorkloadProfile::DFN().scaled(0.001);
    for (const auto cls : trace::kAllDocumentClasses) {
      one_timer_heavy.of(cls).alpha = 1.1;
    }
    out.push_back(synth::TraceGenerator(one_timer_heavy, gen).generate());
    return out;
  }();
  return traces;
}

const std::vector<trace::DenseTrace>& fuzz_dense_traces() {
  static const std::vector<trace::DenseTrace> traces = [] {
    std::vector<trace::DenseTrace> out;
    for (const trace::Trace& t : fuzz_traces()) {
      out.push_back(trace::densify(t));
    }
    return out;
  }();
  return traces;
}

void expect_identical_results(const sim::SimResult& sparse,
                              const sim::SimResult& dense,
                              const std::string& label) {
  EXPECT_EQ(sparse.policy_name, dense.policy_name) << label;
  EXPECT_EQ(sparse.overall.requests, dense.overall.requests) << label;
  EXPECT_EQ(sparse.overall.hits, dense.overall.hits) << label;
  EXPECT_EQ(sparse.overall.requested_bytes, dense.overall.requested_bytes)
      << label;
  EXPECT_EQ(sparse.overall.hit_bytes, dense.overall.hit_bytes) << label;
  for (std::size_t c = 0; c < sparse.per_class.size(); ++c) {
    EXPECT_EQ(sparse.per_class[c].hits, dense.per_class[c].hits)
        << label << " class " << c;
    EXPECT_EQ(sparse.per_class[c].hit_bytes, dense.per_class[c].hit_bytes)
        << label << " class " << c;
  }
  EXPECT_EQ(sparse.evictions, dense.evictions) << label;
  EXPECT_EQ(sparse.bypasses, dense.bypasses) << label;
  EXPECT_EQ(sparse.modification_misses, dense.modification_misses) << label;
  EXPECT_EQ(sparse.interrupted_transfers, dense.interrupted_transfers)
      << label;
}

TEST_P(PolicyPropertyTest, RandomWorkloadKeepsInvariants) {
  Cache cache(10000, make_policy(GetParam()));
  util::Rng rng(2024);
  for (int step = 0; step < 20000; ++step) {
    const ObjectId id = rng.below(500);
    const std::uint64_t size = 1 + rng.below(400);
    const auto cls = static_cast<trace::DocumentClass>(rng.below(5));
    const bool force_miss = rng.chance(0.02);
    cache.access(id, size, cls, force_miss);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
    if (step % 1000 == 0) {
      ASSERT_TRUE(cache.check_invariants());
    }
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST_P(PolicyPropertyTest, DeterministicReplay) {
  auto run = [&](std::uint64_t seed) {
    Cache cache(5000, make_policy(GetParam()));
    util::Rng rng(seed);
    std::uint64_t hits = 0;
    for (int step = 0; step < 10000; ++step) {
      const ObjectId id = rng.below(300);
      const std::uint64_t size = 1 + rng.below(200);
      if (cache.access(id, size, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    return std::pair(hits, cache.used_bytes());
  };
  EXPECT_EQ(run(7), run(7));
}

TEST_P(PolicyPropertyTest, SingleObjectWorkload) {
  Cache cache(100, make_policy(GetParam()));
  EXPECT_EQ(cache.access(1, 50, trace::DocumentClass::kHtml).kind,
            Cache::AccessKind::kMiss);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(cache.access(1, 50, trace::DocumentClass::kHtml).kind,
              Cache::AccessKind::kHit);
  }
  EXPECT_EQ(cache.object_count(), 1u);
}

TEST_P(PolicyPropertyTest, FullChurnNeverUnderflows) {
  // Objects exactly the cache size force a full eviction every miss.
  Cache cache(64, make_policy(GetParam()));
  for (ObjectId id = 0; id < 200; ++id) {
    const auto outcome = cache.access(id, 64, trace::DocumentClass::kOther);
    ASSERT_EQ(outcome.kind, Cache::AccessKind::kMiss);
    ASSERT_EQ(cache.object_count(), 1u);
    ASSERT_EQ(cache.used_bytes(), 64u);
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST_P(PolicyPropertyTest, EraseDuringChurnIsSafe) {
  Cache cache(1000, make_policy(GetParam()));
  util::Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    const ObjectId id = rng.below(100);
    if (rng.chance(0.15)) {
      cache.erase(id);
    } else {
      cache.access(id, 1 + rng.below(100), trace::DocumentClass::kImage);
    }
  }
  ASSERT_TRUE(cache.check_invariants());
}

TEST_P(PolicyPropertyTest, HitRateGrowsWithCacheSize) {
  // The paper's log-like growth claim in its weakest form: more capacity
  // never hurts badly. We demand monotone non-decreasing hit counts along a
  // doubling ladder (allowing a tiny tolerance for non-stack policies,
  // which are not strictly inclusive).
  auto hits_at = [&](std::uint64_t capacity) {
    Cache cache(capacity, make_policy(GetParam()));
    util::Rng rng(5);
    std::uint64_t hits = 0;
    for (int step = 0; step < 30000; ++step) {
      // Zipf-ish: small ids much more likely.
      const ObjectId id = rng.below(1 + rng.below(400));
      const std::uint64_t size = 1 + (id * 37) % 256;
      if (cache.access(id, size, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    return hits;
  };
  const std::uint64_t h1 = hits_at(1 << 10);
  const std::uint64_t h2 = hits_at(1 << 13);
  const std::uint64_t h3 = hits_at(1 << 16);
  EXPECT_GE(static_cast<double>(h2), static_cast<double>(h1) * 0.95);
  EXPECT_GE(static_cast<double>(h3), static_cast<double>(h2) * 0.95);
  EXPECT_GT(h3, h1);  // strictly better across a 64x capacity range
}

TEST_P(PolicyPropertyTest, DenseReplayMatchesSparseOnFuzzedTraces) {
  // Differential fuzzing of the dense-id representation: for every factory
  // policy and every synthetic trace mix, the flat-array replay must be
  // bit-identical to the hash-backed one.
  const cache::PolicySpec spec = policy_spec_from_name(GetParam());
  for (std::size_t t = 0; t < fuzz_traces().size(); ++t) {
    const trace::Trace& sparse = fuzz_traces()[t];
    const trace::DenseTrace& dense = fuzz_dense_traces()[t];
    const std::uint64_t capacity = sparse.overall_size_bytes() / 20;
    expect_identical_results(sim::simulate(sparse, capacity, spec),
                             sim::simulate(dense, capacity, spec),
                             GetParam() + " trace " + std::to_string(t));
  }
}

TEST(RandomSeedTest, SameSeedReproducesBitIdenticalResults) {
  // The seeded draw stream makes RANDOM a deterministic function of
  // (trace, capacity, seed): two runs with the same seed must agree on
  // every counter, on both representations.
  PolicySpec spec = policy_spec_from_name("RANDOM:seed=42");
  for (std::size_t t = 0; t < fuzz_traces().size(); ++t) {
    const trace::Trace& sparse = fuzz_traces()[t];
    const std::uint64_t capacity = sparse.overall_size_bytes() / 20;
    expect_identical_results(sim::simulate(sparse, capacity, spec),
                             sim::simulate(sparse, capacity, spec),
                             "RANDOM rerun trace " + std::to_string(t));
    expect_identical_results(
        sim::simulate(fuzz_dense_traces()[t], capacity, spec),
        sim::simulate(fuzz_dense_traces()[t], capacity, spec),
        "RANDOM dense rerun trace " + std::to_string(t));
  }
}

TEST(RandomSeedTest, DifferentSeedsGiveCloseButDistinctResults) {
  // Different seeds change individual victim picks (so the counters should
  // not be bit-identical on a non-trivial trace) while leaving the hit
  // ratio statistically indistinguishable: RANDOM's expected behavior under
  // IRM depends only on the popularity distribution, not the seed.
  const trace::Trace& t = fuzz_traces()[0];
  const std::uint64_t capacity = t.overall_size_bytes() / 20;
  const sim::SimResult a =
      sim::simulate(t, capacity, policy_spec_from_name("RANDOM:seed=1"));
  const sim::SimResult b =
      sim::simulate(t, capacity, policy_spec_from_name("RANDOM:seed=99"));
  EXPECT_NE(a.overall.hits, b.overall.hits);
  const double ha = a.overall.hit_rate();
  const double hb = b.overall.hit_rate();
  EXPECT_NEAR(ha, hb, 0.02) << "seed should not shift the hit ratio";
}

TEST(RandomSeedTest, SeedIsNotPartOfTheDisplayName) {
  // Result tables aggregate by scheme; two seeds are the same scheme.
  EXPECT_EQ(make_policy("RANDOM:seed=7")->name(), "RANDOM");
  EXPECT_EQ(make_policy("random")->name(), "RANDOM");
}

TEST(PolicyPropertyOptTest, DenseReplayMatchesSparseForOpt) {
  // OPT needs the whole request stream up front, so it goes through the
  // explicit-policy simulate overload; the clairvoyant schedule must also be
  // representation-independent. The dense OPT oracle is built from the
  // renumbered stream so its lookahead keys match the replayed ids.
  for (std::size_t t = 0; t < fuzz_traces().size(); ++t) {
    const trace::Trace& sparse = fuzz_traces()[t];
    const trace::DenseTrace& dense = fuzz_dense_traces()[t];
    const std::uint64_t capacity = sparse.overall_size_bytes() / 20;
    expect_identical_results(
        sim::simulate(sparse, capacity,
                      std::make_unique<OptPolicy>(sparse.requests)),
        sim::simulate(dense, capacity,
                      std::make_unique<OptPolicy>(dense.trace.requests)),
        "OPT trace " + std::to_string(t));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         testing::ValuesIn(all_policy_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace webcache::cache
