// Shared helpers for replacement-policy tests: drive policies through the
// Cache container with uniform-size objects so eviction order is the only
// observable under test.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/cache.hpp"
#include "cache/policy.hpp"

namespace webcache::cache::testutil {

/// A cache that holds exactly `slots` unit-sized objects.
inline Cache unit_cache(std::unique_ptr<ReplacementPolicy> policy,
                        std::uint64_t slots) {
  return Cache(slots, std::move(policy));
}

/// Accesses a unit-sized object of class Other; returns true on hit.
inline bool access(Cache& cache, ObjectId id) {
  return cache.access(id, 1, trace::DocumentClass::kOther).kind ==
         Cache::AccessKind::kHit;
}

/// Accesses an object of the given size; returns the full outcome.
inline Cache::AccessOutcome access_sized(Cache& cache, ObjectId id,
                                         std::uint64_t size) {
  return cache.access(id, size, trace::DocumentClass::kOther);
}

/// Ids currently resident, for containment assertions.
inline std::vector<ObjectId> resident(const Cache& cache,
                                      std::initializer_list<ObjectId> ids) {
  std::vector<ObjectId> out;
  for (const ObjectId id : ids) {
    if (cache.contains(id)) out.push_back(id);
  }
  return out;
}

}  // namespace webcache::cache::testutil
