#include "cache/random.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "policy_test_util.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

using testutil::access;
using testutil::unit_cache;

TEST(Random, VictimIsAlwaysResident) {
  Cache cache = unit_cache(std::make_unique<RandomPolicy>(), 4);
  util::Rng rng(11);
  for (int step = 0; step < 5000; ++step) {
    access(cache, rng.below(64));
    ASSERT_LE(cache.object_count(), 4u);
    if (step % 500 == 0) ASSERT_TRUE(cache.check_invariants());
  }
}

TEST(Random, SameSeedPicksTheSameVictims) {
  auto run = [](std::uint64_t seed) {
    Cache cache = unit_cache(std::make_unique<RandomPolicy>(seed), 8);
    util::Rng rng(42);
    std::vector<bool> outcomes;
    for (int step = 0; step < 4000; ++step) {
      outcomes.push_back(access(cache, rng.below(100)));
    }
    return outcomes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6)) << "different seeds should diverge somewhere";
}

TEST(Random, ClearRestartsTheDrawStream) {
  // clear() re-seeds, so a reset run replays the exact victim sequence.
  RandomPolicy policy(77);
  auto drive = [&] {
    std::vector<ObjectId> victims;
    for (ObjectId id = 0; id < 16; ++id) {
      CacheObject obj;
      obj.id = id;
      policy.on_insert(obj);
    }
    for (int i = 0; i < 8; ++i) {
      const ObjectId v = policy.choose_victim();
      victims.push_back(v);
      policy.on_evict(v);
    }
    policy.clear();
    return victims;
  };
  EXPECT_EQ(drive(), drive());
}

TEST(Random, DenseAndSparseIndicesAgree) {
  // Same seed, same call sequence: the flat-array index must yield the
  // same victims as the hash-backed one (the draw picks a position in the
  // shared swap-remove vector, which evolves identically).
  RandomPolicy sparse(3);
  RandomPolicy dense(3);
  dense.reserve_ids(64);
  util::Rng rng(8);
  std::vector<ObjectId> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.size() < 40 && (live.empty() || rng.chance(0.6))) {
      ObjectId id = rng.below(64);
      bool resident = false;
      for (const ObjectId l : live) resident |= (l == id);
      if (resident) continue;
      CacheObject obj;
      obj.id = id;
      sparse.on_insert(obj);
      dense.on_insert(obj);
      live.push_back(id);
    } else {
      const ObjectId vs = sparse.choose_victim();
      const ObjectId vd = dense.choose_victim();
      ASSERT_EQ(vs, vd) << "step " << step;
      sparse.on_evict(vs);
      dense.on_evict(vd);
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i] == vs) {
          live[i] = live.back();
          live.pop_back();
          break;
        }
      }
    }
  }
}

TEST(Random, PolicyRejectsProtocolViolations) {
  RandomPolicy policy;
  CacheObject obj;
  obj.id = 1;
  policy.on_insert(obj);
  EXPECT_THROW(policy.on_insert(obj), std::logic_error);
  EXPECT_THROW(policy.on_evict(2), std::logic_error);
  policy.on_evict(1);
  EXPECT_THROW(policy.choose_victim(), std::logic_error);
}

TEST(Random, ProbeReportsResidentCount) {
  RandomPolicy policy;
  EXPECT_EQ(policy.probe().heap_entries, 0u);
  CacheObject obj;
  obj.id = 9;
  policy.on_insert(obj);
  EXPECT_EQ(policy.probe().heap_entries, 1u);
}

TEST(Random, NameAndSeedAccessor) {
  EXPECT_EQ(RandomPolicy().name(), "RANDOM");
  EXPECT_EQ(RandomPolicy(123).seed(), 123u);
}

}  // namespace
}  // namespace webcache::cache
