// Stack-distance properties. LRU is a *stack algorithm* (Mattson et al.):
// at every instant, the contents of a smaller LRU cache are a subset of a
// larger one processing the same unit-size reference stream — which is why
// LRU hit rate is monotone in capacity with no Belady anomaly. FIFO is the
// classic non-stack counterexample. These tests pin both facts, and verify
// the inclusion numerically for the priority-based policies where it holds
// (LFU with deterministic tie-breaking is also a priority/stack algorithm).
#include <gtest/gtest.h>

#include <vector>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "util/rng.hpp"

namespace webcache::cache {
namespace {

std::vector<ObjectId> reference_stream(std::uint64_t seed, int length,
                                       std::uint64_t population) {
  util::Rng rng(seed);
  std::vector<ObjectId> stream;
  stream.reserve(static_cast<std::size_t>(length));
  for (int i = 0; i < length; ++i) {
    stream.push_back(rng.below(1 + rng.below(population)));
  }
  return stream;
}

/// Runs the stream through caches of the given capacities (unit-size
/// objects) and checks the inclusion property at every step.
bool inclusion_holds(const char* policy, const std::vector<ObjectId>& stream,
                     std::uint64_t small_slots, std::uint64_t large_slots) {
  Cache small(small_slots, make_policy(policy));
  Cache large(large_slots, make_policy(policy));
  for (const ObjectId id : stream) {
    small.access(id, 1, trace::DocumentClass::kOther);
    large.access(id, 1, trace::DocumentClass::kOther);
    // Inclusion: everything the small cache holds, the large one holds.
    // Checking via hits is O(1); verify residency directly on a sample.
    if (small.contains(id) && !large.contains(id)) return false;
  }
  // Full containment check at the end (contains() over the stream's ids).
  for (const ObjectId id : stream) {
    if (small.contains(id) && !large.contains(id)) return false;
  }
  return true;
}

TEST(StackProperty, LruInclusionHolds) {
  for (const std::uint64_t seed : {1u, 7u, 31u}) {
    const auto stream = reference_stream(seed, 20000, 300);
    EXPECT_TRUE(inclusion_holds("LRU", stream, 16, 64)) << "seed " << seed;
    EXPECT_TRUE(inclusion_holds("LRU", stream, 50, 51)) << "seed " << seed;
  }
}

TEST(StackProperty, LfuInclusionHoldsEmpirically) {
  // Global-count LFU is a priority (stack) algorithm; our LFU counts only
  // in-cache references, for which inclusion is not a theorem — but it is
  // expected to hold on ordinary Zipf-ish streams. Pinned as a regression
  // on a fixed stream.
  const auto stream = reference_stream(3, 20000, 300);
  EXPECT_TRUE(inclusion_holds("LFU", stream, 16, 64));
}

TEST(StackProperty, LruHitCountMonotoneInCapacity) {
  const auto stream = reference_stream(11, 30000, 500);
  std::uint64_t previous = 0;
  for (const std::uint64_t slots : {8u, 16u, 32u, 64u, 128u}) {
    Cache cache(slots, make_policy("LRU"));
    std::uint64_t hits = 0;
    for (const ObjectId id : stream) {
      if (cache.access(id, 1, trace::DocumentClass::kOther).kind ==
          Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    EXPECT_GE(hits, previous) << slots << " slots";
    previous = hits;
  }
}

TEST(StackProperty, FifoExhibitsBeladyAnomaly) {
  // The canonical anomaly string: FIFO with 4 frames faults MORE than with
  // 3 frames on 1 2 3 4 1 2 5 1 2 3 4 5.
  const std::vector<ObjectId> belady = {1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5};
  auto faults = [&](std::uint64_t slots) {
    Cache cache(slots, make_policy("FIFO"));
    std::uint64_t misses = 0;
    for (const ObjectId id : belady) {
      if (cache.access(id, 1, trace::DocumentClass::kOther).kind !=
          Cache::AccessKind::kHit) {
        ++misses;
      }
    }
    return misses;
  };
  EXPECT_EQ(faults(3), 9u);
  EXPECT_EQ(faults(4), 10u);  // more capacity, more faults
}

}  // namespace
}  // namespace webcache::cache
