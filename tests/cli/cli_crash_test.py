#!/usr/bin/env python3
"""Crash-injection harness, run under CTest as `cli_crash`.

A checkpointed streaming replay must survive being SIGKILLed at arbitrary
request indices — including in the middle of a checkpoint write, leaving a
torn file under the final name — and, once resumed, finish with results
byte-identical to an uninterrupted run: the full-precision --result-out
JSON (every counter and latency double) and the webcache.metrics.v1
windowed series. Torn or corrupt checkpoints must be rejected on stderr
with a named diagnostic, never silently restored.

The kill points are drawn from a seeded RNG so every run of this harness
exercises the same ≥10 crash sites across five eviction families, sparse
and densified.

Usage: cli_crash_test.py <path-to-webcache-binary>
"""

import os
import random
import signal
import subprocess
import sys
import tempfile

FAILURES = []

POLICIES = [
    ("LRU", "lru"),
    ("GDSF(1)", "gdsf"),
    ("RANDOM:seed=7", "random"),
    ("DELAY-CLOCK:k=3", "delay_clock"),
    ("PROB-LRU:p=0.5,seed=9", "prob_lru"),
]
TOTAL_REQUESTS = 13436  # DFN --scale=0.002 --seed=7
CHECKPOINT_EVERY = 1500
METRICS_WINDOW = 113


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(cli, *args, env_extra=None, timeout=240):
    env = None
    if env_extra:
        env = {**os.environ, **env_extra}
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=timeout,
        env=env
    )


def read(path):
    with open(path, "rb") as f:
        return f.read()


def simulate_args(cli, wct, policy, densified, result_out, metrics_out):
    args = [cli, "simulate", wct, f"--policy={policy}", "--cache-mb=4",
            "--stream", f"--metrics-window={METRICS_WINDOW}",
            f"--metrics-out={metrics_out}", f"--result-out={result_out}"]
    if densified:
        args.append("--densify=256")
    return args


def crash_chain(cli, wct, tmp, policy, tag, densified, kill_points,
                torn_write):
    """Kill a checkpointed run at each point in turn, resume after every
    crash, and compare the finished run byte-for-byte with the
    uninterrupted baseline."""
    mode = "densified" if densified else "sparse"
    label = f"{tag} {mode}"

    base_result = os.path.join(tmp, f"{tag}_{mode}_base_result.json")
    base_metrics = os.path.join(tmp, f"{tag}_{mode}_base_metrics.json")
    p = run(*simulate_args(cli, wct, policy, densified, base_result,
                           base_metrics))
    check(f"{label}: baseline runs", p.returncode == 0,
          p.stderr.strip()[:200])
    if p.returncode != 0:
        return

    ckpt_dir = os.path.join(tmp, f"ckpt_{tag}_{mode}")
    final_result = os.path.join(tmp, f"{tag}_{mode}_result.json")
    final_metrics = os.path.join(tmp, f"{tag}_{mode}_metrics.json")
    ckpt_flags = [f"--checkpoint-dir={ckpt_dir}",
                  f"--checkpoint-every={CHECKPOINT_EVERY}"]

    # Segment 0 starts cold; each later segment resumes the ring.
    resumed = False
    for i, kill_at in enumerate(kill_points):
        env = {"WEBCACHE_CRASH_AT_REQUEST": str(kill_at)}
        if torn_write and i == 0:
            # Die mid-checkpoint-write instead: the temp file is truncated
            # to half and renamed over the final name before the SIGKILL,
            # so the newest checkpoint on disk is torn.
            env = {"WEBCACHE_CHECKPOINT_CRASH_AT_WRITE": "2"}
        argv = simulate_args(cli, wct, policy, densified, final_result,
                             final_metrics) + ckpt_flags
        if resumed:
            argv.append("--resume")
        p = run(*argv, env_extra=env)
        check(f"{label}: segment {i} dies by SIGKILL",
              p.returncode == -signal.SIGKILL,
              f"rc={p.returncode} stderr={p.stderr.strip()[:200]}")
        resumed = True

    argv = simulate_args(cli, wct, policy, densified, final_result,
                         final_metrics) + ckpt_flags + ["--resume"]
    p = run(*argv)
    check(f"{label}: final resume completes", p.returncode == 0,
          p.stderr.strip()[:200])
    if p.returncode != 0:
        return
    check(f"{label}: final resume actually resumed",
          "resumed after request" in p.stderr, p.stderr.strip()[:200])
    if torn_write:
        check(f"{label}: torn checkpoint rejected by name",
              "rejected '" in p.stderr and "checkpoint" in p.stderr,
              p.stderr.strip()[:300])

    check(f"{label}: result JSON byte-identical after crashes",
          read(base_result) == read(final_result))
    check(f"{label}: metrics JSON byte-identical after crashes",
          read(base_metrics) == read(final_metrics))


def main():
    if len(sys.argv) != 2:
        print("usage: cli_crash_test.py <webcache-binary>", file=sys.stderr)
        return 2
    cli = sys.argv[1]
    rng = random.Random(0xC0FFEE)

    with tempfile.TemporaryDirectory(prefix="webcache_cli_crash.") as tmp:
        wct = os.path.join(tmp, "mix.wct")
        p = run(cli, "generate", "--profile=DFN", "--scale=0.002", "--seed=7",
                f"--out={wct}")
        check("generate mix", p.returncode == 0, p.stderr.strip()[:200])
        if FAILURES:
            return 1

        # Two randomized kill points per cell, increasing, both past the
        # first checkpoint so every resume starts from real state: 5
        # policies x {sparse, densified} = 20 kill sites, plus torn-write
        # cells below.
        for policy, tag in POLICIES:
            for densified in (False, True):
                k1 = rng.randrange(CHECKPOINT_EVERY + 100,
                                   TOTAL_REQUESTS // 2)
                k2 = rng.randrange(TOTAL_REQUESTS // 2 + 100,
                                   TOTAL_REQUESTS - 200)
                crash_chain(cli, wct, tmp, policy, tag, densified,
                            [k1, k2], torn_write=False)

        # Torn-checkpoint cells: the crash happens inside the checkpoint
        # writer, leaving a half-length file under the final checkpoint
        # name. Resume must reject it by name and fall back.
        crash_chain(cli, wct, tmp, "LRU", "lru_torn", False,
                    [0], torn_write=True)
        crash_chain(cli, wct, tmp, "GDSF(1)", "gdsf_torn", True,
                    [0], torn_write=True)

        # A checkpoint directory full of garbage must abort the resume with
        # diagnostics, never cold-start over the user's intent.
        bad_dir = os.path.join(tmp, "ckpt_garbage")
        os.makedirs(bad_dir)
        with open(os.path.join(bad_dir, "checkpoint-00000000000000001000.wckp"),
                  "wb") as f:
            f.write(b"WCKP garbage that is not a checkpoint")
        p = run(cli, "simulate", wct, "--policy=LRU", "--cache-mb=4",
                "--stream", f"--checkpoint-dir={bad_dir}", "--resume")
        check("garbage checkpoint dir aborts resume",
              p.returncode == 1 and "no usable checkpoint" in p.stderr,
              f"rc={p.returncode} stderr={p.stderr.strip()[:300]}")

        # Resuming under a different configuration must be rejected with the
        # mismatching field named.
        good_dir = os.path.join(tmp, "ckpt_lru_sparse")
        p = run(cli, "simulate", wct, "--policy=GDSF(1)", "--cache-mb=4",
                "--stream", f"--checkpoint-dir={good_dir}", "--resume")
        check("cross-policy resume rejected by field name",
              p.returncode == 1 and "fingerprint mismatch" in p.stderr
              and "policy" in p.stderr,
              f"rc={p.returncode} stderr={p.stderr.strip()[:300]}")

        # Checkpoint flags require the streaming path.
        p = run(cli, "simulate", wct, "--policy=LRU", "--cache-mb=4",
                f"--checkpoint-dir={os.path.join(tmp, 'nope')}")
        check("checkpoints without --stream fail cleanly",
              p.returncode == 1 and "stream" in p.stderr,
              f"rc={p.returncode} stderr={p.stderr.strip()[:200]}")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}",
              file=sys.stderr)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
