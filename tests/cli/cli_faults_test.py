#!/usr/bin/env python3
"""CLI fault-path tests, run under CTest as `cli_faults`.

Covers the robustness surface of the front end:
  * a corrupted binary trace must exit nonzero with a stderr diagnostic
    naming the failing record/byte offset (never crash, never exit 0);
  * `convert --strict` must abort on the first malformed log line, naming
    the line, while the tolerant default classifies and reports it;
  * `hierarchy --faults` must replay a schedule, print the fault counters,
    and emit a webcache.metrics.v1 hierarchy JSON whose windows satisfy
    conservation (hits + lost <= requests) and roll up to the aggregate;
  * a malformed schedule file must exit 1 naming the offending line.

Usage: cli_faults_test.py <path-to-webcache-binary>
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(cli, *args, timeout=120):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=timeout
    )


def make_trace(cli, tmp):
    wct = os.path.join(tmp, "faults.wct")
    p = run(cli, "generate", "--profile=DFN", "--scale=0.001", "--seed=7",
            f"--out={wct}")
    check("generate workload", p.returncode == 0, p.stderr.strip()[:200])
    return wct


def check_corrupted_trace(cli, tmp, wct):
    # Flip one byte inside the first record: the checksum must catch it and
    # the diagnostic must point into the file.
    corrupted = os.path.join(tmp, "corrupted.wct")
    with open(wct, "rb") as f:
        data = bytearray(f.read())
    data[16 + 5] ^= 0x01
    with open(corrupted, "wb") as f:
        f.write(data)

    p = run(cli, "simulate", corrupted, "--policy=LRU")
    check("corrupted trace exits 1", p.returncode == 1,
          f"rc={p.returncode}")
    check("corrupted trace did not signal", p.returncode >= 0)
    check("diagnostic names the checksum", "checksum mismatch" in p.stderr,
          p.stderr.strip()[:200])
    check("diagnostic names a byte offset", "byte offset" in p.stderr,
          p.stderr.strip()[:200])

    # Truncation mid-record: the record index must be named.
    truncated = os.path.join(tmp, "truncated.wct")
    with open(truncated, "wb") as f:
        f.write(bytes(data[: 16 + 39 + 10]))
    p = run(cli, "simulate", truncated, "--policy=LRU")
    check("truncated trace exits 1", p.returncode == 1, f"rc={p.returncode}")
    check("diagnostic names the record", "record 1" in p.stderr,
          p.stderr.strip()[:200])


def check_strict_convert(cli, tmp, wct):
    log = os.path.join(tmp, "faults.log")
    out = os.path.join(tmp, "roundtrip.wct")
    p = run(cli, "export", wct, log)
    check("export squid log", p.returncode == 0, p.stderr.strip()[:200])
    with open(log, "a") as f:
        f.write("this line is not squid format\n")

    p = run(cli, "convert", log, out)
    check("tolerant convert succeeds", p.returncode == 0,
          p.stderr.strip()[:200])
    check("tolerant convert reports the reject",
          "1 lines rejected" in p.stderr, p.stderr.strip()[:300])

    p = run(cli, "convert", log, out, "--strict")
    check("strict convert exits 1", p.returncode == 1, f"rc={p.returncode}")
    check("strict convert names the line", "squid log line" in p.stderr,
          p.stderr.strip()[:200])


def check_fault_metrics(cli, tmp, wct):
    schedule = os.path.join(tmp, "faults.schedule")
    with open(schedule, "w") as f:
        f.write(
            "# CLI fault scenario\n"
            "probe-timeout-rate 1.0\n"
            "1500 edge-crash 0\n"
            "2000 root-outage\n"
            "2600 edge-recover 0\n"
            "3000 root-recover\n"
        )
    mjson = os.path.join(tmp, "fault_metrics.json")
    p = run(cli, "hierarchy", wct, "--edges=3", "--mesh",
            f"--faults={schedule}", f"--metrics-out={mjson}",
            "--metrics-window=500")
    check("hierarchy --faults runs", p.returncode == 0,
          p.stderr.strip()[:300])
    check("fault table printed", "Fault events applied" in p.stdout,
          p.stdout[:300])

    with open(mjson) as f:
        doc = json.load(f)
    check("schema tag", doc.get("schema") == "webcache.metrics.v1")
    check("hierarchy mode tag", doc.get("mode") == "hierarchy")
    agg = doc.get("aggregate", {})
    check("aggregate faults present", "faults" in agg)
    faults = agg.get("faults", {})
    check("events applied", faults.get("events_applied", 0) == 4)
    check("failovers counted", faults.get("failovers", 0) > 0)
    check("lost requests counted", faults.get("lost_requests", 0) > 0)

    windows = doc.get("windows", [])
    check("windows present", len(windows) >= 1)
    lost = failovers = events = 0
    conserved = True
    availability_ok = True
    degraded_seen = False
    for w in windows:
        overall = w["overall"]
        if overall["hits"] + overall["lost"] > overall["requests"]:
            conserved = False
        lost += overall["lost"]
        failovers += w["failovers"]
        events += w["fault_events"]
        if w.get("availability") is None:
            availability_ok = False
        elif w["availability"] < 1.0:
            degraded_seen = True
    check("window conservation (hits + lost <= requests)", conserved)
    check("window lost rolls up", lost == faults.get("lost_requests"))
    check("window failovers roll up", failovers == faults.get("failovers"))
    check("window fault events roll up",
          events == faults.get("events_applied"))
    check("availability present in every window", availability_ok)
    check("availability dips during the outage", degraded_seen)

    curves = doc.get("warmup_curves", [])
    check("warm-up curves recorded", len(curves) == 2)
    check("root curve serialized by name",
          any(c.get("node") == "root" for c in curves))

    # Determinism: the same schedule yields byte-identical metrics.
    mjson2 = os.path.join(tmp, "fault_metrics2.json")
    p = run(cli, "hierarchy", wct, "--edges=3", "--mesh",
            f"--faults={schedule}", f"--metrics-out={mjson2}",
            "--metrics-window=500")
    check("second fault run succeeds", p.returncode == 0)
    with open(mjson) as a, open(mjson2) as b:
        check("fault metrics deterministic", a.read() == b.read())


def check_bad_schedule(cli, tmp, wct):
    schedule = os.path.join(tmp, "bad.schedule")
    with open(schedule, "w") as f:
        f.write("1500 melt-down 0\n")
    p = run(cli, "hierarchy", wct, f"--faults={schedule}")
    check("bad schedule exits 1", p.returncode == 1, f"rc={p.returncode}")
    check("bad schedule names the line", "line 1" in p.stderr,
          p.stderr.strip()[:200])

    p = run(cli, "hierarchy", wct, "--faults=/nonexistent/faults.schedule")
    check("missing schedule exits 1", p.returncode == 1)


def main():
    if len(sys.argv) != 2:
        print("usage: cli_faults_test.py <webcache-binary>", file=sys.stderr)
        return 2
    cli = sys.argv[1]
    with tempfile.TemporaryDirectory(prefix="webcache_cli_faults.") as tmp:
        wct = make_trace(cli, tmp)
        check_corrupted_trace(cli, tmp, wct)
        check_strict_convert(cli, tmp, wct)
        check_fault_metrics(cli, tmp, wct)
        check_bad_schedule(cli, tmp, wct)
    if FAILURES:
        print(f"\n{len(FAILURES)} fault check(s) failed: {FAILURES}",
              file=sys.stderr)
        return 1
    print("\nall CLI fault checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
