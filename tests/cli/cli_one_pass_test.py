#!/usr/bin/env python3
"""One-pass sweep CLI smoke test, run under CTest as `cli_one_pass`.

The one-pass stack-analysis fast path behind `sweep --one-pass` is exact,
so `--one-pass=on` and `--one-pass=off` must produce the same numbers on a
mixed-policy grid. This test generates a synthetic mix, exports the sweep
curves both ways via --curve-out, and asserts:

  * both documents carry the webcache.sweep.v1 schema with the requested
    policy columns and fraction ladder;
  * every LRU column (the columns the fast path may take over) is
    identical between the two runs, counter for counter;
  * the non-LRU columns — which never take the fast path — agree too;
  * the rendered stdout tables match byte for byte;
  * a bogus --one-pass value fails with a diagnostic, not a crash.

Usage: cli_one_pass_test.py <path-to-webcache-binary>
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []

POLICIES = "LRU,LFU-DA,GDS(1)"
FRACTIONS = "0.01,0.02,0.04,0.08"


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(cli, *args, timeout=240):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=timeout
    )


def sweep(cli, wct, mode, out_path):
    return run(
        cli, "sweep", wct, f"--policies={POLICIES}",
        f"--fractions={FRACTIONS}", "--warmup=0.1", "--threads=2",
        f"--one-pass={mode}", f"--curve-out={out_path}",
    )


def load_curves(path):
    with open(path) as f:
        doc = json.load(f)
    check("schema tag", doc.get("schema") == "webcache.sweep.v1")
    points = doc.get("points", [])
    check("one point per fraction", len(points) == len(FRACTIONS.split(",")))
    for point in points:
        names = [p["policy"] for p in point["policies"]]
        check(
            f"policy columns at fraction {point['cache_fraction']}",
            names == ["LRU", "LFU-DA", "GDS(1)"],
            f"got {names}",
        )
    return doc


def columns(doc, policy):
    """[(capacity, policy-record)] for one policy column across the sweep."""
    out = []
    for point in doc.get("points", []):
        for rec in point.get("policies", []):
            if rec.get("policy") == policy:
                out.append((point.get("capacity_bytes"), rec))
    return out


def compare_columns(on_doc, off_doc, policy):
    on_col = columns(on_doc, policy)
    off_col = columns(off_doc, policy)
    if len(on_col) != len(off_col) or not on_col:
        check(f"{policy} column present both ways", False,
              f"{len(on_col)} vs {len(off_col)} cells")
        return
    for (cap_on, rec_on), (cap_off, rec_off) in zip(on_col, off_col):
        if cap_on != cap_off or rec_on != rec_off:
            check(f"{policy} columns identical on/off", False,
                  f"capacity {cap_on}: {rec_on} != {rec_off}")
            return
    check(f"{policy} columns identical on/off", True)


def main():
    if len(sys.argv) != 2:
        print("usage: cli_one_pass_test.py <webcache-binary>", file=sys.stderr)
        return 2
    cli = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="webcache_cli_one_pass.") as tmp:
        wct = os.path.join(tmp, "mix.wct")
        on_json = os.path.join(tmp, "curves_on.json")
        off_json = os.path.join(tmp, "curves_off.json")

        p = run(cli, "generate", "--profile=DFN", "--scale=0.002", "--seed=11",
                f"--out={wct}")
        check("generate mix", p.returncode == 0, p.stderr.strip()[:200])

        p_on = sweep(cli, wct, "on", on_json)
        check("sweep --one-pass=on", p_on.returncode == 0,
              p_on.stderr.strip()[:200])
        p_off = sweep(cli, wct, "off", off_json)
        check("sweep --one-pass=off", p_off.returncode == 0,
              p_off.stderr.strip()[:200])
        if FAILURES:
            print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}",
                  file=sys.stderr)
            return 1

        check("rendered tables identical on/off",
              p_on.stdout == p_off.stdout)

        on_doc = load_curves(on_json)
        off_doc = load_curves(off_json)
        for policy in ("LRU", "LFU-DA", "GDS(1)"):
            compare_columns(on_doc, off_doc, policy)

        # auto is the default and must agree with both explicit modes.
        p_auto = run(cli, "sweep", wct, f"--policies={POLICIES}",
                     f"--fractions={FRACTIONS}", "--warmup=0.1",
                     "--threads=2")
        check("sweep default (auto)", p_auto.returncode == 0,
              p_auto.stderr.strip()[:200])
        check("default tables match explicit modes",
              p_auto.stdout == p_on.stdout)

        p_bad = run(cli, "sweep", wct, "--one-pass=maybe")
        check("bogus --one-pass exits 1 with a diagnostic",
              p_bad.returncode == 1 and "--one-pass" in p_bad.stderr,
              f"rc={p_bad.returncode} stderr={p_bad.stderr.strip()[:200]}")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}",
              file=sys.stderr)
        return 1
    print("\nall one-pass CLI checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
