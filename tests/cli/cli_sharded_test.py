#!/usr/bin/env python3
"""Sharded replay CLI smoke test, run under CTest as `cli_sharded`.

`simulate --threads=N` routes through the sharded replay engine; for the
LRU family the engine is exact, so every thread count must reproduce the
plain serial run byte for byte — stdout tables AND the --metrics-out JSON
series. This test generates a synthetic mix and asserts:

  * `simulate --threads=1` output is identical to plain `simulate`
    (they share the serial code path by construction);
  * `--threads=4` and an explicit `--shards=8` are still identical;
  * the webcache.metrics.v1 export is identical serial vs sharded;
  * `--sharded=approx` runs for a heap-ordered policy (GDSF) and lands
    near the serial hit counts;
  * exact mode + heap-ordered policy fails with a diagnostic;
  * a bogus --sharded value fails with a diagnostic, not a crash.

Usage: cli_sharded_test.py <path-to-webcache-binary>
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(cli, *args, timeout=240):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=timeout
    )


def simulate(cli, wct, *extra):
    return run(cli, "simulate", wct, "--policy=LRU", "--fraction=0.04",
               "--warmup=0.1", *extra)


def main():
    if len(sys.argv) != 2:
        print("usage: cli_sharded_test.py <webcache-binary>", file=sys.stderr)
        return 2
    cli = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="webcache_cli_sharded.") as tmp:
        wct = os.path.join(tmp, "mix.wct")
        p = run(cli, "generate", "--profile=DFN", "--scale=0.002", "--seed=7",
                f"--out={wct}")
        check("generate mix", p.returncode == 0, p.stderr.strip()[:200])
        if FAILURES:
            print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}",
                  file=sys.stderr)
            return 1

        serial = simulate(cli, wct)
        check("plain simulate", serial.returncode == 0,
              serial.stderr.strip()[:200])

        for extra, name in (
            (("--threads=1",), "--threads=1"),
            (("--threads=4",), "--threads=4"),
            (("--threads=4", "--shards=8"), "--threads=4 --shards=8"),
            (("--threads=0",), "--threads=0 (hardware)"),
        ):
            p = simulate(cli, wct, *extra)
            check(f"simulate {name}", p.returncode == 0,
                  p.stderr.strip()[:200])
            check(f"{name} output identical to serial",
                  p.stdout == serial.stdout)

        # The metrics series must be identical too, window for window.
        serial_json = os.path.join(tmp, "serial.json")
        sharded_json = os.path.join(tmp, "sharded.json")
        p = simulate(cli, wct, f"--metrics-out={serial_json}")
        check("serial --metrics-out", p.returncode == 0,
              p.stderr.strip()[:200])
        p = simulate(cli, wct, "--threads=4", f"--metrics-out={sharded_json}")
        check("sharded --metrics-out", p.returncode == 0,
              p.stderr.strip()[:200])
        if not FAILURES:
            with open(serial_json) as f:
                serial_doc = json.load(f)
            with open(sharded_json) as f:
                sharded_doc = json.load(f)
            check("metrics schema",
                  serial_doc.get("schema") == "webcache.metrics.v1")
            check("metrics JSON identical serial vs sharded",
                  serial_doc == sharded_doc)

        # Approximate mode is the documented road for heap-ordered policies.
        gdsf_serial = run(cli, "simulate", wct, "--policy=GDSF(1)",
                          "--fraction=0.04", "--warmup=0.1")
        gdsf_approx = run(cli, "simulate", wct, "--policy=GDSF(1)",
                          "--fraction=0.04", "--warmup=0.1", "--threads=4",
                          "--sharded=approx")
        check("GDSF --sharded=approx runs", gdsf_approx.returncode == 0,
              gdsf_approx.stderr.strip()[:200])
        check("GDSF serial runs", gdsf_serial.returncode == 0,
              gdsf_serial.stderr.strip()[:200])

        # Exact mode cannot shard a global heap; the error must say so.
        p = run(cli, "simulate", wct, "--policy=GDSF(1)", "--fraction=0.04",
                "--threads=4", "--sharded=exact")
        check("exact + heap-ordered policy exits 1 with a diagnostic",
              p.returncode == 1 and "approx" in p.stderr.lower(),
              f"rc={p.returncode} stderr={p.stderr.strip()[:200]}")

        p = simulate(cli, wct, "--sharded=fast")
        check("bogus --sharded exits 1 with a diagnostic",
              p.returncode == 1 and "--sharded" in p.stderr,
              f"rc={p.returncode} stderr={p.stderr.strip()[:200]}")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}",
              file=sys.stderr)
        return 1
    print("\nall sharded CLI checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
