#!/usr/bin/env python3
"""CLI smoke tests, run under CTest as `cli_smoke`.

Exercises the webcache binary the way a user would: the help and error
paths must exit with the documented status codes (never crash), and a
generate -> export -> convert -> simulate round trip must produce a
--metrics-out JSON file that parses, carries the webcache.metrics.v1
schema, and satisfies the roll-up invariants (window sums equal the
aggregate, per-class sums equal the overall counters). The CSV variant
must agree with the JSON row for row.

Usage: cli_smoke_test.py <path-to-webcache-binary>
"""

import csv
import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(cli, *args, timeout=120):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=timeout
    )


def check_exit_codes(cli):
    check("help exits 0", run(cli, "help").returncode == 0)
    check("no arguments exits 2 (usage)", run(cli).returncode == 2)
    check("unknown command exits 2", run(cli, "frobnicate").returncode == 2)

    p = run(cli, "simulate", "/nonexistent/trace.wct", "--policy=LRU")
    check(
        "missing trace exits 1, not a crash",
        p.returncode == 1,
        f"rc={p.returncode} stderr={p.stderr.strip()[:200]}",
    )
    # A signal-terminated process has a negative returncode under Python.
    check("missing trace did not signal", p.returncode >= 0)


def class_slugs():
    return ["images", "html", "multi_media", "application", "other"]


def check_metrics_json(path):
    with open(path) as f:
        doc = json.load(f)

    check("schema tag", doc.get("schema") == "webcache.metrics.v1")
    for key in (
        "policy",
        "capacity_bytes",
        "window_requests",
        "total_requests",
        "warmup_requests",
        "measured_requests",
        "aggregate",
        "windows",
    ):
        check(f"top-level key {key}", key in doc)

    windows = doc["windows"]
    check("at least one window", len(windows) >= 1)
    check(
        "windows cover the whole run",
        windows[0]["first_request"] == 1
        and windows[-1]["last_request"] == doc["total_requests"],
    )

    agg = doc["aggregate"]["overall"]
    sums = {k: 0 for k in ("requests", "hits", "requested_bytes", "hit_bytes")}
    evictions = 0
    for w in windows:
        for k in sums:
            sums[k] += w["overall"][k]
        evictions += w["overall"]["evictions"]
        per_class = w["per_class"]
        check(
            "window class slugs",
            sorted(per_class.keys()) == sorted(class_slugs()),
        )
        for k in ("requests", "hits", "requested_bytes", "hit_bytes"):
            total = sum(per_class[s][k] for s in class_slugs())
            if total != w["overall"][k]:
                check(f"per-class {k} sums to overall", False,
                      f"window {w['first_request']}: {total} != {w['overall'][k]}")
                return doc
    check("per-class sums to overall in every window", True)
    for k in sums:
        check(
            f"window {k} sum equals aggregate",
            sums[k] == agg[k],
            f"{sums[k]} != {agg[k]}",
        )
    check(
        "window evictions sum equals aggregate",
        evictions == doc["aggregate"]["evictions"],
    )
    return doc


def check_metrics_csv(path, doc):
    with open(path) as f:
        rows = list(csv.DictReader(f))
    check("csv row per window", len(rows) == len(doc["windows"]))
    for row, w in zip(rows, doc["windows"]):
        if (
            int(row["first_request"]) != w["first_request"]
            or int(row["requests"]) != w["overall"]["requests"]
            or int(row["hits"]) != w["overall"]["hits"]
            or int(row["evictions"]) != w["overall"]["evictions"]
        ):
            check("csv agrees with json", False, f"row {row['first_request']}")
            return
    check("csv agrees with json", True)


def check_round_trip(cli, tmp):
    wct = os.path.join(tmp, "smoke.wct")
    log = os.path.join(tmp, "smoke.log")
    wct2 = os.path.join(tmp, "smoke2.wct")
    mjson = os.path.join(tmp, "metrics.json")
    mcsv = os.path.join(tmp, "metrics.csv")

    p = run(
        cli, "generate", "--profile=DFN", "--scale=0.001", "--seed=7",
        f"--out={wct}",
    )
    check("generate", p.returncode == 0, p.stderr.strip()[:200])
    p = run(cli, "export", wct, log)
    check("export to squid log", p.returncode == 0, p.stderr.strip()[:200])
    p = run(cli, "convert", log, wct2)
    check("convert squid log back", p.returncode == 0, p.stderr.strip()[:200])

    p = run(
        cli, "simulate", wct2, "--policy=GD*(1)", "--cache-fraction=0.04",
        f"--metrics-out={mjson}", "--metrics-window=500",
    )
    check("simulate --metrics-out json", p.returncode == 0,
          p.stderr.strip()[:200])
    doc = check_metrics_json(mjson)
    check("beta trace recorded for GD*",
          any(w.get("beta") is not None for w in doc["windows"]))

    p = run(
        cli, "simulate", wct2, "--policy=GD*(1)", "--cache-fraction=0.04",
        f"--metrics-out={mcsv}", "--metrics-window=500",
    )
    check("simulate --metrics-out csv", p.returncode == 0,
          p.stderr.strip()[:200])
    check_metrics_csv(mcsv, doc)

    # The direct squid-log path must work without the binary conversion.
    p = run(
        cli, "simulate", log, "--squid", "--policy=LRU",
        "--cache-fraction=0.04", f"--metrics-out={mjson}",
    )
    check("simulate --squid --metrics-out", p.returncode == 0,
          p.stderr.strip()[:200])
    doc = check_metrics_json(mjson)
    check("LRU has no beta trace",
          all(w.get("beta") is None for w in doc["windows"]))


def check_lazy_family(cli, tmp):
    """The lazy-promotion / RANDOM family through every policy-taking
    command, plus the parameter-error diagnostics."""
    wct = os.path.join(tmp, "lazy.wct")
    p = run(
        cli, "generate", "--profile=DFN", "--scale=0.001", "--seed=7",
        f"--out={wct}",
    )
    check("generate (lazy family)", p.returncode == 0, p.stderr.strip()[:200])

    for policy in (
        "RANDOM",
        "CLOCK",
        "DELAY-CLOCK:k=2",
        "PROB-LRU:p=0.1",
        "DELAY-LRU:k=8",
        "BATCH-LRU:batch=32",
        "prob-lru:p=0.1,seed=3",  # case-insensitive base, multi-param
    ):
        p = run(cli, "simulate", wct, f"--policy={policy}",
                "--cache-fraction=0.04")
        check(f"simulate accepts {policy}", p.returncode == 0,
              p.stderr.strip()[:200])

    p = run(cli, "sweep", wct, "--policies=RANDOM,CLOCK,PROB-LRU:p=0.5",
            "--fractions=0.01,0.04", "--threads=2")
    check("sweep accepts the lazy family", p.returncode == 0,
          p.stderr.strip()[:200])

    p = run(cli, "hierarchy", wct, "--edges=2", "--edge-policy=CLOCK",
            "--root-policy=DELAY-CLOCK:k=2")
    check("hierarchy accepts CLOCK policies", p.returncode == 0,
          p.stderr.strip()[:200])

    # Exact sharded replay covers the read-only-hit-path members.
    p = run(cli, "simulate", wct, "--policy=RANDOM", "--cache-fraction=0.04",
            "--threads=2", "--sharded=exact")
    check("sharded exact accepts RANDOM", p.returncode == 0,
          p.stderr.strip()[:200])

    # Metrics JSON schema for a new-family policy.
    mjson = os.path.join(tmp, "lazy_metrics.json")
    p = run(cli, "simulate", wct, "--policy=DELAY-CLOCK:k=2",
            "--cache-fraction=0.04", f"--metrics-out={mjson}",
            "--metrics-window=500")
    check("simulate DELAY-CLOCK --metrics-out", p.returncode == 0,
          p.stderr.strip()[:200])
    doc = check_metrics_json(mjson)
    check("metrics policy name is canonical",
          doc["policy"] == "DELAY-CLOCK:k=2", doc["policy"])

    # Bogus parameter strings fail with the offending field named, and
    # exit 1 (a diagnosed error), not 2 (usage) and not a crash.
    for policy, fragment in (
        ("PROB-LRU:p=1.5", "p"),
        ("PROB-LRU:probability=0.5", "probability"),
        ("DELAY-CLOCK:k=0", "k"),
        ("BATCH-LRU:batch=none", "batch"),
        ("RANDOM:seed=abc", "seed"),
    ):
        p = run(cli, "simulate", wct, f"--policy={policy}",
                "--cache-fraction=0.04")
        check(f"bogus {policy} rejected", p.returncode == 1,
              f"rc={p.returncode}")
        check(f"bogus {policy} error names '{fragment}'",
              fragment in p.stderr, p.stderr.strip()[:200])


def main():
    if len(sys.argv) != 2:
        print("usage: cli_smoke_test.py <webcache-binary>", file=sys.stderr)
        return 2
    cli = sys.argv[1]
    check_exit_codes(cli)
    with tempfile.TemporaryDirectory(prefix="webcache_cli_smoke.") as tmp:
        check_round_trip(cli, tmp)
        check_lazy_family(cli, tmp)
    if FAILURES:
        print(f"\n{len(FAILURES)} smoke check(s) failed: {FAILURES}",
              file=sys.stderr)
        return 1
    print("\nall CLI smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
