#!/usr/bin/env python3
"""Streaming CLI test, run under CTest as `cli_streaming`.

`simulate --stream` replays the binary trace chunk by chunk through the
same per-request core as the materialized path, so its rendered table and
metrics JSON must match the non-streamed run byte for byte, at any chunk
size and through the bounded online densifier. `sweep --stream` runs the
SHARDS-sampled LRU curve; at --sample-rate=1.0 it is exact, below that the
exported JSON must carry the sampling block and per-cell error bars. Error
paths (missing --cache-mb, --squid, sharded flags, corrupt traces) must
fail with a diagnostic, never a crash.

Usage: cli_streaming_test.py <path-to-webcache-binary>
"""

import json
import os
import subprocess
import sys
import tempfile

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        FAILURES.append(name)


def run(cli, *args, timeout=240):
    return subprocess.run(
        [cli, *args], capture_output=True, text=True, timeout=timeout
    )


def main():
    if len(sys.argv) != 2:
        print("usage: cli_streaming_test.py <webcache-binary>",
              file=sys.stderr)
        return 2
    cli = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="webcache_cli_streaming.") as tmp:
        wct = os.path.join(tmp, "mix.wct")
        p = run(cli, "generate", "--profile=DFN", "--scale=0.002", "--seed=7",
                f"--out={wct}")
        check("generate mix", p.returncode == 0, p.stderr.strip()[:200])
        if FAILURES:
            return 1

        # ---- simulate --stream is bit-identical to materialized ----
        base = run(cli, "simulate", wct, "--policy=GD*(packet)",
                   "--cache-mb=2")
        check("materialized simulate", base.returncode == 0,
              base.stderr.strip()[:200])
        for extra in ([], ["--chunk=7"], ["--chunk=4096"], ["--densify"],
                      ["--densify=3", "--chunk=7"]):
            p = run(cli, "simulate", wct, "--policy=GD*(packet)",
                    "--cache-mb=2", "--stream", *extra)
            label = " ".join(extra) or "default chunk"
            check(f"simulate --stream {label} runs", p.returncode == 0,
                  p.stderr.strip()[:200])
            check(f"simulate --stream {label} table identical",
                  p.stdout == base.stdout,
                  f"stdout diverged:\n{p.stdout[:400]}")

        # ---- metrics JSON round-trips identically ----
        mat_json = os.path.join(tmp, "mat.json")
        str_json = os.path.join(tmp, "str.json")
        p = run(cli, "simulate", wct, "--policy=LRU", "--cache-mb=2",
                "--metrics-window=113", f"--metrics-out={mat_json}")
        check("materialized metrics run", p.returncode == 0,
              p.stderr.strip()[:200])
        p = run(cli, "simulate", wct, "--policy=LRU", "--cache-mb=2",
                "--stream", "--chunk=7", "--metrics-window=113",
                f"--metrics-out={str_json}")
        check("streamed metrics run", p.returncode == 0,
              p.stderr.strip()[:200])
        if os.path.exists(mat_json) and os.path.exists(str_json):
            with open(mat_json) as f:
                mat = f.read()
            with open(str_json) as f:
                stre = f.read()
            check("metrics JSON identical streamed vs materialized",
                  mat == stre)

        # ---- sweep --stream: exact at rate 1.0, error bars below ----
        exact_json = os.path.join(tmp, "exact.json")
        p = run(cli, "sweep", wct, "--stream", "--capacities-mb=16,32,64",
                "--sample-rate=1.0", f"--curve-out={exact_json}")
        check("sweep --stream rate=1.0 runs", p.returncode == 0,
              p.stderr.strip()[:200])
        if os.path.exists(exact_json):
            with open(exact_json) as f:
                doc = json.load(f)
            check("exact stream sweep schema",
                  doc.get("schema") == "webcache.sweep.v1")
            check("exact stream sweep has no sampling block",
                  "sampling" not in doc)
            check("exact stream sweep point count",
                  len(doc.get("points", [])) == 3)

        sampled_json = os.path.join(tmp, "sampled.json")
        p1 = run(cli, "sweep", wct, "--stream", "--capacities-mb=16,32,64",
                 "--sample-rate=0.2", f"--curve-out={sampled_json}")
        check("sweep --stream rate=0.2 runs", p1.returncode == 0,
              p1.stderr.strip()[:200])
        if os.path.exists(sampled_json):
            with open(sampled_json) as f:
                doc = json.load(f)
            check("sampled stream sweep has sampling block",
                  isinstance(doc.get("sampling"), dict)
                  and doc["sampling"].get("rate", 0) > 0)
            cells = [rec for point in doc.get("points", [])
                     for rec in point.get("policies", [])]
            check("sampled cells flagged",
                  cells and all(rec.get("sampled") for rec in cells))
            check("sampled cells carry error bars",
                  all(rec.get("hit_rate_error", 0) > 0 for rec in cells))

        # Deterministic: the same seeded sampled run twice, byte for byte.
        p2 = run(cli, "sweep", wct, "--stream", "--capacities-mb=16,32,64",
                 "--sample-rate=0.2")
        p3 = run(cli, "sweep", wct, "--stream", "--capacities-mb=16,32,64",
                 "--sample-rate=0.2")
        check("sampled stream sweep deterministic",
              p2.returncode == 0 and p2.stdout == p3.stdout)

        # ---- materialized sweep --sampling=on annotates its output ----
        p = run(cli, "sweep", wct, "--policies=LRU,FIFO",
                "--fractions=0.02,0.08", "--sampling=on", "--sample-rate=0.2")
        check("sweep --sampling=on runs", p.returncode == 0,
              p.stderr.strip()[:200])
        check("sweep --sampling=on reports the rate",
              "sampled LRU columns" in p.stderr)

        # ---- error paths: diagnostics, never crashes ----
        for name, argv in (
            ("stream without --cache-mb",
             ["simulate", wct, "--stream", "--policy=LRU"]),
            ("stream with --cache-fraction",
             ["simulate", wct, "--stream", "--cache-fraction=0.04"]),
            ("stream with --squid",
             ["simulate", wct, "--stream", "--cache-mb=2", "--squid"]),
            ("stream with --threads",
             ["simulate", wct, "--stream", "--cache-mb=2", "--threads=2"]),
            ("stream sweep without capacities",
             ["sweep", wct, "--stream"]),
            ("bogus sampling mode",
             ["sweep", wct, "--sampling=maybe"]),
            ("missing trace file",
             ["simulate", os.path.join(tmp, "nope.wct"), "--stream",
              "--cache-mb=2"]),
        ):
            p = run(cli, *argv)
            check(f"{name} fails cleanly",
                  p.returncode == 1 and "webcache" in p.stderr,
                  f"rc={p.returncode} stderr={p.stderr.strip()[:200]}")

        # Corrupt trace: truncate the file mid-record; the streamed replay
        # must name the record index and byte offset like the loaders do.
        corrupt = os.path.join(tmp, "corrupt.wct")
        with open(wct, "rb") as f:
            data = f.read()
        with open(corrupt, "wb") as f:
            f.write(data[: len(data) // 2 + 3])
        p = run(cli, "simulate", corrupt, "--stream", "--cache-mb=2")
        check("corrupt trace fails with located diagnostic",
              p.returncode == 1 and "record" in p.stderr
              and "byte offset" in p.stderr,
              f"rc={p.returncode} stderr={p.stderr.strip()[:200]}")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed: {FAILURES}",
              file=sys.stderr)
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
