// Integration: the full pipeline — synthetic generation, binary trace
// persistence, preprocessing of a Squid log, workload characterization,
// simulation, sweeps — wired together exactly as the benchmarks use it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "cache/factory.hpp"
#include "sim/reporter.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "trace/binary_trace.hpp"
#include "trace/preprocess.hpp"
#include "workload/breakdown.hpp"
#include "workload/locality.hpp"
#include "workload/report.hpp"
#include "workload/size_stats.hpp"

namespace webcache {
namespace {

class EndToEndTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::GeneratorOptions opts;
    opts.seed = 2026;
    trace_ = new trace::Trace(
        synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.005),
                              opts)
            .generate());
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static trace::Trace* trace_;
};

trace::Trace* EndToEndTest::trace_ = nullptr;

TEST_F(EndToEndTest, GeneratedTraceSurvivesBinaryRoundTrip) {
  const std::string path = testing::TempDir() + "/e2e_trace.bin";
  trace::write_binary_trace_file(path, *trace_);
  const trace::Trace loaded = trace::read_binary_trace_file(path);
  ASSERT_EQ(loaded.requests.size(), trace_->requests.size());
  // Simulating the loaded trace gives bit-identical results.
  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(1)");
  const std::uint64_t capacity = trace_->overall_size_bytes() / 50;
  const sim::SimResult a = sim::simulate(*trace_, capacity, spec, {});
  const sim::SimResult b = sim::simulate(loaded, capacity, spec, {});
  EXPECT_EQ(a.overall.hits, b.overall.hits);
  EXPECT_EQ(a.overall.hit_bytes, b.overall.hit_bytes);
  EXPECT_EQ(a.evictions, b.evictions);
  std::remove(path.c_str());
}

TEST_F(EndToEndTest, CharacterizationIsConsistent) {
  const workload::Breakdown bd = workload::compute_breakdown(*trace_);
  EXPECT_EQ(bd.total.total_requests, trace_->total_requests());
  EXPECT_EQ(bd.total.distinct_documents, trace_->distinct_documents());
  EXPECT_EQ(bd.total.requested_bytes, trace_->requested_bytes());
  EXPECT_EQ(bd.total.overall_size_bytes, trace_->overall_size_bytes());

  const workload::SizeStats sizes = workload::compute_size_stats(*trace_);
  std::uint64_t doc_samples = 0;
  for (const auto cls : trace::kAllDocumentClasses) {
    doc_samples += sizes.of(cls).document_sizes.count();
  }
  EXPECT_EQ(doc_samples, bd.total.distinct_documents);
}

TEST_F(EndToEndTest, SimulationAccountingClosed) {
  // requests = hits + misses(+bypasses); per-class sums equal overall.
  const cache::PolicySpec spec = cache::policy_spec_from_name("GDS(packet)");
  const sim::SimResult r =
      sim::simulate(*trace_, trace_->overall_size_bytes() / 25, spec, {});
  sim::HitCounters merged;
  for (const auto& cls : r.per_class) merged.merge(cls);
  EXPECT_EQ(merged.requests, r.overall.requests);
  EXPECT_EQ(merged.hits, r.overall.hits);
  EXPECT_EQ(merged.requested_bytes, r.overall.requested_bytes);
  EXPECT_EQ(merged.hit_bytes, r.overall.hit_bytes);
  EXPECT_EQ(r.overall.requests, r.measured_requests);
  EXPECT_LE(r.overall.hits, r.overall.requests);
  EXPECT_LE(r.overall.hit_bytes, r.overall.requested_bytes);
}

TEST_F(EndToEndTest, SweepOverAllPaperPoliciesRuns) {
  sim::SweepConfig config;
  config.cache_fractions = {0.01, 0.08};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  const auto packet = cache::paper_policy_set(cache::CostModelKind::kPacket);
  config.policies.insert(config.policies.end(), packet.begin() + 2,
                         packet.end());  // add GDS(packet), GD*(packet)
  const sim::SweepResult sweep = sim::run_sweep(*trace_, config);
  ASSERT_EQ(sweep.points.size(), 2u);
  for (const auto& point : sweep.points) {
    ASSERT_EQ(point.results.size(), 6u);
    for (const auto& r : point.results) {
      EXPECT_GT(r.overall.requests, 0u);
      EXPECT_GT(r.overall.hit_rate(), 0.0) << r.policy_name;
      EXPECT_LT(r.overall.hit_rate(), 1.0) << r.policy_name;
    }
  }
  // Rendering the full figure panels never throws and contains data.
  const util::Table table = sim::render_sweep_overall(
      sweep, sim::Metric::kByteHitRate, "overall bhr");
  EXPECT_EQ(table.rows(), 2u);
}

TEST_F(EndToEndTest, SquidLogThroughFullPipeline) {
  // Render a small synthetic access log *from* the trace, parse it back
  // through the preprocessing pipeline, and simulate — exercising the
  // real-trace path end to end.
  std::ostringstream log;
  const std::size_t n = std::min<std::size_t>(trace_->requests.size(), 20000);
  for (std::size_t i = 0; i < n; ++i) {
    const trace::Request& r = trace_->requests[i];
    const char* mime = "";
    switch (r.doc_class) {
      case trace::DocumentClass::kImage: mime = "image/gif"; break;
      case trace::DocumentClass::kHtml: mime = "text/html"; break;
      case trace::DocumentClass::kMultiMedia: mime = "video/mpeg"; break;
      case trace::DocumentClass::kApplication: mime = "application/pdf"; break;
      case trace::DocumentClass::kOther: mime = "-"; break;
    }
    log << (100000 + r.timestamp_ms / 1000) << "." << (r.timestamp_ms % 1000)
        << " 10 10.0.0.1 TCP_MISS/200 " << r.transfer_size
        << " GET http://host/doc" << r.document << " - DIRECT/x " << mime
        << "\n";
  }
  std::istringstream in(log.str());
  trace::PreprocessStats stats;
  const trace::Trace parsed = trace::preprocess_squid_log(in, &stats);
  ASSERT_EQ(parsed.requests.size(), n);
  EXPECT_EQ(stats.accepted, n);

  // Same number of distinct documents (URL hashing is injective here).
  std::unordered_set<trace::DocumentId> original_docs;
  for (std::size_t i = 0; i < n; ++i) {
    original_docs.insert(trace_->requests[i].document);
  }
  EXPECT_EQ(parsed.distinct_documents(), original_docs.size());

  // Classes survive the MIME round trip.
  for (std::size_t i = 0; i < n; ++i) {
    if (trace_->requests[i].doc_class == trace::DocumentClass::kOther) continue;
    ASSERT_EQ(parsed.requests[i].doc_class, trace_->requests[i].doc_class);
  }

  const sim::SimResult r = sim::simulate(
      parsed, parsed.overall_size_bytes() / 25,
      cache::policy_spec_from_name("LRU"), {});
  EXPECT_GT(r.overall.hits, 0u);
}

}  // namespace
}  // namespace webcache
