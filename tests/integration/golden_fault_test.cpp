// Golden fault-schedule regression harness.
//
// The checked-in DFN workload (tests/data/golden_dfn.wct) is replayed
// through the 3-edge sibling mesh under a checked-in fault scenario
// (tests/data/golden_faults.schedule: an edge crash + recovery, a degraded
// probe path, a root outage, and an edge/root double fault), and the exact
// counters — per-level hits, per-class splits, failovers, lost requests,
// origin fetches, probe timeouts — are pinned in
// golden_faults_expected.tsv. Any change to the degraded-routing rules or
// the fault accounting that shifts a single request fails here with a
// field-level diff, and the dense-id path must reproduce the same file.
//
// To regenerate after an *intended* behaviour change:
//   WEBCACHE_UPDATE_GOLDEN=1 ./webcache_tests --gtest_filter='GoldenFault.*'
// then review the TSV diff like any other code change.
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "cache/factory.hpp"
#include "sim/faults.hpp"
#include "sim/hierarchy.hpp"
#include "sim/reporter.hpp"
#include "trace/binary_trace.hpp"
#include "trace/dense_trace.hpp"

namespace webcache {
namespace {

#ifndef WEBCACHE_TEST_DATA_DIR
#error "WEBCACHE_TEST_DATA_DIR must point at tests/data"
#endif

std::string data_path(const std::string& name) {
  return std::string(WEBCACHE_TEST_DATA_DIR) + "/" + name;
}

sim::HierarchyConfig golden_config(const trace::Trace& t) {
  sim::HierarchyConfig config;
  config.edge_count = 3;
  config.edge_capacity_bytes = t.overall_size_bytes() / 100;
  config.edge_policy = cache::policy_spec_from_name("GD*(1)");
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  config.sibling_cooperation = true;
  return config;
}

void flatten_counters(std::map<std::string, std::uint64_t>& out,
                      const std::string& prefix, const sim::HitCounters& c) {
  out[prefix + ".requests"] = c.requests;
  out[prefix + ".hits"] = c.hits;
  out[prefix + ".requested_bytes"] = c.requested_bytes;
  out[prefix + ".hit_bytes"] = c.hit_bytes;
}

/// The full result as key -> counter, so the golden file is a readable,
/// diffable ledger and mismatches name the exact field.
std::map<std::string, std::uint64_t> flatten(const sim::HierarchyResult& r) {
  std::map<std::string, std::uint64_t> out;
  flatten_counters(out, "offered", r.offered);
  flatten_counters(out, "edge", r.edge_hits);
  flatten_counters(out, "sibling", r.sibling_hits);
  flatten_counters(out, "root", r.root_hits);
  for (const auto cls : trace::kAllDocumentClasses) {
    const auto i = static_cast<std::size_t>(cls);
    const std::string name = sim::class_slug(cls);  // no spaces: TSV-safe
    flatten_counters(out, "edge_class." + name, r.edge_per_class[i]);
    flatten_counters(out, "root_class." + name, r.root_per_class[i]);
  }
  out["root_requests"] = r.root_requests;
  out["edge_evictions"] = r.edge_evictions;
  out["root_evictions"] = r.root_evictions;
  out["faults.events_applied"] = r.faults.events_applied;
  out["faults.failovers"] = r.faults.failovers;
  out["faults.lost_requests"] = r.faults.lost_requests;
  out["faults.lost_bytes"] = r.faults.lost_bytes;
  out["faults.probe_timeouts"] = r.faults.probe_timeouts;
  out["faults.origin_fetches"] = r.faults.origin_fetches;
  return out;
}

std::map<std::string, std::uint64_t> read_golden(std::istream& is) {
  std::map<std::string, std::uint64_t> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string key;
    std::uint64_t value = 0;
    if (in >> key >> value) out[key] = value;
  }
  return out;
}

void expect_matches_golden(const std::map<std::string, std::uint64_t>& expected,
                           const std::map<std::string, std::uint64_t>& actual,
                           const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (const auto& [key, value] : expected) {
    const auto it = actual.find(key);
    ASSERT_NE(it, actual.end()) << label << ": missing " << key;
    EXPECT_EQ(value, it->second) << label << ": " << key;
  }
}

TEST(GoldenFault, ScheduleReplayMatchesGoldenCounters) {
  const trace::Trace t =
      trace::read_binary_trace_file(data_path("golden_dfn.wct"));
  ASSERT_EQ(t.total_requests(), 6718u);
  const sim::FaultSchedule schedule =
      sim::load_fault_schedule_file(data_path("golden_faults.schedule"));
  ASSERT_FALSE(schedule.empty());

  const sim::HierarchyResult r =
      sim::simulate_hierarchy(t, golden_config(t), schedule);
  const auto actual = flatten(r);

  // The scenario must actually exercise every degraded-routing path —
  // otherwise the golden file pins nothing.
  EXPECT_GT(r.faults.failovers, 0u);
  EXPECT_GT(r.faults.lost_requests, 0u);
  EXPECT_GT(r.faults.origin_fetches, 0u);
  EXPECT_GT(r.faults.probe_timeouts, 0u);
  EXPECT_GT(r.sibling_hits.hits, 0u);

  if (std::getenv("WEBCACHE_UPDATE_GOLDEN") != nullptr) {
    const std::string path = data_path("golden_faults_expected.tsv");
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << "# golden fault-injection counters: golden_dfn.wct x "
           "golden_faults.schedule\n"
        << "# 3-edge sibling mesh, GD*(1) edges at 1/100, GD*(packet) root "
           "at 1/12, defaults otherwise\n";
    for (const auto& [key, value] : actual) {
      out << key << '\t' << value << '\n';
    }
    GTEST_SKIP() << "golden file regenerated: " << path;
  }

  std::ifstream in(data_path("golden_faults_expected.tsv"));
  ASSERT_TRUE(in) << "missing golden file; run with WEBCACHE_UPDATE_GOLDEN=1";
  expect_matches_golden(read_golden(in), actual, "sparse");
}

TEST(GoldenFault, DensePathMatchesGoldenCounters) {
  std::ifstream in(data_path("golden_faults_expected.tsv"));
  if (!in) GTEST_SKIP() << "golden file not generated yet";

  const trace::Trace t =
      trace::read_binary_trace_file(data_path("golden_dfn.wct"));
  const trace::DenseTrace dense = trace::densify(t);
  const sim::FaultSchedule schedule =
      sim::load_fault_schedule_file(data_path("golden_faults.schedule"));
  const sim::HierarchyResult r =
      sim::simulate_hierarchy(dense, golden_config(t), schedule);
  expect_matches_golden(read_golden(in), flatten(r), "dense");
}

}  // namespace
}  // namespace webcache
