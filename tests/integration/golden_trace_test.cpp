// Golden-trace regression harness.
//
// A small deterministic DFN workload is checked in as a binary trace
// (tests/data/golden_dfn.wct, generated once with the CLI at scale 0.001,
// seed 20020607) together with the exact replay counters every paper policy
// produces on it (golden_dfn_expected.tsv: 4 paper policies x 2 cost
// models plus the six lazy-promotion / RANDOM cells, overall and per-class
// hits/bytes, evictions, bypasses, modification misses). Any change to replacement, admission, warm-up accounting, or the
// modification rule that shifts even one counter fails here with a
// field-level diff naming the policy and the counter — long before it would
// show up as a fraction-of-a-percent drift in the paper figures.
//
// The dense-id path replays the same cells and must match the golden file
// too, so the fast path cannot silently diverge from the reference.
//
// To regenerate after an *intended* behaviour change:
//   WEBCACHE_UPDATE_GOLDEN=1 ./webcache_tests --gtest_filter='GoldenTrace.*'
// then review the TSV diff like any other code change.
#include <array>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_trace.hpp"
#include "trace/dense_trace.hpp"

namespace webcache {
namespace {

#ifndef WEBCACHE_TEST_DATA_DIR
#error "WEBCACHE_TEST_DATA_DIR must point at tests/data"
#endif

constexpr double kCacheFraction = 0.04;  // eviction-heavy, mid-ladder

std::string data_path(const std::string& name) {
  return std::string(WEBCACHE_TEST_DATA_DIR) + "/" + name;
}

std::string cost_name(cache::CostModelKind kind) {
  switch (kind) {
    case cache::CostModelKind::kConstant:
      return "constant";
    case cache::CostModelKind::kPacket:
      return "packet";
    case cache::CostModelKind::kLatency:
      return "latency";
  }
  return "?";
}

/// One golden row: every counter the replay produces for one policy cell.
struct GoldenRow {
  std::string policy;
  std::string cost;
  sim::HitCounters overall;
  std::array<sim::HitCounters, trace::kDocumentClassCount> per_class{};
  std::uint64_t evictions = 0;
  std::uint64_t bypasses = 0;
  std::uint64_t modification_misses = 0;

  std::string key() const { return policy + " / " + cost; }
};

GoldenRow row_from(const sim::SimResult& r, const std::string& cost) {
  GoldenRow row;
  row.policy = r.policy_name;
  row.cost = cost;
  row.overall = r.overall;
  row.per_class = r.per_class;
  row.evictions = r.evictions;
  row.bypasses = r.bypasses;
  row.modification_misses = r.modification_misses;
  return row;
}

void write_counters(std::ostream& os, const sim::HitCounters& c) {
  os << '\t' << c.requests << '\t' << c.hits << '\t' << c.requested_bytes
     << '\t' << c.hit_bytes;
}

void write_rows(std::ostream& os, const std::vector<GoldenRow>& rows) {
  os << "# golden replay counters for tests/data/golden_dfn.wct\n"
     << "# columns: policy cost requests hits requested_bytes hit_bytes"
        " evictions bypasses modification_misses"
        " then per class (Images HTML MultiMedia Application Other):"
        " requests hits requested_bytes hit_bytes\n";
  for (const GoldenRow& row : rows) {
    os << row.policy << '\t' << row.cost;
    write_counters(os, row.overall);
    os << '\t' << row.evictions << '\t' << row.bypasses << '\t'
       << row.modification_misses;
    for (const sim::HitCounters& c : row.per_class) write_counters(os, c);
    os << '\n';
  }
}

bool read_counters(std::istringstream& in, sim::HitCounters& c) {
  return static_cast<bool>(in >> c.requests >> c.hits >> c.requested_bytes >>
                           c.hit_bytes);
}

std::vector<GoldenRow> read_rows(std::istream& is) {
  std::vector<GoldenRow> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    GoldenRow row;
    in >> row.policy >> row.cost;
    if (!read_counters(in, row.overall)) {
      ADD_FAILURE() << "malformed golden line: " << line;
      continue;
    }
    in >> row.evictions >> row.bypasses >> row.modification_misses;
    for (sim::HitCounters& c : row.per_class) read_counters(in, c);
    rows.push_back(row);
  }
  return rows;
}

void expect_counters_equal(const std::string& where,
                           const sim::HitCounters& expected,
                           const sim::HitCounters& actual) {
  EXPECT_EQ(expected.requests, actual.requests) << where << ": requests";
  EXPECT_EQ(expected.hits, actual.hits) << where << ": hits";
  EXPECT_EQ(expected.requested_bytes, actual.requested_bytes)
      << where << ": requested_bytes";
  EXPECT_EQ(expected.hit_bytes, actual.hit_bytes) << where << ": hit_bytes";
}

/// Field-level comparison: on drift the failure output names the policy
/// cell and the exact counter, which is the whole point of the harness.
void expect_rows_equal(const GoldenRow& expected, const GoldenRow& actual) {
  const std::string key = expected.key();
  expect_counters_equal(key + " overall", expected.overall, actual.overall);
  EXPECT_EQ(expected.evictions, actual.evictions) << key << ": evictions";
  EXPECT_EQ(expected.bypasses, actual.bypasses) << key << ": bypasses";
  EXPECT_EQ(expected.modification_misses, actual.modification_misses)
      << key << ": modification_misses";
  for (const auto cls : trace::kAllDocumentClasses) {
    const auto i = static_cast<std::size_t>(cls);
    expect_counters_equal(key + " " + std::string(trace::to_string(cls)),
                          expected.per_class[i], actual.per_class[i]);
  }
}

std::vector<cache::PolicySpec> golden_specs() {
  std::vector<cache::PolicySpec> specs =
      cache::paper_policy_set(cache::CostModelKind::kConstant);
  for (const cache::PolicySpec& spec :
       cache::paper_policy_set(cache::CostModelKind::kPacket)) {
    specs.push_back(spec);
  }
  // The lazy-promotion / RANDOM family, at the parameter points the
  // experiments use. RANDOM is golden-covered too: its draw stream is a
  // pure function of the seed, so the counters are as reproducible as
  // anyone else's.
  for (const char* name :
       {"RANDOM", "CLOCK", "DELAY-CLOCK:k=2", "PROB-LRU:p=0.5",
        "DELAY-LRU:k=16", "BATCH-LRU:batch=64"}) {
    specs.push_back(cache::policy_spec_from_name(name));
  }
  return specs;
}

class GoldenTrace : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new trace::Trace(
        trace::read_binary_trace_file(data_path("golden_dfn.wct")));
    capacity_ = static_cast<std::uint64_t>(
        static_cast<double>(trace_->overall_size_bytes()) * kCacheFraction);
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static const trace::Trace* trace_;
  static std::uint64_t capacity_;
};

const trace::Trace* GoldenTrace::trace_ = nullptr;
std::uint64_t GoldenTrace::capacity_ = 0;

TEST_F(GoldenTrace, TraceIsTheCheckedInWorkload) {
  // Guards the fixture itself: if the .wct is regenerated the expected
  // counters must be regenerated with it.
  EXPECT_EQ(trace_->total_requests(), 6718u);
  EXPECT_GT(capacity_, 0u);
}

TEST_F(GoldenTrace, PaperPoliciesMatchGoldenCounters) {
  const sim::SimulatorOptions options;  // defaults: 10% warm-up, threshold
  std::vector<GoldenRow> actual;
  for (const cache::PolicySpec& spec : golden_specs()) {
    const sim::SimResult r =
        sim::simulate(*trace_, capacity_, spec, options);
    actual.push_back(row_from(r, cost_name(spec.cost_model)));
  }

  if (std::getenv("WEBCACHE_UPDATE_GOLDEN") != nullptr) {
    const std::string path = data_path("golden_dfn_expected.tsv");
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    write_rows(out, actual);
    GTEST_SKIP() << "golden file regenerated: " << path;
  }

  std::ifstream in(data_path("golden_dfn_expected.tsv"));
  ASSERT_TRUE(in) << "missing golden file; run with WEBCACHE_UPDATE_GOLDEN=1";
  const std::vector<GoldenRow> expected = read_rows(in);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].policy, actual[i].policy) << "cell " << i;
    EXPECT_EQ(expected[i].cost, actual[i].cost) << "cell " << i;
    expect_rows_equal(expected[i], actual[i]);
  }
}

TEST_F(GoldenTrace, DensePathMatchesGoldenCounters) {
  // The dense-id fast path must reproduce the same golden counters — not
  // just agree with today's sparse path.
  std::ifstream in(data_path("golden_dfn_expected.tsv"));
  if (!in) GTEST_SKIP() << "golden file not generated yet";
  const std::vector<GoldenRow> expected = read_rows(in);

  const trace::DenseTrace dense = trace::densify(*trace_);
  const sim::SimulatorOptions options;
  const std::vector<cache::PolicySpec> specs = golden_specs();
  ASSERT_EQ(expected.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const sim::SimResult r =
        sim::simulate(dense, capacity_, specs[i], options);
    expect_rows_equal(expected[i], row_from(r, cost_name(specs[i].cost_model)));
  }
}

}  // namespace
}  // namespace webcache
