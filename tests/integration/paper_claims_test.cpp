// Acceptance criteria: the paper's qualitative claims (DESIGN.md Section 6)
// must hold on the calibrated synthetic workloads. These are the shape
// checks — who wins, in which metric, for which document type — not
// absolute numbers.
//
// Each claim cites the paper passage it encodes. The fixture simulates
// once per (trace, cost model) and the claims read off the shared results,
// so the whole suite costs a handful of simulator runs.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"

namespace webcache {
namespace {

using trace::DocumentClass;

constexpr double kScale = 0.02;
constexpr std::uint64_t kSeed = 42;

struct TraceBundle {
  trace::Trace trace;
  sim::SweepResult constant;
  sim::SweepResult packet;
};

const std::vector<double>& claim_fractions() {
  static const std::vector<double> f = {0.01, 0.04, 0.16, 0.40};
  return f;
}

TraceBundle* run_bundle(const synth::WorkloadProfile& profile) {
  auto* bundle = new TraceBundle;
  synth::GeneratorOptions gen;
  gen.seed = kSeed;
  bundle->trace =
      synth::TraceGenerator(profile.scaled(kScale), gen).generate();

  sim::SweepConfig config;
  config.cache_fractions = claim_fractions();
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  bundle->constant = sim::run_sweep(bundle->trace, config);
  config.policies = cache::paper_policy_set(cache::CostModelKind::kPacket);
  bundle->packet = sim::run_sweep(bundle->trace, config);
  return bundle;
}

// Indexing helpers: paper_policy_set order is LRU, LFU-DA, GDS, GD*.
enum { kLru = 0, kLfuDa = 1, kGds = 2, kGdStar = 3 };

const sim::SimResult& at(const sim::SweepResult& sweep, std::size_t fraction,
                         int policy) {
  return sweep.points.at(fraction).results.at(static_cast<std::size_t>(policy));
}

class PaperClaimsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dfn_ = run_bundle(synth::WorkloadProfile::DFN());
    rtp_ = run_bundle(synth::WorkloadProfile::RTP());
  }
  static void TearDownTestSuite() {
    delete dfn_;
    delete rtp_;
    dfn_ = rtp_ = nullptr;
  }
  static TraceBundle* dfn_;
  static TraceBundle* rtp_;
};

TraceBundle* PaperClaimsTest::dfn_ = nullptr;
TraceBundle* PaperClaimsTest::rtp_ = nullptr;

// "Consistent with [8], we observe that frequency based replacement schemes
//  outperform recency-based schemes in terms of hit rates." (Section 4.3)
TEST_F(PaperClaimsTest, FrequencyBeatsRecencyInHitRate) {
  // Tested at the small cache sizes, where the paper's curves separate;
  // at 16-40% of trace size all four schemes converge (Figures 2/3).
  for (const TraceBundle* bundle : {dfn_, rtp_}) {
    for (std::size_t f = 0; f < 2; ++f) {
      EXPECT_GT(at(bundle->constant, f, kLfuDa).overall.hit_rate(),
                at(bundle->constant, f, kLru).overall.hit_rate())
          << "fraction index " << f;
      EXPECT_GT(at(bundle->constant, f, kGdStar).overall.hit_rate(),
                at(bundle->constant, f, kGds).overall.hit_rate())
          << "fraction index " << f;
    }
  }
}

// "GD*(1) outperforms GDS(1) and LFU-DA outperforms LRU in terms of hit
//  rate for the document types images, HTML, and application ... most
//  obvious for images and application documents." (Section 4.3)
TEST_F(PaperClaimsTest, DfnConstantCostPerTypeHitRateOrdering) {
  for (const auto cls : {DocumentClass::kImage, DocumentClass::kApplication}) {
    for (std::size_t f = 0; f < 2; ++f) {  // small caches: clearest signal
      EXPECT_GT(at(dfn_->constant, f, kGdStar).of(cls).hit_rate(),
                at(dfn_->constant, f, kGds).of(cls).hit_rate())
          << trace::to_string(cls);
      EXPECT_GT(at(dfn_->constant, f, kLfuDa).of(cls).hit_rate(),
                at(dfn_->constant, f, kLru).of(cls).hit_rate())
          << trace::to_string(cls);
      // And the size-aware schemes dominate the size-blind ones.
      EXPECT_GT(at(dfn_->constant, f, kGds).of(cls).hit_rate(),
                at(dfn_->constant, f, kLfuDa).of(cls).hit_rate())
          << trace::to_string(cls);
    }
  }
}

// "For multi media documents, LRU achieves the best hit rates closely
//  followed by LFU-DA ... for large multi media documents, the
//  size-awareness of GDS(1) and GD*(1) leads to significantly lower hit
//  rates and byte hit rates." (Section 4.3)
TEST_F(PaperClaimsTest, DfnMultiMediaFavorsRecencyBasedSchemes) {
  const std::size_t f = 2;  // 16% of trace size: MM documents fit
  const auto mm = DocumentClass::kMultiMedia;
  const double lru = at(dfn_->constant, f, kLru).of(mm).hit_rate();
  const double lfuda = at(dfn_->constant, f, kLfuDa).of(mm).hit_rate();
  const double gds = at(dfn_->constant, f, kGds).of(mm).hit_rate();
  const double gdstar = at(dfn_->constant, f, kGdStar).of(mm).hit_rate();
  EXPECT_GT(lru, 2.0 * gds);
  EXPECT_GT(lru, 2.0 * gdstar);
  EXPECT_GT(lfuda, 2.0 * gds);
  EXPECT_GT(lfuda, 2.0 * gdstar);

  const double lru_b = at(dfn_->constant, f, kLru).of(mm).byte_hit_rate();
  const double gds_b = at(dfn_->constant, f, kGds).of(mm).byte_hit_rate();
  const double gdstar_b = at(dfn_->constant, f, kGdStar).of(mm).byte_hit_rate();
  EXPECT_GT(lru_b, 2.0 * gds_b);
  EXPECT_GT(lru_b, 2.0 * gdstar_b);
}

// "Since the byte hit rate for multi media documents dominate the overall
//  byte hit rate, this observation leads to a poor byte hit rate for
//  GDS(1) [and GD*(1)] ... opposed to [8] we do not observe that GDS(1)
//  stays competitive with LRU and LFU-DA in terms of byte hit rate."
//  (Section 4.3; the paper attributes the difference to the 5% modification
//  rule, exercised by bench/ablation_modification_rule.)
TEST_F(PaperClaimsTest, DfnConstantCostByteHitRateFavorsLruLfuda) {
  for (std::size_t f = 1; f < 3; ++f) {
    EXPECT_GT(at(dfn_->constant, f, kLru).overall.byte_hit_rate(),
              at(dfn_->constant, f, kGds).overall.byte_hit_rate());
    EXPECT_GT(at(dfn_->constant, f, kLru).overall.byte_hit_rate(),
              at(dfn_->constant, f, kGdStar).overall.byte_hit_rate());
    EXPECT_GT(at(dfn_->constant, f, kLfuDa).overall.byte_hit_rate(),
              at(dfn_->constant, f, kGdStar).overall.byte_hit_rate());
  }
}

// "while there is only a small advantage for HTML documents" — but the
// byte hit rate of GDS(1) stays competitive for images, HTML, application:
// within a modest factor of LRU (unlike multimedia, where it collapses).
TEST_F(PaperClaimsTest, DfnGdsByteHitRateCompetitiveOutsideMultimedia) {
  const std::size_t f = 1;
  for (const auto cls : {DocumentClass::kImage, DocumentClass::kHtml}) {
    const double gds = at(dfn_->constant, f, kGds).of(cls).byte_hit_rate();
    const double lru = at(dfn_->constant, f, kLru).of(cls).byte_hit_rate();
    EXPECT_GT(gds, 0.5 * lru) << trace::to_string(cls);
  }
  // For application documents the competitiveness only emerges at large
  // cache sizes in our reproduction: the synthetic application class
  // concentrates its bytes in a heavier tail than the (unpublished) DFN
  // size columns apparently did, and at reduced scale the cache-to-document
  // size ratio further penalizes large documents (see EXPERIMENTS.md).
  const auto app = DocumentClass::kApplication;
  EXPECT_GT(at(dfn_->constant, 3, kGds).of(app).byte_hit_rate(),
            0.4 * at(dfn_->constant, 3, kLru).of(app).byte_hit_rate());
}

// "Consistent with [8], we observe that GD*(packet) outperforms LRU,
//  LFU-DA and GDS(packet) both in terms of hit and byte hit rates."
//  (Section 4.3, third experiment)
TEST_F(PaperClaimsTest, DfnPacketCostGdStarWins) {
  for (std::size_t f = 0; f < 2; ++f) {
    const auto& gdstar = at(dfn_->packet, f, kGdStar);
    EXPECT_GT(gdstar.overall.hit_rate(),
              at(dfn_->packet, f, kLru).overall.hit_rate());
    EXPECT_GT(gdstar.overall.hit_rate(),
              at(dfn_->packet, f, kLfuDa).overall.hit_rate());
    EXPECT_GT(gdstar.overall.hit_rate(),
              at(dfn_->packet, f, kGds).overall.hit_rate());
    EXPECT_GT(gdstar.overall.byte_hit_rate(),
              at(dfn_->packet, f, kLru).overall.byte_hit_rate());
    EXPECT_GT(gdstar.overall.byte_hit_rate(),
              at(dfn_->packet, f, kGds).overall.byte_hit_rate());
    // vs LFU-DA the byte-hit margin is structurally thin (packet cost makes
    // GD* frequency-driven); demand parity within noise.
    EXPECT_GT(gdstar.overall.byte_hit_rate(),
              at(dfn_->packet, f, kLfuDa).overall.byte_hit_rate() * 0.98);
  }
}

// "the breakdown into document types shows that GD*(packet) has clear
//  advantages in terms of hit rate over the other schemes for images, HTML
//  and application documents. Furthermore, GD*(packet) achieves significant
//  higher byte hit rates than [the others] for images [and] HTML."
//  (Section 4.3; the multimedia part of the byte-hit claim needs larger
//  scale, see EXPERIMENTS.md.)
TEST_F(PaperClaimsTest, DfnPacketCostPerTypeAdvantages) {
  for (std::size_t f = 0; f < 2; ++f) {
    for (const auto cls : {DocumentClass::kImage, DocumentClass::kHtml,
                           DocumentClass::kApplication}) {
      const double gdstar = at(dfn_->packet, f, kGdStar).of(cls).hit_rate();
      for (const int other : {kLru, kLfuDa, kGds}) {
        EXPECT_GT(gdstar, at(dfn_->packet, f, other).of(cls).hit_rate())
            << trace::to_string(cls) << " fraction " << f;
      }
    }
    for (const auto cls : {DocumentClass::kImage, DocumentClass::kHtml}) {
      const double gdstar =
          at(dfn_->packet, f, kGdStar).of(cls).byte_hit_rate();
      for (const int other : {kLru, kGds}) {
        EXPECT_GT(gdstar, at(dfn_->packet, f, other).of(cls).byte_hit_rate())
            << trace::to_string(cls) << " fraction " << f;
      }
      EXPECT_GE(gdstar,
                at(dfn_->packet, f, kLfuDa).of(cls).byte_hit_rate() * 0.98)
          << trace::to_string(cls) << " fraction " << f;
    }
  }
}

// "GD*(packet) achieves lower hit rates than GD*(1) for image and
//  application documents but considerably higher byte hit rates for HTML,
//  multi media, and application documents." (Section 4.3)
TEST_F(PaperClaimsTest, DfnGdStarPacketVersusConstantTradeoff) {
  const std::size_t f = 1;
  const auto& constant = at(dfn_->constant, f, kGdStar);
  const auto& packet = at(dfn_->packet, f, kGdStar);
  EXPECT_LT(packet.of(DocumentClass::kImage).hit_rate(),
            constant.of(DocumentClass::kImage).hit_rate());
  EXPECT_LT(packet.of(DocumentClass::kApplication).hit_rate(),
            constant.of(DocumentClass::kApplication).hit_rate());
  EXPECT_GT(packet.of(DocumentClass::kHtml).byte_hit_rate(),
            constant.of(DocumentClass::kHtml).byte_hit_rate());
  EXPECT_GT(packet.of(DocumentClass::kMultiMedia).byte_hit_rate(),
            constant.of(DocumentClass::kMultiMedia).byte_hit_rate());
  EXPECT_GT(packet.of(DocumentClass::kApplication).byte_hit_rate(),
            constant.of(DocumentClass::kApplication).byte_hit_rate());
}

// Section 4.2 / Figure 1: GD*(1) does not waste space on large documents
// (multimedia byte share near zero, byte fractions close to the request
// mix); GD*(packet) keeps the document-count mix close to the request mix
// while its byte fractions skew heavily toward application documents.
TEST_F(PaperClaimsTest, Figure1AdaptabilityShapes) {
  // This claim needs a cache big enough to hold many multi-media documents
  // (the paper uses 1 GB). Document sizes do not scale with --scale, so
  // the shared kScale trace's ~20 MB cache would distort the shape; use a
  // dedicated larger-scale trace instead.
  synth::GeneratorOptions gen;
  gen.seed = kSeed;
  const trace::Trace figure_trace =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.05), gen)
          .generate();

  sim::SimulatorOptions opts;
  opts.occupancy_samples = 8;
  const std::uint64_t capacity = static_cast<std::uint64_t>(
      static_cast<double>(figure_trace.overall_size_bytes()) * 0.0175);

  const sim::SimResult constant = sim::simulate(
      figure_trace, capacity, cache::policy_spec_from_name("GD*(1)"), opts);
  const sim::SimResult packet = sim::simulate(
      figure_trace, capacity, cache::policy_spec_from_name("GD*(packet)"),
      opts);

  const synth::WorkloadProfile profile = synth::WorkloadProfile::DFN();
  for (std::size_t i = 4; i < constant.occupancy_series.size(); ++i) {
    const auto& occ1 = constant.occupancy_series[i].occupancy;
    // GD*(1): multimedia bytes ~0; image byte share within 10 points of the
    // image request share.
    EXPECT_LT(occ1.byte_fraction(DocumentClass::kMultiMedia), 0.03);
    EXPECT_NEAR(occ1.byte_fraction(DocumentClass::kImage),
                profile.of(DocumentClass::kImage).request_fraction, 0.12);

    const auto& occ2 = packet.occupancy_series[i].occupancy;
    // GD*(packet): document-count fractions track the request mix ...
    EXPECT_NEAR(occ2.object_fraction(DocumentClass::kImage),
                profile.of(DocumentClass::kImage).request_fraction, 0.05);
    EXPECT_NEAR(occ2.object_fraction(DocumentClass::kHtml),
                profile.of(DocumentClass::kHtml).request_fraction, 0.05);
    // ... while byte fractions skew: images well below 76%, application
    // substantially above 15% (the paper's exact phrasing).
    EXPECT_LT(occ2.byte_fraction(DocumentClass::kImage), 0.60);
    EXPECT_GT(occ2.byte_fraction(DocumentClass::kApplication), 0.15);
  }
}

// Section 4.4: on RTP, GD*'s advantages diminish. The hit-rate advantage of
// GD*(packet) over GDS(packet) at large cache sizes vanishes (GDS matches
// or beats it), and overall rates reach ~0.4-0.5 rather than DFN's levels.
TEST_F(PaperClaimsTest, RtpGdStarAdvantageDiminishes) {
  // At 40% of trace size GDS(packet) has caught up on RTP.
  const auto& rtp_large = rtp_->packet.points.back();
  EXPECT_GE(rtp_large.results[kGds].overall.hit_rate(),
            rtp_large.results[kGdStar].overall.hit_rate() * 0.99);

  // The relative hit-rate edge of GD*(packet) over GDS(packet) at small
  // caches is smaller on RTP than on DFN.
  auto edge = [](const sim::SweepResult& sweep) {
    const double gdstar = at(sweep, 1, kGdStar).overall.hit_rate();
    const double gds = at(sweep, 1, kGds).overall.hit_rate();
    return gdstar / gds;
  };
  EXPECT_LT(edge(rtp_->packet), edge(dfn_->packet) * 1.05);
}

// Section 4.4: "for the RTP trace hit rates up to 0.5 are achieved ...
// byte hit rates up to 0.3 [constant] / 0.4 [packet]". Shape check: the
// RTP ceiling is visibly below the DFN ceiling in hit rate.
TEST_F(PaperClaimsTest, RtpOverallLevelsBelowDfn) {
  const auto& rtp_best = rtp_->constant.points.back().results;
  const auto& dfn_best = dfn_->constant.points.back().results;
  for (int p : {kLru, kLfuDa, kGds, kGdStar}) {
    EXPECT_LT(rtp_best[static_cast<std::size_t>(p)].overall.hit_rate(),
              dfn_best[static_cast<std::size_t>(p)].overall.hit_rate());
  }
  // And the absolute levels sit in the paper's reported ballpark.
  EXPECT_LT(rtp_best[kGdStar].overall.hit_rate(), 0.60);
  EXPECT_GT(rtp_best[kGdStar].overall.hit_rate(), 0.25);
}

// "[3] have shown hit rate and byte hit rate grow in a log-like fashion as
//  a function of size of the web cache" (Section 1): monotone growth with
//  diminishing returns per doubling at the top of the ladder.
TEST_F(PaperClaimsTest, HitRateGrowsLogLike) {
  for (const TraceBundle* bundle : {dfn_, rtp_}) {
    for (int p : {kLru, kLfuDa, kGds, kGdStar}) {
      double previous = 0.0;
      for (std::size_t f = 0; f < claim_fractions().size(); ++f) {
        const double hr = at(bundle->constant, f, p).overall.hit_rate();
        EXPECT_GT(hr, previous * 0.999) << "policy " << p << " fraction " << f;
        previous = hr;
      }
      // Diminishing returns: the last 2.5x of capacity buys less than the
      // preceding 4x did.
      const double g1 = at(bundle->constant, 2, p).overall.hit_rate() -
                        at(bundle->constant, 1, p).overall.hit_rate();
      const double g2 = at(bundle->constant, 3, p).overall.hit_rate() -
                        at(bundle->constant, 2, p).overall.hit_rate();
      EXPECT_LT(g2, g1 * 1.5) << "policy " << p;
    }
  }
}

}  // namespace
}  // namespace webcache
