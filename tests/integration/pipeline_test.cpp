// Integration: the CLI-shaped pipelines, exercised through the library —
// profile serialization -> generation -> persistence -> characterization ->
// simulation, and the consistency guarantees that hold across the seams.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "cache/factory.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/mix_shift.hpp"
#include "synth/profile_io.hpp"
#include "trace/binary_trace.hpp"
#include "trace/filters.hpp"
#include "trace/preprocess.hpp"
#include "trace/squid_log_writer.hpp"
#include "workload/breakdown.hpp"

namespace webcache {
namespace {

TEST(Pipeline, ProfileFileDrivesIdenticalGeneration) {
  // Serializing a profile and generating from the parsed copy must give a
  // bit-identical trace (same seed, same statistical parameters).
  const synth::WorkloadProfile original =
      synth::WorkloadProfile::DFN().scaled(0.002);
  std::istringstream in(synth::profile_to_text(original));
  const synth::WorkloadProfile loaded = synth::profile_from_text(in);

  synth::GeneratorOptions gen;
  gen.seed = 77;
  const trace::Trace a = synth::TraceGenerator(original, gen).generate();
  const trace::Trace b = synth::TraceGenerator(loaded, gen).generate();
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); i += 503) {
    EXPECT_EQ(a.requests[i].document, b.requests[i].document);
    EXPECT_EQ(a.requests[i].transfer_size, b.requests[i].transfer_size);
    EXPECT_EQ(a.requests[i].client, b.requests[i].client);
  }
}

TEST(Pipeline, BinaryAndSquidPersistenceAgreeOnSimulation) {
  // generate -> (a) binary file, (b) squid log + preprocess: both replayed
  // traces must produce identical per-class breakdowns, and the binary one
  // identical simulation results.
  synth::GeneratorOptions gen;
  gen.seed = 5;
  const trace::Trace original =
      synth::TraceGenerator(synth::WorkloadProfile::RTP().scaled(0.002), gen)
          .generate();

  const std::string bin_path = testing::TempDir() + "/pipeline.wct";
  trace::write_binary_trace_file(bin_path, original);
  const trace::Trace from_binary = trace::read_binary_trace_file(bin_path);
  std::remove(bin_path.c_str());

  std::stringstream log;
  trace::write_squid_log(log, original);
  const trace::Trace from_log = trace::preprocess_squid_log(log);

  const workload::Breakdown bd_bin = workload::compute_breakdown(from_binary);
  const workload::Breakdown bd_log = workload::compute_breakdown(from_log);
  EXPECT_EQ(bd_bin.total.total_requests, bd_log.total.total_requests);
  EXPECT_EQ(bd_bin.total.requested_bytes, bd_log.total.requested_bytes);
  for (const auto cls : trace::kAllDocumentClasses) {
    EXPECT_EQ(bd_bin.of(cls).total_requests, bd_log.of(cls).total_requests)
        << trace::to_string(cls);
  }

  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(packet)");
  const std::uint64_t capacity = original.overall_size_bytes() / 25;
  const sim::SimResult r_orig = sim::simulate(original, capacity, spec, {});
  const sim::SimResult r_bin = sim::simulate(from_binary, capacity, spec, {});
  EXPECT_EQ(r_orig.overall.hits, r_bin.overall.hits);
  EXPECT_EQ(r_orig.evictions, r_bin.evictions);
}

TEST(Pipeline, ClassFilteredTraceMatchesPerClassCounters) {
  // Simulating only the image sub-trace must give the same image request
  // count the full simulation attributes to images (hits differ — the
  // isolated class has the whole cache to itself).
  synth::GeneratorOptions gen;
  gen.seed = 13;
  const trace::Trace full =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002), gen)
          .generate();
  const trace::Trace images =
      trace::filter_by_class(full, trace::DocumentClass::kImage);

  sim::SimulatorOptions opts;
  opts.warmup_fraction = 0.0;
  const std::uint64_t capacity = full.overall_size_bytes() / 25;
  const cache::PolicySpec lru = cache::policy_spec_from_name("LRU");
  const sim::SimResult full_run = sim::simulate(full, capacity, lru, opts);
  const sim::SimResult image_run = sim::simulate(images, capacity, lru, opts);

  EXPECT_EQ(image_run.overall.requests,
            full_run.of(trace::DocumentClass::kImage).requests);
  EXPECT_EQ(image_run.overall.requested_bytes,
            full_run.of(trace::DocumentClass::kImage).requested_bytes);
  // Isolation can only help the class (no cross-class eviction pressure).
  EXPECT_GE(image_run.overall.hit_rate(),
            full_run.of(trace::DocumentClass::kImage).hit_rate());
}

TEST(Pipeline, MergedCommunitiesSweepRuns) {
  // Two DFN-like user communities behind one proxy: merge_traces + sweep.
  synth::GeneratorOptions g1, g2;
  g1.seed = 1;
  g2.seed = 2;
  const trace::Trace a =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.001), g1)
          .generate();
  const trace::Trace b =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.001), g2)
          .generate();
  const trace::Trace merged = trace::merge_traces(a, b);

  sim::SweepConfig config;
  config.cache_fractions = {0.04};
  config.policies = {cache::policy_spec_from_name("GD*(1)")};
  const sim::SweepResult sweep = sim::run_sweep(merged, config);
  const sim::SimResult& r = sweep.points[0].results[0];
  EXPECT_EQ(r.overall.requests + r.warmup_requests,
            a.total_requests() + b.total_requests());
  // Disjoint populations double the distinct documents, which depresses
  // the hit rate relative to one community at the same relative capacity.
  EXPECT_GT(r.overall.hit_rate(), 0.05);
}

TEST(Pipeline, FutureWorkloadEndToEnd) {
  // The Section-1 conjecture pipeline: shift -> generate -> characterize.
  const synth::WorkloadProfile shifted =
      synth::future_workload(synth::WorkloadProfile::DFN(), 10.0)
          .scaled(0.002);
  synth::GeneratorOptions gen;
  gen.seed = 21;
  const trace::Trace t = synth::TraceGenerator(shifted, gen).generate();
  const workload::Breakdown bd = workload::compute_breakdown(t);
  EXPECT_NEAR(bd.request_fraction(trace::DocumentClass::kMultiMedia),
              0.014, 0.004);
  const double mm_app_bytes =
      bd.requested_bytes_fraction(trace::DocumentClass::kMultiMedia) +
      bd.requested_bytes_fraction(trace::DocumentClass::kApplication);
  EXPECT_GT(mm_app_bytes, 0.6);  // the conjectured byte-dominated future
}

}  // namespace
}  // namespace webcache
