// The observability layer must be a pure observer: attaching a
// RecordingSink to a replay cannot change a single counter. The
// uninstrumented entry points instantiate the loop with NullSink — so this
// suite replays every factory policy (plus the clairvoyant OPT bound)
// uninstrumented and instrumented, over both the map-backed and the
// dense-id paths, and requires byte-identical SimResults. The hierarchy
// gets the same check over its own composite loop.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "cache/opt.hpp"
#include "obs/stats_sink.hpp"
#include "sim/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::obs {
namespace {

void expect_identical_counters(const sim::HitCounters& a,
                               const sim::HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const sim::SimResult& plain,
                      const sim::SimResult& instrumented,
                      const std::string& label) {
  EXPECT_EQ(plain.policy_name, instrumented.policy_name) << label;
  expect_identical_counters(plain.overall, instrumented.overall, label);
  for (std::size_t c = 0; c < plain.per_class.size(); ++c) {
    expect_identical_counters(plain.per_class[c], instrumented.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(plain.warmup_requests, instrumented.warmup_requests) << label;
  EXPECT_EQ(plain.measured_requests, instrumented.measured_requests) << label;
  EXPECT_EQ(plain.evictions, instrumented.evictions) << label;
  EXPECT_EQ(plain.bypasses, instrumented.bypasses) << label;
  EXPECT_EQ(plain.modification_misses, instrumented.modification_misses)
      << label;
  EXPECT_EQ(plain.interrupted_transfers, instrumented.interrupted_transfers)
      << label;
  // Floating-point sums accumulate in the same order, so exact equality.
  EXPECT_EQ(plain.miss_latency_ms, instrumented.miss_latency_ms) << label;
  EXPECT_EQ(plain.all_miss_latency_ms, instrumented.all_miss_latency_ms)
      << label;
}

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

// The full factory surface, as in the policy property suite.
const std::vector<std::string>& all_policy_names() {
  static const std::vector<std::string> names = {
      "LRU",          "FIFO",          "SIZE",
      "LFU",          "LFU-DA",        "GDS(1)",
      "GDS(packet)",  "GDS(latency)",  "GDSF(1)",
      "GDSF(packet)", "GD*(1)",        "GD*(packet)",
      "GD*(latency)", "LRU-MIN",       "LRU-THOLD(300)",
      "LRU-2",        "GD*C(1)",       "GD*C(packet)",
      "RANDOM",       "CLOCK",         "DELAY-CLOCK:k=3",
      "PROB-LRU:p=0.25", "DELAY-LRU:k=8", "BATCH-LRU:batch=16"};
  return names;
}

class ObsEquivalenceTest : public testing::TestWithParam<std::string> {};

TEST_P(ObsEquivalenceTest, RecordingSinkIsAPureObserver) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name(GetParam());
  const sim::SimulatorOptions options;

  RecordingSink sink(500);
  const sim::SimResult a = sim::simulate(sparse, capacity, spec, options);
  const sim::SimResult b =
      sim::simulate(sparse, capacity, spec, options, sink);
  expect_identical(a, b, GetParam() + " sparse");

  const sim::SimResult c = sim::simulate(dense, capacity, spec, options);
  const sim::SimResult d =
      sim::simulate(dense, capacity, spec, options, sink);
  expect_identical(c, d, GetParam() + " dense");
  expect_identical(a, d, GetParam() + " sparse vs dense instrumented");
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ObsEquivalenceTest,
                         testing::ValuesIn(all_policy_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ObsEquivalence, OptBoundIsUnchangedByInstrumentation) {
  // OPT needs out-of-band state (the future-reference oracle), so it runs
  // through the frontend overloads rather than a PolicySpec.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const sim::SimulatorOptions options;

  cache::SingleCacheFrontend plain(
      capacity, std::make_unique<cache::OptPolicy>(sparse.requests));
  const sim::SimResult a = sim::simulate(sparse, plain, options);

  RecordingSink sink(500);
  cache::SingleCacheFrontend instrumented(
      capacity, std::make_unique<cache::OptPolicy>(sparse.requests));
  const sim::SimResult b = sim::simulate(sparse, instrumented, options, sink);
  expect_identical(a, b, "OPT sparse");

  cache::SingleCacheFrontend dense_fe(
      capacity, std::make_unique<cache::OptPolicy>(dense.trace.requests));
  const sim::SimResult c = sim::simulate(dense, dense_fe, options, sink);
  expect_identical(a, c, "OPT dense instrumented");
}

TEST(ObsEquivalence, HierarchyIsUnchangedByInstrumentation) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);

  sim::HierarchyConfig config;
  config.edge_count = 4;
  config.edge_policy = cache::policy_spec_from_name("GD*(1)");
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  config.root_capacity_bytes = sparse.overall_size_bytes() / 25;
  config.edge_capacity_bytes = config.root_capacity_bytes / 4;
  config.sibling_cooperation = true;

  const sim::HierarchyResult a = sim::simulate_hierarchy(sparse, config);
  RecordingSink sink(500);
  const sim::HierarchyResult b = sim::simulate_hierarchy(sparse, config, sink);
  const sim::HierarchyResult c = sim::simulate_hierarchy(dense, config, sink);

  for (const auto* r : {&b, &c}) {
    expect_identical_counters(a.offered, r->offered, "offered");
    expect_identical_counters(a.edge_hits, r->edge_hits, "edge");
    expect_identical_counters(a.sibling_hits, r->sibling_hits, "sibling");
    expect_identical_counters(a.root_hits, r->root_hits, "root");
    EXPECT_EQ(a.root_requests, r->root_requests);
    EXPECT_EQ(a.edge_evictions, r->edge_evictions);
    EXPECT_EQ(a.root_evictions, r->root_evictions);
  }
}

}  // namespace
}  // namespace webcache::obs
