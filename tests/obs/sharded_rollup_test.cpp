// Thread-invariance of the instrumented sharded replay: for every thread
// count the collected webcache.metrics.v1 series — per-window counters,
// per-class roll-ups, bypasses, invalidations, AND the end-of-window state
// snapshots — must be bit-identical to the serial instrumented run. The
// roll-up invariants of the plain obs suite (series totals == aggregate
// SimResult) must hold on the sharded path too.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "obs/stats_sink.hpp"
#include "sim/sharded_replay.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::obs {
namespace {

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

void expect_identical_window_counters(const WindowCounters& a,
                                      const WindowCounters& b,
                                      const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.evicted_bytes, b.evicted_bytes) << label;
  EXPECT_EQ(a.lost, b.lost) << label;
  EXPECT_EQ(a.lost_bytes, b.lost_bytes) << label;
}

void expect_identical_series(const MetricsSeries& serial,
                             const MetricsSeries& sharded,
                             const std::string& label) {
  EXPECT_EQ(serial.window_requests, sharded.window_requests) << label;
  EXPECT_EQ(serial.total_requests, sharded.total_requests) << label;
  ASSERT_EQ(serial.windows.size(), sharded.windows.size()) << label;
  for (std::size_t w = 0; w < serial.windows.size(); ++w) {
    const WindowSample& a = serial.windows[w];
    const WindowSample& b = sharded.windows[w];
    const std::string at = label + " window " + std::to_string(w);
    EXPECT_EQ(a.first_request, b.first_request) << at;
    EXPECT_EQ(a.last_request, b.last_request) << at;
    expect_identical_window_counters(a.overall, b.overall, at);
    for (std::size_t c = 0; c < a.per_class.size(); ++c) {
      expect_identical_window_counters(a.per_class[c], b.per_class[c],
                                       at + " class " + std::to_string(c));
    }
    EXPECT_EQ(a.bypasses, b.bypasses) << at;
    EXPECT_EQ(a.invalidations, b.invalidations) << at;
    EXPECT_EQ(a.state.occupancy_bytes, b.state.occupancy_bytes) << at;
    EXPECT_EQ(a.state.occupancy_objects, b.state.occupancy_objects) << at;
    EXPECT_EQ(a.state.heap_entries, b.state.heap_entries) << at;
    EXPECT_EQ(a.state.aging.has_value(), b.state.aging.has_value()) << at;
    EXPECT_EQ(a.state.beta.has_value(), b.state.beta.has_value()) << at;
  }
}

class ShardedRollupTest : public testing::TestWithParam<std::string> {};

TEST_P(ShardedRollupTest, SeriesIsThreadCountInvariant) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name(GetParam());
  const sim::SimulatorOptions options;

  RecordingSink serial_sink(500);
  const sim::SimResult serial =
      sim::simulate(sparse, capacity, spec, options, serial_sink);
  const MetricsSeries reference = serial_sink.series();

  // threads=1 forces the pipeline via an explicit shard count, so the
  // whole ladder exercises the engine (no serial delegation shortcut).
  for (const std::uint32_t threads : {1u, 2u, 4u, 0u}) {
    sim::ShardedConfig config;
    config.threads = threads;
    config.shards = threads == 1 ? 4 : 0;
    RecordingSink sink(500);
    const sim::SimResult sharded = sim::simulate_sharded(
        sparse, capacity, spec, options, config, sink);
    const std::string label =
        GetParam() + " threads=" + std::to_string(threads);
    EXPECT_EQ(serial.overall.hits, sharded.overall.hits) << label;
    expect_identical_series(reference, sink.series(), label);

    RecordingSink dense_sink(500);
    sim::simulate_sharded(dense, capacity, spec, options, config, dense_sink);
    expect_identical_series(reference, dense_sink.series(), label + " dense");
  }
}

INSTANTIATE_TEST_SUITE_P(LruFamily, ShardedRollupTest,
                         testing::Values("LRU", "FIFO", "LRU-THOLD(300000)"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ShardedRollup, SeriesTotalsMatchAggregateResult) {
  // The obs layer's core roll-up invariant, on the sharded path: summing
  // the per-window counters reproduces the aggregate SimResult exactly.
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");
  const sim::SimulatorOptions options;

  sim::ShardedConfig config;
  config.threads = 4;
  RecordingSink sink(500);
  const sim::SimResult r =
      sim::simulate_sharded(sparse, capacity, spec, options, config, sink);

  const WindowCounters totals = sink.series().totals();
  EXPECT_EQ(totals.requests, r.overall.requests);
  EXPECT_EQ(totals.hits, r.overall.hits);
  EXPECT_EQ(totals.requested_bytes, r.overall.requested_bytes);
  EXPECT_EQ(totals.hit_bytes, r.overall.hit_bytes);
  EXPECT_EQ(totals.evictions, r.evictions);
  EXPECT_EQ(sink.series().total_bypasses(), r.bypasses);

  const auto class_totals = sink.series().class_totals();
  for (std::size_t c = 0; c < class_totals.size(); ++c) {
    EXPECT_EQ(class_totals[c].requests, r.per_class[c].requests) << c;
    EXPECT_EQ(class_totals[c].hits, r.per_class[c].hits) << c;
    EXPECT_EQ(class_totals[c].hit_bytes, r.per_class[c].hit_bytes) << c;
  }
  EXPECT_EQ(sink.series().total_requests, sparse.requests.size());
}

}  // namespace
}  // namespace webcache::obs
