// Property tests for the RecordingSink's windowed series.
//
// The invariants the obs layer guarantees (and the exporters and golden
// harness rely on):
//   * windows partition the request stream: contiguous 1-based ranges,
//     full-length except the tail, last_request == total_requests;
//   * the series sums back to the aggregate SimResult *exactly* —
//     measured requests/hits/bytes, whole-run evictions, bypasses;
//   * per-class counters sum to the window's overall counters, window by
//     window;
//   * policy state traces (aging L, GD*'s beta, heap size) appear exactly
//     for the policies that have them;
//   * a sink is reusable: begin_run resets, end_run detaches.
// Composite frontends get the same treatment: the hierarchy sink observes
// the client-offered stream and mesh-wide evictions; the partitioned sink
// aggregates heap entries and drops the per-partition aging terms.
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <string>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "obs/stats_sink.hpp"
#include "sim/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::obs {
namespace {

constexpr std::uint64_t kWindow = 1000;

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

std::uint64_t capacity_of(const trace::Trace& t) {
  return t.overall_size_bytes() / 25;  // 4%: eviction-heavy
}

void expect_sums_back(const MetricsSeries& series, const sim::SimResult& r,
                      const std::string& label) {
  const WindowCounters totals = series.totals();
  EXPECT_EQ(totals.requests, r.overall.requests) << label;
  EXPECT_EQ(totals.hits, r.overall.hits) << label;
  EXPECT_EQ(totals.requested_bytes, r.overall.requested_bytes) << label;
  EXPECT_EQ(totals.hit_bytes, r.overall.hit_bytes) << label;
  EXPECT_EQ(totals.evictions, r.evictions) << label;
  EXPECT_EQ(series.total_bypasses(), r.bypasses) << label;

  const auto per_class = series.class_totals();
  for (const auto cls : trace::kAllDocumentClasses) {
    const auto i = static_cast<std::size_t>(cls);
    const std::string where = label + " class " + std::to_string(i);
    EXPECT_EQ(per_class[i].requests, r.per_class[i].requests) << where;
    EXPECT_EQ(per_class[i].hits, r.per_class[i].hits) << where;
    EXPECT_EQ(per_class[i].requested_bytes, r.per_class[i].requested_bytes)
        << where;
    EXPECT_EQ(per_class[i].hit_bytes, r.per_class[i].hit_bytes) << where;
  }
}

TEST(RecordingSink, RejectsZeroLengthWindows) {
  EXPECT_THROW(RecordingSink(0), std::invalid_argument);
}

TEST(RecordingSink, WindowsPartitionTheRequestStream) {
  const trace::Trace t = recorded_trace();
  RecordingSink sink(kWindow);
  sim::simulate(t, capacity_of(t), cache::policy_spec_from_name("GD*(1)"),
                {}, sink);

  const MetricsSeries& series = sink.series();
  EXPECT_EQ(series.window_requests, kWindow);
  EXPECT_EQ(series.total_requests, t.total_requests());
  ASSERT_FALSE(series.windows.empty());

  std::uint64_t expected_first = 1;
  for (std::size_t i = 0; i < series.windows.size(); ++i) {
    const WindowSample& w = series.windows[i];
    EXPECT_EQ(w.first_request, expected_first) << "window " << i;
    EXPECT_GE(w.last_request, w.first_request) << "window " << i;
    if (i + 1 < series.windows.size()) {
      EXPECT_EQ(w.last_request - w.first_request + 1, kWindow)
          << "only the tail window may be short (window " << i << ")";
    }
    expected_first = w.last_request + 1;
  }
  EXPECT_EQ(series.windows.back().last_request, t.total_requests());
}

TEST(RecordingSink, SeriesSumsBackToAggregateExactly) {
  const trace::Trace t = recorded_trace();
  const trace::DenseTrace dense = trace::densify(t);
  // LRU-THOLD exercises the bypass counters, GD*(packet) the modification
  // and eviction paths under the byte-oriented cost model.
  for (const std::string name :
       {"LRU", "GD*(1)", "GD*(packet)", "LRU-THOLD(300000)", "LFU-DA"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    RecordingSink sink(kWindow);
    const sim::SimResult sparse =
        sim::simulate(t, capacity_of(t), spec, {}, sink);
    expect_sums_back(sink.series(), sparse, name + " sparse");

    const sim::SimResult densed =
        sim::simulate(dense, capacity_of(t), spec, {}, sink);
    expect_sums_back(sink.series(), densed, name + " dense");
  }
}

TEST(RecordingSink, PerClassCountersSumToOverallPerWindow) {
  const trace::Trace t = recorded_trace();
  RecordingSink sink(kWindow);
  sim::simulate(t, capacity_of(t),
                cache::policy_spec_from_name("GDS(packet)"), {}, sink);

  for (const WindowSample& w : sink.series().windows) {
    WindowCounters sum;
    for (const WindowCounters& c : w.per_class) sum.add(c);
    EXPECT_EQ(sum.requests, w.overall.requests);
    EXPECT_EQ(sum.hits, w.overall.hits);
    EXPECT_EQ(sum.requested_bytes, w.overall.requested_bytes);
    EXPECT_EQ(sum.hit_bytes, w.overall.hit_bytes);
    EXPECT_EQ(sum.evictions, w.overall.evictions);
    EXPECT_EQ(sum.evicted_bytes, w.overall.evicted_bytes);
  }
}

TEST(RecordingSink, PolicyStateTracesMatchThePolicy) {
  const trace::Trace t = recorded_trace();

  // GD* exposes the full probe: heap, inflation L, online beta.
  RecordingSink gdstar(kWindow);
  sim::simulate(t, capacity_of(t), cache::policy_spec_from_name("GD*(1)"),
                {}, gdstar);
  for (const WindowSample& w : gdstar.series().windows) {
    EXPECT_TRUE(w.state.aging.has_value());
    EXPECT_TRUE(w.state.beta.has_value());
    EXPECT_EQ(w.state.heap_entries, w.state.occupancy_objects)
        << "one heap entry per resident object";
    EXPECT_GE(*w.state.beta, 0.0);
  }

  // LFU-DA has an aging term (the cache age) but no beta.
  RecordingSink lfuda(kWindow);
  sim::simulate(t, capacity_of(t), cache::policy_spec_from_name("LFU-DA"),
                {}, lfuda);
  for (const WindowSample& w : lfuda.series().windows) {
    EXPECT_TRUE(w.state.aging.has_value());
    EXPECT_FALSE(w.state.beta.has_value());
  }

  // LRU has neither; the capacity bound must hold in every snapshot.
  RecordingSink lru(kWindow);
  const sim::SimResult r = sim::simulate(
      t, capacity_of(t), cache::policy_spec_from_name("LRU"), {}, lru);
  for (const WindowSample& w : lru.series().windows) {
    EXPECT_FALSE(w.state.aging.has_value());
    EXPECT_FALSE(w.state.beta.has_value());
    EXPECT_LE(w.state.occupancy_bytes, r.capacity_bytes);
  }
}

TEST(RecordingSink, ReusableAcrossRuns) {
  const trace::Trace t = recorded_trace();
  const cache::PolicySpec spec = cache::policy_spec_from_name("GDSF(1)");

  RecordingSink sink(kWindow);
  const sim::SimResult first =
      sim::simulate(t, capacity_of(t), spec, {}, sink);
  const std::size_t first_windows = sink.series().windows.size();

  const sim::SimResult second =
      sim::simulate(t, capacity_of(t), spec, {}, sink);
  EXPECT_EQ(sink.series().windows.size(), first_windows)
      << "begin_run must reset the series";
  EXPECT_EQ(sink.series().total_requests, t.total_requests());
  EXPECT_EQ(first.overall.hits, second.overall.hits);
  expect_sums_back(sink.series(), second, "second run");
}

TEST(RecordingSink, HierarchySinkObservesTheOfferedStream) {
  const trace::Trace t = recorded_trace();
  sim::HierarchyConfig config;
  config.edge_count = 4;
  config.edge_policy = cache::policy_spec_from_name("LRU");
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  config.root_capacity_bytes = capacity_of(t);
  config.edge_capacity_bytes = config.root_capacity_bytes / 4;

  RecordingSink sink(kWindow);
  const sim::HierarchyResult r = sim::simulate_hierarchy(t, config, sink);

  const WindowCounters totals = sink.series().totals();
  // The sink sees the client-offered stream: a hit is service by any level.
  EXPECT_EQ(totals.requests, r.offered.requests);
  EXPECT_EQ(totals.hits,
            r.edge_hits.hits + r.sibling_hits.hits + r.root_hits.hits);
  EXPECT_EQ(totals.requested_bytes, r.offered.requested_bytes);
  // Evictions arrive from every cache in the mesh, warm-up included.
  EXPECT_EQ(totals.evictions, r.edge_evictions + r.root_evictions);
  // The snapshot sums the mesh; the beta trace is the root's (GD*).
  ASSERT_FALSE(sink.series().windows.empty());
  EXPECT_TRUE(sink.series().windows.back().state.beta.has_value());
}

TEST(RecordingSink, PartitionedFrontendAggregatesTheProbe) {
  const trace::Trace t = recorded_trace();
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0 / trace::kDocumentClassCount);
  const auto config = cache::PartitionedCacheConfig::uniform_policy(
      capacity_of(t), cache::policy_spec_from_name("GDS(1)"), weights);

  cache::PartitionedCache cache(config);
  RecordingSink sink(kWindow);
  const sim::SimResult r = sim::simulate(t, cache, {}, sink);
  expect_sums_back(sink.series(), r, "partitioned");

  for (const WindowSample& w : sink.series().windows) {
    // Heap entries aggregate across partitions; there is no single aging
    // term or beta for the composite, so the probe leaves them unset.
    EXPECT_EQ(w.state.heap_entries, w.state.occupancy_objects);
    EXPECT_FALSE(w.state.aging.has_value());
    EXPECT_FALSE(w.state.beta.has_value());
  }
}

}  // namespace
}  // namespace webcache::obs
