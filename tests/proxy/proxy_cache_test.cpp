#include "proxy/proxy_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::proxy {
namespace {

ProxyCacheConfig small_config(const std::string& policy = "LRU",
                              std::uint64_t capacity = 1000) {
  ProxyCacheConfig config;
  config.capacity_bytes = capacity;
  config.policy = policy;
  return config;
}

TEST(ProxyCache, UnknownPolicyRejected) {
  EXPECT_THROW(ProxyCache(small_config("NOT-A-POLICY")),
               std::invalid_argument);
}

TEST(ProxyCache, MissThenStoreThenHit) {
  ProxyCache cache(small_config());
  const std::string url = "http://example.com/logo.gif";
  EXPECT_EQ(cache.lookup(url), Disposition::kMiss);
  EXPECT_TRUE(cache.store(url, 400, "image/gif"));
  EXPECT_EQ(cache.lookup(url), Disposition::kHit);
  EXPECT_TRUE(cache.contains(url));
  EXPECT_EQ(cache.used_bytes(), 400u);
}

TEST(ProxyCache, StatsAccumulate) {
  ProxyCache cache(small_config());
  const std::string url = "http://example.com/logo.gif";
  cache.lookup(url);
  cache.store(url, 400, "image/gif");
  cache.lookup(url);
  cache.lookup(url);
  const ProxyStats& stats = cache.stats();
  EXPECT_EQ(stats.overall.requests, 3u);
  EXPECT_EQ(stats.overall.hits, 2u);
  EXPECT_EQ(stats.overall.requested_bytes, 400u + 800u);
  EXPECT_EQ(stats.overall.hit_bytes, 800u);
  const auto& img =
      stats.per_class[static_cast<std::size_t>(trace::DocumentClass::kImage)];
  EXPECT_EQ(img.hits, 2u);
  EXPECT_EQ(stats.stores, 1u);
}

TEST(ProxyCache, DynamicUrlsUncacheable) {
  ProxyCache cache(small_config());
  EXPECT_EQ(cache.lookup("http://a/cgi-bin/q"), Disposition::kUncacheable);
  EXPECT_EQ(cache.lookup("http://a/page?x=1"), Disposition::kUncacheable);
  EXPECT_FALSE(cache.store("http://a/page?x=1", 100));
  EXPECT_EQ(cache.stats().uncacheable, 3u);
  EXPECT_EQ(cache.stats().overall.requests, 0u);
}

TEST(ProxyCache, FilteringCanBeDisabled) {
  ProxyCacheConfig config = small_config();
  config.filter_uncacheable = false;
  ProxyCache cache(config);
  const std::string url = "http://a/page?x=1";
  EXPECT_EQ(cache.lookup(url), Disposition::kMiss);
  EXPECT_TRUE(cache.store(url, 100, "text/html"));
  EXPECT_EQ(cache.lookup(url), Disposition::kHit);
}

TEST(ProxyCache, UncacheableStatusNotStored) {
  ProxyCache cache(small_config());
  EXPECT_FALSE(cache.store("http://a/missing.html", 100, "text/html", 404));
  EXPECT_FALSE(cache.contains("http://a/missing.html"));
}

TEST(ProxyCache, OversizedDocumentNotStored) {
  ProxyCache cache(small_config("LRU", 100));
  EXPECT_FALSE(cache.store("http://a/big.zip", 500, "application/zip"));
  EXPECT_FALSE(cache.contains("http://a/big.zip"));
}

TEST(ProxyCache, EvictionUnderPressure) {
  ProxyCache cache(small_config("LRU", 1000));
  for (int i = 0; i < 20; ++i) {
    const std::string url = "http://a/img" + std::to_string(i) + ".gif";
    cache.lookup(url);
    cache.store(url, 100, "image/gif");
  }
  EXPECT_LE(cache.used_bytes(), 1000u);
  // Early documents were evicted; late ones are resident.
  EXPECT_FALSE(cache.contains("http://a/img0.gif"));
  EXPECT_TRUE(cache.contains("http://a/img19.gif"));
}

TEST(ProxyCache, InvalidateRemoves) {
  ProxyCache cache(small_config());
  const std::string url = "http://a/x.html";
  cache.lookup(url);
  cache.store(url, 100, "text/html");
  cache.invalidate(url);
  EXPECT_FALSE(cache.contains(url));
  EXPECT_EQ(cache.stats().invalidations, 1u);
  cache.invalidate(url);  // idempotent
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(ProxyCache, StoreRefreshesSize) {
  ProxyCache cache(small_config());
  const std::string url = "http://a/x.html";
  cache.store(url, 100, "text/html");
  cache.store(url, 300, "text/html");
  EXPECT_EQ(cache.used_bytes(), 300u);
}

TEST(ProxyCache, ClassGuessedFromExtensionOnMiss) {
  ProxyCache cache(small_config());
  cache.lookup("http://a/movie.mpeg");
  const auto& mm = cache.stats().per_class[static_cast<std::size_t>(
      trace::DocumentClass::kMultiMedia)];
  EXPECT_EQ(mm.requests, 1u);
}

TEST(ProxyCache, OccupancyPerClass) {
  ProxyCache cache(small_config("GD*(packet)", 100000));
  cache.store("http://a/a.gif", 100, "image/gif");
  cache.store("http://a/b.pdf", 900, "application/pdf");
  const cache::Occupancy occ = cache.occupancy();
  EXPECT_DOUBLE_EQ(occ.byte_fraction(trace::DocumentClass::kImage), 0.1);
  EXPECT_DOUBLE_EQ(occ.byte_fraction(trace::DocumentClass::kApplication), 0.9);
  EXPECT_EQ(cache.policy_name(), "GD*(packet)");
}

TEST(ProxyCache, ClearResets) {
  ProxyCache cache(small_config());
  cache.store("http://a/a.gif", 100, "image/gif");
  cache.clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.contains("http://a/a.gif"));
  // Usable after clear.
  EXPECT_TRUE(cache.store("http://a/a.gif", 100, "image/gif"));
}

TEST(ProxyCache, FreshnessExpiryForcesRevalidation) {
  ProxyCache cache(small_config());
  const std::string url = "http://a/x.html";
  cache.lookup(url, 1000);
  EXPECT_TRUE(cache.store(url, 100, "text/html", 200, /*ttl_ms=*/500,
                          /*now_ms=*/1000));
  // Fresh until 1500.
  EXPECT_EQ(cache.lookup(url, 1400), Disposition::kHit);
  EXPECT_EQ(cache.lookup(url, 1500), Disposition::kExpired);
  EXPECT_FALSE(cache.contains(url));
  EXPECT_EQ(cache.stats().expirations, 1u);
  // Re-store after revalidation: fresh again.
  EXPECT_TRUE(cache.store(url, 100, "text/html", 200, 500, 1500));
  EXPECT_EQ(cache.lookup(url, 1600), Disposition::kHit);
}

TEST(ProxyCache, ZeroTtlMeansForeverFresh) {
  ProxyCache cache(small_config());
  const std::string url = "http://a/logo.gif";
  cache.store(url, 100, "image/gif", 200, /*ttl_ms=*/0, /*now_ms=*/1000);
  EXPECT_EQ(cache.lookup(url, 1u << 30), Disposition::kHit);
}

TEST(ProxyCache, ZeroNowSkipsFreshnessCheck) {
  // Callers that do not track time keep the pre-TTL behaviour.
  ProxyCache cache(small_config());
  const std::string url = "http://a/x.html";
  cache.store(url, 100, "text/html", 200, 500, 1000);
  EXPECT_EQ(cache.lookup(url), Disposition::kHit);  // now_ms = 0
}

TEST(ProxyCache, ExpiredLookupCountsAsRequestNotHit) {
  ProxyCache cache(small_config());
  const std::string url = "http://a/x.html";
  cache.store(url, 100, "text/html", 200, 10, 0);
  const auto before = cache.stats().overall;
  EXPECT_EQ(cache.lookup(url, 50), Disposition::kExpired);
  EXPECT_EQ(cache.stats().overall.requests, before.requests + 1);
  EXPECT_EQ(cache.stats().overall.hits, before.hits);
}

TEST(ProxyCache, WorksWithEveryPolicy) {
  for (const char* policy : {"LRU", "FIFO", "SIZE", "LFU", "LFU-DA", "GDS(1)",
                             "GDS(packet)", "GDSF(1)", "GDSF(packet)",
                             "GD*(1)", "GD*(packet)"}) {
    ProxyCache cache(small_config(policy, 500));
    for (int i = 0; i < 50; ++i) {
      const std::string url = "http://a/f" + std::to_string(i % 10) + ".html";
      if (cache.lookup(url) == Disposition::kMiss) {
        cache.store(url, 50 + (i % 10) * 10, "text/html");
        // A just-stored document is resident until the next insertion, so
        // an immediate re-lookup must hit under every policy.
        EXPECT_EQ(cache.lookup(url), Disposition::kHit) << policy;
      }
    }
    EXPECT_LE(cache.used_bytes(), 500u) << policy;
    EXPECT_GT(cache.stats().overall.hits, 0u) << policy;
  }
}

}  // namespace
}  // namespace webcache::proxy
