// Checkpoint corruption fuzzing: every torn, truncated, bit-flipped or
// cross-wired checkpoint image must be *detectably* damaged — the decoder
// throws a diagnostic naming the failing layer (magic, version, a section's
// CRC), or the damage surfaces as a renamed/missing section that the resume
// path rejects by name. No corruption may ever restore silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "sim/checkpoint.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request_stream.hpp"
#include "util/state_io.hpp"

namespace webcache::sim {
namespace {

namespace fs = std::filesystem;
using detail::CheckpointSection;

std::vector<CheckpointSection> sample_sections() {
  std::vector<CheckpointSection> sections;
  sections.push_back({"fingerprint", {0x01, 0x02, 0x03, 0x04, 0x05}});
  sections.push_back({"empty", {}});
  CheckpointSection binary{"cache", {}};
  for (int i = 0; i < 64; ++i) {
    binary.payload.push_back(static_cast<std::uint8_t>(i * 37));
  }
  sections.push_back(binary);
  return sections;
}

TEST(CheckpointFuzz, EncodeDecodeRoundTrip) {
  const std::vector<CheckpointSection> original = sample_sections();
  const std::vector<CheckpointSection> decoded =
      detail::decode_checkpoint(detail::encode_checkpoint(original));
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].name, original[i].name);
    EXPECT_EQ(decoded[i].payload, original[i].payload);
  }
}

TEST(CheckpointFuzz, EveryTruncationRejected) {
  const std::vector<std::uint8_t> bytes =
      detail::encode_checkpoint(sample_sections());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    EXPECT_THROW(detail::decode_checkpoint(prefix), std::runtime_error)
        << "prefix of " << len << " bytes decoded cleanly";
  }
}

TEST(CheckpointFuzz, EveryBitFlipDetected) {
  const std::vector<CheckpointSection> original = sample_sections();
  const std::vector<std::uint8_t> bytes = detail::encode_checkpoint(original);

  std::size_t throws = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (const int bit : {0, 7}) {
      std::vector<std::uint8_t> damaged = bytes;
      damaged[i] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const std::vector<CheckpointSection> decoded =
            detail::decode_checkpoint(damaged);
        // Section names are outside the per-section CRC, so a flip there
        // decodes — but the name no longer matches, which the resume path
        // rejects as a missing section. Anything else must have thrown.
        bool names_differ = decoded.size() != original.size();
        for (std::size_t s = 0; !names_differ && s < decoded.size(); ++s) {
          names_differ = decoded[s].name != original[s].name;
        }
        EXPECT_TRUE(names_differ)
            << "bit " << bit << " of byte " << i
            << " flipped without detection";
      } catch (const std::runtime_error&) {
        ++throws;
      }
    }
  }
  // The overwhelming majority of flips hit CRC-covered payload or structural
  // fields and must throw outright.
  EXPECT_GT(throws, bytes.size());
}

TEST(CheckpointFuzz, CrossWiredSectionsRejectedOnResume) {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  const trace::Trace t = generator.generate();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");

  const std::string dir = testing::TempDir() + "/webcache_ckpt_crosswire";
  fs::remove_all(dir);

  StreamCheckpointJob job;
  job.checkpoint.dir = dir;
  job.checkpoint.every = 3000;
  job.checkpoint.trace_source = "synthetic-dfn-0.002";
  job.checkpoint.stop_after_requests = 6000;
  {
    trace::MemoryRequestStream stream(t, 4096);
    cache::SingleCacheFrontend frontend(capacity, cache::make_policy(spec));
    ASSERT_TRUE(simulate_stream_checkpointed(stream, frontend, job)
                    .stopped_early);
  }

  // Swap the payloads of two sections in the newest checkpoint: each CRC
  // still validates, but the content belongs to the wrong subsystem.
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  const fs::path newest = files.back();
  for (const fs::path& older : files) {
    if (older != newest) fs::remove(older);  // no valid fallback may remain
  }
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(newest, std::ios::binary);
    bytes.assign((std::istreambuf_iterator<char>(in)),
                 std::istreambuf_iterator<char>());
  }
  std::vector<CheckpointSection> sections = detail::decode_checkpoint(bytes);
  CheckpointSection* cache_section = nullptr;
  CheckpointSection* lastsize_section = nullptr;
  for (CheckpointSection& s : sections) {
    if (s.name == "cache") cache_section = &s;
    if (s.name == "lastsize") lastsize_section = &s;
  }
  ASSERT_NE(cache_section, nullptr);
  ASSERT_NE(lastsize_section, nullptr);
  std::swap(cache_section->payload, lastsize_section->payload);
  {
    const std::vector<std::uint8_t> rewired =
        detail::encode_checkpoint(sections);
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(rewired.data()),
              static_cast<std::streamsize>(rewired.size()));
  }

  job.checkpoint.stop_after_requests = 0;
  job.checkpoint.resume = true;
  trace::MemoryRequestStream stream(t, 4096);
  cache::SingleCacheFrontend frontend(capacity, cache::make_policy(spec));
  try {
    simulate_stream_checkpointed(stream, frontend, job);
    FAIL() << "cross-wired checkpoint restored silently";
  } catch (const std::runtime_error& e) {
    // The misdelivered payload fails section-level parsing, which names the
    // section it was read as.
    const std::string what = e.what();
    EXPECT_TRUE(what.find("cache") != std::string::npos ||
                what.find("lastsize") != std::string::npos)
        << what;
  }
  fs::remove_all(dir);
}

TEST(CheckpointFuzz, FingerprintValidationNamesEveryField) {
  CheckpointFingerprint base;
  base.policy_description = "LRU cap=1000";
  base.capacity_bytes = 1000;
  base.warmup_fraction = 0.1;
  base.modification_rule = 1;
  base.modification_threshold = 0.05;
  base.occupancy_samples = 8;
  base.latency_setup_ms = 2.0;
  base.latency_bytes_per_ms = 4000.0;
  base.densified = false;
  base.hot_capacity = 0;
  base.window_requests = 113;
  base.fault_hash = 7;
  base.trace_source = "trace.wct";
  base.total_requests = 5000;
  base.seed = 42;

  // Round trip first: an unmodified fingerprint must validate.
  util::StateWriter w;
  detail::save_fingerprint(w, base);
  const std::vector<std::uint8_t> encoded = w.take();
  util::StateReader r(encoded.data(), encoded.size(), "fingerprint");
  const CheckpointFingerprint restored = detail::restore_fingerprint(r);
  EXPECT_NO_THROW(detail::validate_fingerprint(base, restored, "f.wckp"));

  struct Case {
    const char* field;
    void (*mutate)(CheckpointFingerprint&);
  };
  const Case cases[] = {
      {"policy", [](CheckpointFingerprint& f) { f.policy_description = "X"; }},
      {"capacity_bytes", [](CheckpointFingerprint& f) { f.capacity_bytes++; }},
      {"warmup_fraction",
       [](CheckpointFingerprint& f) { f.warmup_fraction = 0.2; }},
      {"modification_rule",
       [](CheckpointFingerprint& f) { f.modification_rule = 2; }},
      {"modification_threshold",
       [](CheckpointFingerprint& f) { f.modification_threshold = 0.06; }},
      {"occupancy_samples",
       [](CheckpointFingerprint& f) { f.occupancy_samples = 9; }},
      {"latency_setup_ms",
       [](CheckpointFingerprint& f) { f.latency_setup_ms = 3.0; }},
      {"latency_bytes_per_ms",
       [](CheckpointFingerprint& f) { f.latency_bytes_per_ms = 1.0; }},
      {"densified", [](CheckpointFingerprint& f) { f.densified = true; }},
      {"hot_capacity", [](CheckpointFingerprint& f) { f.hot_capacity = 64; }},
      {"window_requests",
       [](CheckpointFingerprint& f) { f.window_requests = 0; }},
      {"fault_schedule", [](CheckpointFingerprint& f) { f.fault_hash = 8; }},
      {"trace_source",
       [](CheckpointFingerprint& f) { f.trace_source = "other.wct"; }},
      {"total_requests",
       [](CheckpointFingerprint& f) { f.total_requests = 1; }},
      {"seed", [](CheckpointFingerprint& f) { f.seed = 43; }},
  };
  for (const Case& c : cases) {
    CheckpointFingerprint found = base;
    c.mutate(found);
    try {
      detail::validate_fingerprint(base, found, "f.wckp");
      FAIL() << "mismatched " << c.field << " validated";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.field), std::string::npos)
          << "field " << c.field << " not named in: " << e.what();
      EXPECT_NE(std::string(e.what()).find("f.wckp"), std::string::npos)
          << e.what();
    }
  }
}

TEST(CheckpointFuzz, SimResultStateRoundTrip) {
  SimResult result;
  result.policy_name = "GD*(packet)";
  result.capacity_bytes = 123456;
  result.overall = {100, 40, 987654, 32100};
  for (std::size_t c = 0; c < result.per_class.size(); ++c) {
    result.per_class[c] = {10 + c, 5 + c, 1000 * c, 300 * c};
  }
  result.warmup_requests = 50;
  result.measured_requests = 950;
  result.evictions = 77;
  result.bypasses = 3;
  result.miss_latency_ms = 123.4375;  // exactly representable
  result.all_miss_latency_ms = 987.5;
  result.modification_misses = 4;
  result.interrupted_transfers = 2;
  OccupancySample sample;
  sample.request_index = 500;
  sample.occupancy.objects[0] = 9;
  sample.occupancy.bytes[0] = 900;
  sample.occupancy.total_objects = 9;
  sample.occupancy.total_bytes = 900;
  result.occupancy_series = {sample};
  result.faults.events_applied = 6;
  result.faults.failovers = 5;
  result.faults.lost_requests = 4;
  result.faults.lost_bytes = 4000;
  result.faults.probe_timeouts = 11;
  result.faults.origin_fetches = 2;

  util::StateWriter w;
  detail::save_sim_result(w, result);
  const std::vector<std::uint8_t> bytes = w.take();
  util::StateReader r(bytes.data(), bytes.size(), "result");
  const SimResult restored = detail::restore_sim_result(r);
  r.expect_end();

  EXPECT_EQ(restored.policy_name, result.policy_name);
  EXPECT_EQ(restored.capacity_bytes, result.capacity_bytes);
  EXPECT_EQ(restored.overall.requests, result.overall.requests);
  EXPECT_EQ(restored.overall.hit_bytes, result.overall.hit_bytes);
  for (std::size_t c = 0; c < result.per_class.size(); ++c) {
    EXPECT_EQ(restored.per_class[c].requests, result.per_class[c].requests);
  }
  EXPECT_EQ(restored.miss_latency_ms, result.miss_latency_ms);
  EXPECT_EQ(restored.all_miss_latency_ms, result.all_miss_latency_ms);
  ASSERT_EQ(restored.occupancy_series.size(), 1u);
  EXPECT_EQ(restored.occupancy_series[0].request_index, 500u);
  EXPECT_EQ(restored.occupancy_series[0].occupancy.total_bytes, 900u);
  EXPECT_EQ(restored.faults.probe_timeouts, 11u);
}

TEST(CheckpointFuzz, FaultScheduleHashSeparatesScenarios) {
  FaultSchedule a;
  a.events = {{100, FaultKind::kEdgeCrash, 0}};
  a.seed = 1;
  FaultSchedule b = a;

  EXPECT_NE(fault_schedule_hash(a), 0u);  // 0 is reserved for "no schedule"
  EXPECT_EQ(fault_schedule_hash(a), fault_schedule_hash(b));

  b.seed = 2;
  EXPECT_NE(fault_schedule_hash(a), fault_schedule_hash(b));
  b = a;
  b.events[0].at_request = 101;
  EXPECT_NE(fault_schedule_hash(a), fault_schedule_hash(b));
  b = a;
  b.events.push_back({200, FaultKind::kEdgeRecover, 0});
  EXPECT_NE(fault_schedule_hash(a), fault_schedule_hash(b));
  b = a;
  b.probe_timeout_rate = 0.5;
  EXPECT_NE(fault_schedule_hash(a), fault_schedule_hash(b));

  EXPECT_NE(fault_schedule_hash(FaultSchedule{}), 0u);
}

}  // namespace
}  // namespace webcache::sim
