// Checkpoint/resume must be invisible: splitting a streaming replay at an
// arbitrary request, serializing the complete run state to disk, and
// resuming in a fresh process image has to yield bit-identical SimResults
// (and metrics series) to the uninterrupted run — for every factory policy,
// densified or sparse, instrumented or not, with or without a fault
// schedule. A checkpoint whose fingerprint disagrees with the resuming run
// must be rejected by name, never silently restored.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "obs/stats_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/reporter.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {
namespace {

namespace fs = std::filesystem;

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.policy_name, b.policy_name) << label;
  EXPECT_EQ(a.capacity_bytes, b.capacity_bytes) << label;
  expect_identical_counters(a.overall, b.overall, label);
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    expect_identical_counters(a.per_class[c], b.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(a.warmup_requests, b.warmup_requests) << label;
  EXPECT_EQ(a.measured_requests, b.measured_requests) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.bypasses, b.bypasses) << label;
  // Resume replays the same doubles in the same order, so exact equality is
  // the correct expectation.
  EXPECT_EQ(a.miss_latency_ms, b.miss_latency_ms) << label;
  EXPECT_EQ(a.all_miss_latency_ms, b.all_miss_latency_ms) << label;
  EXPECT_EQ(a.modification_misses, b.modification_misses) << label;
  EXPECT_EQ(a.interrupted_transfers, b.interrupted_transfers) << label;
  ASSERT_EQ(a.occupancy_series.size(), b.occupancy_series.size()) << label;
  for (std::size_t i = 0; i < a.occupancy_series.size(); ++i) {
    const OccupancySample& sa = a.occupancy_series[i];
    const OccupancySample& sb = b.occupancy_series[i];
    EXPECT_EQ(sa.request_index, sb.request_index) << label;
    EXPECT_EQ(sa.occupancy.total_objects, sb.occupancy.total_objects)
        << label;
    EXPECT_EQ(sa.occupancy.total_bytes, sb.occupancy.total_bytes) << label;
    EXPECT_EQ(sa.occupancy.objects, sb.occupancy.objects) << label;
    EXPECT_EQ(sa.occupancy.bytes, sb.occupancy.bytes) << label;
  }
  EXPECT_EQ(a.faults.events_applied, b.faults.events_applied) << label;
  EXPECT_EQ(a.faults.failovers, b.faults.failovers) << label;
  EXPECT_EQ(a.faults.lost_requests, b.faults.lost_requests) << label;
  EXPECT_EQ(a.faults.lost_bytes, b.faults.lost_bytes) << label;
  EXPECT_EQ(a.faults.probe_timeouts, b.faults.probe_timeouts) << label;
  EXPECT_EQ(a.faults.origin_fetches, b.faults.origin_fetches) << label;
}

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

cache::SingleCacheFrontend make_frontend(const cache::PolicySpec& spec,
                                         std::uint64_t capacity) {
  const std::uint64_t admission_limit =
      spec.kind == cache::PolicyKind::kLruThreshold
          ? spec.admission_threshold_bytes
          : 0;
  return cache::SingleCacheFrontend(capacity, cache::make_policy(spec),
                                    admission_limit);
}

/// A fresh, empty checkpoint directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/webcache_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

const std::vector<std::string>& factory_policies() {
  static const std::vector<std::string> names = {
      "LRU",          "LRU-MIN",       "LRU-2",
      "LRU-THOLD(300000)",             "FIFO",
      "SIZE",         "LFU",           "LFU-DA",
      "GDS(1)",       "GDS(packet)",   "GDS(latency)",
      "GDSF(1)",      "GDSF(packet)",  "GDSF(latency)",
      "GD*(1)",       "GD*(packet)",   "GD*(latency)",
      "GD*C(1)",      "GD*C(packet)",
      "RANDOM:seed=7",                 "CLOCK",
      "DELAY-CLOCK:k=3",               "PROB-LRU:p=0.5,seed=9",
      "DELAY-LRU:k=2",                 "BATCH-LRU:batch=8"};
  return names;
}

TEST(CheckpointRoundTrip, AllFactoryPoliciesSplitRunMatchesUninterrupted) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;  // 4%
  const std::uint64_t half = t.total_requests() / 2;

  SimulatorOptions options;
  options.occupancy_samples = 8;  // samples land on both sides of the split

  std::size_t index = 0;
  for (const std::string& name : factory_policies()) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);

    trace::MemoryRequestStream s0(t, 4096);
    cache::SingleCacheFrontend f0 = make_frontend(spec, capacity);
    const SimResult baseline = simulate_stream(s0, f0, options);

    const std::string dir = fresh_dir("policy_" + std::to_string(index++));
    StreamCheckpointJob job;
    job.options = options;
    job.checkpoint.dir = dir;
    job.checkpoint.every = 919;  // prime: never aligns with chunk 4096
    job.checkpoint.keep = 2;
    job.checkpoint.trace_source = "synthetic-dfn-0.002";
    job.checkpoint.stop_after_requests = half;

    trace::MemoryRequestStream s1(t, 4096);
    cache::SingleCacheFrontend f1 = make_frontend(spec, capacity);
    const CheckpointedRun phase1 = simulate_stream_checkpointed(s1, f1, job);
    EXPECT_TRUE(phase1.stopped_early) << name;
    EXPECT_GT(phase1.checkpoints_written, 0u) << name;

    job.checkpoint.stop_after_requests = 0;
    job.checkpoint.resume = true;
    trace::MemoryRequestStream s2(t, 4096);
    cache::SingleCacheFrontend f2 = make_frontend(spec, capacity);
    const CheckpointedRun done = simulate_stream_checkpointed(s2, f2, job);
    EXPECT_EQ(done.resumed_from, half) << name;
    EXPECT_TRUE(checkpoint_resume_diagnostics().empty()) << name;
    expect_identical(baseline, done.result, name);
    fs::remove_all(dir);
  }
}

TEST(CheckpointRoundTrip, DensifiedInstrumentedThreeSegmentRun) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const std::uint64_t third = t.total_requests() / 3;
  const SimulatorOptions options;

  trace::OnlineDensifier::Options densify;
  densify.hot_capacity = 64;  // force hot-tier spills across the splits

  std::size_t index = 0;
  for (const std::string& name :
       {std::string("LRU"), std::string("GD*(packet)")}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);

    obs::RecordingSink baseline_sink(113);
    trace::MemoryRequestStream s0(t, 4096);
    cache::SingleCacheFrontend f0 = make_frontend(spec, capacity);
    const SimResult baseline =
        simulate_stream_densified(s0, f0, options, baseline_sink, densify);
    std::ostringstream baseline_json;
    write_metrics_json(baseline_json, baseline, baseline_sink.series());

    const std::string dir = fresh_dir("densified_" + std::to_string(index++));
    StreamCheckpointJob job;
    job.options = options;
    job.checkpoint.dir = dir;
    job.checkpoint.every = 701;
    job.checkpoint.trace_source = "synthetic-dfn-0.002";
    job.densified = true;
    job.densify_options = densify;

    SimResult final_result;
    std::ostringstream final_json;
    const std::uint64_t stops[] = {third, 2 * third, 0};
    for (const std::uint64_t stop : stops) {
      job.checkpoint.stop_after_requests = stop;
      obs::RecordingSink sink(113);
      job.sink = &sink;
      trace::MemoryRequestStream stream(t, 4096);
      cache::SingleCacheFrontend frontend = make_frontend(spec, capacity);
      const CheckpointedRun run =
          simulate_stream_checkpointed(stream, frontend, job);
      job.checkpoint.resume = true;  // every later segment resumes
      if (stop == 0) {
        final_result = run.result;
        EXPECT_EQ(run.resumed_from, 2 * third) << name;
        write_metrics_json(final_json, run.result, sink.series());
      } else {
        EXPECT_TRUE(run.stopped_early) << name;
      }
    }
    expect_identical(baseline, final_result, name + " densified");
    EXPECT_EQ(baseline_json.str(), final_json.str())
        << name << ": metrics series diverged across the splits";
    fs::remove_all(dir);
  }
}

TEST(CheckpointRoundTrip, FaultScheduleCursorSurvivesTheSplit) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const std::uint64_t half = t.total_requests() / 2;
  const SimulatorOptions options;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");

  // Events on both sides of the split, including one exactly at the resume
  // point (half + 1 fires on the first replayed request).
  FaultSchedule schedule;
  schedule.events = {{100, FaultKind::kEdgeCrash, 0},
                     {101, FaultKind::kEdgeRecover, 0},
                     {half, FaultKind::kEdgeCrash, 0},
                     {half + 1, FaultKind::kEdgeRecover, 0},
                     {half + 500, FaultKind::kEdgeCrash, 0},
                     {half + 600, FaultKind::kEdgeRecover, 0}};
  schedule.seed = 17;

  trace::MemoryRequestStream s0(t, 4096);
  cache::SingleCacheFrontend f0 = make_frontend(spec, capacity);
  const SimResult baseline = simulate_stream(s0, f0, options, schedule);

  const std::string dir = fresh_dir("faults");
  StreamCheckpointJob job;
  job.options = options;
  job.checkpoint.dir = dir;
  job.checkpoint.every = 919;
  job.checkpoint.trace_source = "synthetic-dfn-0.002";
  job.checkpoint.stop_after_requests = half;
  job.faults = &schedule;

  trace::MemoryRequestStream s1(t, 4096);
  cache::SingleCacheFrontend f1 = make_frontend(spec, capacity);
  const CheckpointedRun phase1 = simulate_stream_checkpointed(s1, f1, job);
  EXPECT_TRUE(phase1.stopped_early);

  job.checkpoint.stop_after_requests = 0;
  job.checkpoint.resume = true;
  trace::MemoryRequestStream s2(t, 4096);
  cache::SingleCacheFrontend f2 = make_frontend(spec, capacity);
  const CheckpointedRun done = simulate_stream_checkpointed(s2, f2, job);
  EXPECT_EQ(done.resumed_from, half);
  expect_identical(baseline, done.result, "faulted split");
  fs::remove_all(dir);
}

TEST(CheckpointRoundTrip, ResumeOnEmptyDirectoryIsAColdStart) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const SimulatorOptions options;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GDSF(1)");

  trace::MemoryRequestStream s0(t, 4096);
  cache::SingleCacheFrontend f0 = make_frontend(spec, capacity);
  const SimResult baseline = simulate_stream(s0, f0, options);

  const std::string dir = fresh_dir("cold");
  StreamCheckpointJob job;
  job.options = options;
  job.checkpoint.dir = dir;
  job.checkpoint.every = 3000;
  job.checkpoint.resume = true;  // nothing to resume from yet
  job.checkpoint.trace_source = "synthetic-dfn-0.002";

  trace::MemoryRequestStream s1(t, 4096);
  cache::SingleCacheFrontend f1 = make_frontend(spec, capacity);
  const CheckpointedRun run = simulate_stream_checkpointed(s1, f1, job);
  EXPECT_EQ(run.resumed_from, 0u);
  EXPECT_GT(run.checkpoints_written, 0u);
  expect_identical(baseline, run.result, "cold start");
  fs::remove_all(dir);
}

TEST(CheckpointRoundTrip, NoCheckpointConfigReplaysPlain) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const SimulatorOptions options;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LFU-DA");

  trace::MemoryRequestStream s0(t, 4096);
  cache::SingleCacheFrontend f0 = make_frontend(spec, capacity);
  const SimResult baseline = simulate_stream(s0, f0, options);

  StreamCheckpointJob job;  // every == 0, resume == false: no dir needed
  job.options = options;
  trace::MemoryRequestStream s1(t, 4096);
  cache::SingleCacheFrontend f1 = make_frontend(spec, capacity);
  const CheckpointedRun run = simulate_stream_checkpointed(s1, f1, job);
  EXPECT_EQ(run.checkpoints_written, 0u);
  EXPECT_EQ(run.resumed_from, 0u);
  expect_identical(baseline, run.result, "no checkpointing");
}

/// Every fingerprint disagreement between the checkpoint and the resuming
/// run must abort with a diagnostic naming the mismatching field — resuming
/// under a different configuration would produce confidently wrong numbers.
TEST(CheckpointRoundTrip, MismatchedResumeConfigurationsRejectedByName) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const std::uint64_t half = t.total_requests() / 2;
  SimulatorOptions options;

  const std::string dir = fresh_dir("mismatch");
  StreamCheckpointJob job;
  job.options = options;
  job.checkpoint.dir = dir;
  job.checkpoint.every = 3000;
  job.checkpoint.trace_source = "synthetic-dfn-0.002";
  job.checkpoint.stop_after_requests = half;

  const cache::PolicySpec lru = cache::policy_spec_from_name("LRU");
  trace::MemoryRequestStream s1(t, 4096);
  cache::SingleCacheFrontend f1 = make_frontend(lru, capacity);
  ASSERT_TRUE(simulate_stream_checkpointed(s1, f1, job).stopped_early);

  job.checkpoint.stop_after_requests = 0;
  job.checkpoint.resume = true;

  const auto expect_rejected = [&](StreamCheckpointJob bad,
                                   const cache::PolicySpec& spec,
                                   std::uint64_t cap,
                                   const std::string& field) {
    trace::MemoryRequestStream stream(t, 4096);
    cache::SingleCacheFrontend frontend = make_frontend(spec, cap);
    try {
      simulate_stream_checkpointed(stream, frontend, bad);
      FAIL() << "resume accepted a mismatched " << field;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };

  expect_rejected(job, cache::policy_spec_from_name("FIFO"), capacity,
                  "policy");
  expect_rejected(job, lru, capacity / 2, "capacity_bytes");
  {
    StreamCheckpointJob warm = job;
    warm.options.warmup_fraction = 0.25;
    expect_rejected(warm, lru, capacity, "warmup_fraction");
  }
  {
    StreamCheckpointJob other = job;
    other.checkpoint.trace_source = "some-other-trace.wct";
    expect_rejected(other, lru, capacity, "trace_source");
  }
  {
    StreamCheckpointJob seeded = job;
    seeded.checkpoint.seed = 99;
    expect_rejected(seeded, lru, capacity, "seed");
  }
  {
    // A fault schedule where the checkpoint had none.
    StreamCheckpointJob faulted = job;
    FaultSchedule schedule;
    schedule.events = {{10, FaultKind::kEdgeCrash, 0}};
    faulted.faults = &schedule;
    expect_rejected(faulted, lru, capacity, "fault_schedule");
  }

  // The matching configuration still resumes fine afterwards.
  trace::MemoryRequestStream s2(t, 4096);
  cache::SingleCacheFrontend f2 = make_frontend(lru, capacity);
  EXPECT_EQ(simulate_stream_checkpointed(s2, f2, job).resumed_from, half);
  fs::remove_all(dir);
}

TEST(CheckpointRoundTrip, RetentionKeepsOnlyNewestFiles) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const SimulatorOptions options;

  const std::string dir = fresh_dir("retention");
  StreamCheckpointJob job;
  job.options = options;
  job.checkpoint.dir = dir;
  job.checkpoint.every = 1000;
  job.checkpoint.keep = 2;
  job.checkpoint.trace_source = "synthetic-dfn-0.002";

  trace::MemoryRequestStream stream(t, 4096);
  cache::SingleCacheFrontend frontend =
      make_frontend(cache::policy_spec_from_name("LRU"), capacity);
  const CheckpointedRun run = simulate_stream_checkpointed(stream, frontend, job);
  EXPECT_GT(run.checkpoints_written, 2u);

  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace webcache::sim
