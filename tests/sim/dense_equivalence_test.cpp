// The dense-id fast path must be a pure representation change: replaying
// the same recorded trace through the array-backed containers has to yield
// byte-identical SimResults to the hash-backed path, for every policy, and
// the parallel sweep must be thread-count invariant.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::sim {
namespace {

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const SimResult& sparse, const SimResult& dense,
                      const std::string& label) {
  EXPECT_EQ(sparse.policy_name, dense.policy_name) << label;
  EXPECT_EQ(sparse.capacity_bytes, dense.capacity_bytes) << label;
  expect_identical_counters(sparse.overall, dense.overall, label);
  for (std::size_t c = 0; c < sparse.per_class.size(); ++c) {
    expect_identical_counters(sparse.per_class[c], dense.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(sparse.warmup_requests, dense.warmup_requests) << label;
  EXPECT_EQ(sparse.measured_requests, dense.measured_requests) << label;
  EXPECT_EQ(sparse.evictions, dense.evictions) << label;
  EXPECT_EQ(sparse.bypasses, dense.bypasses) << label;
  // The latency sums accumulate the same doubles in the same order, so
  // exact equality is the correct expectation.
  EXPECT_EQ(sparse.miss_latency_ms, dense.miss_latency_ms) << label;
  EXPECT_EQ(sparse.all_miss_latency_ms, dense.all_miss_latency_ms) << label;
  EXPECT_EQ(sparse.modification_misses, dense.modification_misses) << label;
  EXPECT_EQ(sparse.interrupted_transfers, dense.interrupted_transfers) << label;
  ASSERT_EQ(sparse.occupancy_series.size(), dense.occupancy_series.size())
      << label;
  for (std::size_t i = 0; i < sparse.occupancy_series.size(); ++i) {
    const OccupancySample& sa = sparse.occupancy_series[i];
    const OccupancySample& sb = dense.occupancy_series[i];
    EXPECT_EQ(sa.request_index, sb.request_index) << label;
    EXPECT_EQ(sa.occupancy.total_objects, sb.occupancy.total_objects) << label;
    EXPECT_EQ(sa.occupancy.total_bytes, sb.occupancy.total_bytes) << label;
    EXPECT_EQ(sa.occupancy.objects, sb.occupancy.objects) << label;
    EXPECT_EQ(sa.occupancy.bytes, sb.occupancy.bytes) << label;
  }
}

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

const std::vector<std::string>& policies_under_test() {
  static const std::vector<std::string> names = {
      "LRU",          "LFU-DA",      "GDS(1)",  "GDS(packet)",
      "GDSF(1)",      "GD*(1)",      "GD*(packet)",
      "GD*C(packet)", "LRU-MIN",     "LRU-THOLD(300000)",
      "FIFO",         "SIZE",        "LFU",     "LRU-2"};
  return names;
}

TEST(DenseEquivalence, SimResultsAreByteIdenticalAcrossPolicies) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;  // 4%

  SimulatorOptions options;
  options.occupancy_samples = 8;  // exercise the occupancy path too

  for (const std::string& name : policies_under_test()) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult a = simulate(sparse, capacity, spec, options);
    const SimResult b = simulate(dense, capacity, spec, options);
    expect_identical(a, b, name);
  }
}

TEST(DenseEquivalence, ModificationRulesMatch) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 50;

  for (const ModificationRule rule :
       {ModificationRule::kThreshold, ModificationRule::kAnyChange,
        ModificationRule::kNever}) {
    SimulatorOptions options;
    options.modification_rule = rule;
    const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(packet)");
    const SimResult a = simulate(sparse, capacity, spec, options);
    const SimResult b = simulate(dense, capacity, spec, options);
    expect_identical(a, b,
                     "rule " + std::to_string(static_cast<int>(rule)));
  }
}

TEST(DenseEquivalence, SweepIsThreadCountInvariant) {
  const trace::DenseTrace dense = trace::densify(recorded_trace());

  SweepConfig config;
  config.cache_fractions = {0.01, 0.04, 0.16};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kPacket);

  config.threads = 1;
  const SweepResult serial = run_sweep(dense, config);
  config.threads = 8;
  const SweepResult parallel = run_sweep(dense, config);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  EXPECT_EQ(serial.overall_size_bytes, parallel.overall_size_bytes);
  for (std::size_t f = 0; f < serial.points.size(); ++f) {
    ASSERT_EQ(serial.points[f].results.size(),
              parallel.points[f].results.size());
    EXPECT_EQ(serial.points[f].capacity_bytes,
              parallel.points[f].capacity_bytes);
    for (std::size_t p = 0; p < serial.points[f].results.size(); ++p) {
      expect_identical(serial.points[f].results[p],
                       parallel.points[f].results[p],
                       "cell f" + std::to_string(f) + " p" + std::to_string(p));
    }
  }
}

TEST(DenseEquivalence, SparseAndDenseSweepAgree) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);

  SweepConfig config;
  config.cache_fractions = {0.02, 0.08};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  config.threads = 2;

  const SweepResult a = run_sweep(sparse, config);
  const SweepResult b = run_sweep(dense, config);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    for (std::size_t p = 0; p < a.points[f].results.size(); ++p) {
      expect_identical(a.points[f].results[p], b.points[f].results[p],
                       "cell f" + std::to_string(f) + " p" + std::to_string(p));
    }
  }
}

}  // namespace
}  // namespace webcache::sim
