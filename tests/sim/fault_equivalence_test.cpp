// Empty-FaultSchedule bit-identity: the fault-aware replay loops must be a
// pure superset of the plain ones. With no events scheduled, every
// fault-aware entry point — hierarchy and partitioned, sparse and dense,
// instrumented or not — yields exactly the counters of its plain
// counterpart, across the policy factory.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "obs/stats_sink.hpp"
#include "sim/faults.hpp"
#include "sim/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::sim {
namespace {

const std::vector<std::string>& factory_policies() {
  static const std::vector<std::string> names = {
      "LRU",          "FIFO",   "SIZE",   "LFU",         "LFU-DA",
      "LRU-MIN",      "GDS(1)", "GDSF(1)", "GD*(1)",     "GD*(packet)",
  };
  return names;
}

trace::Trace recorded_trace() {
  synth::GeneratorOptions gen;
  gen.seed = 5;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002),
                               gen)
      .generate();
}

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_no_fault_stats(const FaultStats& f, const std::string& label) {
  EXPECT_EQ(f.events_applied, 0u) << label;
  EXPECT_EQ(f.failovers, 0u) << label;
  EXPECT_EQ(f.lost_requests, 0u) << label;
  EXPECT_EQ(f.lost_bytes, 0u) << label;
  EXPECT_EQ(f.probe_timeouts, 0u) << label;
  EXPECT_EQ(f.origin_fetches, 0u) << label;
}

void expect_identical(const HierarchyResult& a, const HierarchyResult& b,
                      const std::string& label) {
  expect_identical_counters(a.offered, b.offered, label + " offered");
  expect_identical_counters(a.edge_hits, b.edge_hits, label + " edge");
  expect_identical_counters(a.sibling_hits, b.sibling_hits,
                            label + " sibling");
  expect_identical_counters(a.root_hits, b.root_hits, label + " root");
  for (std::size_t c = 0; c < a.edge_per_class.size(); ++c) {
    expect_identical_counters(a.edge_per_class[c], b.edge_per_class[c],
                              label + " edge class " + std::to_string(c));
    expect_identical_counters(a.root_per_class[c], b.root_per_class[c],
                              label + " root class " + std::to_string(c));
  }
  EXPECT_EQ(a.root_requests, b.root_requests) << label;
  EXPECT_EQ(a.edge_evictions, b.edge_evictions) << label;
  EXPECT_EQ(a.root_evictions, b.root_evictions) << label;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  expect_identical_counters(a.overall, b.overall, label + " overall");
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    expect_identical_counters(a.per_class[c], b.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.bypasses, b.bypasses) << label;
  EXPECT_EQ(a.modification_misses, b.modification_misses) << label;
  EXPECT_EQ(a.interrupted_transfers, b.interrupted_transfers) << label;
  EXPECT_DOUBLE_EQ(a.miss_latency_ms, b.miss_latency_ms) << label;
  EXPECT_DOUBLE_EQ(a.all_miss_latency_ms, b.all_miss_latency_ms) << label;
}

TEST(FaultEquivalence, EmptyScheduleMatchesPlainHierarchy) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const FaultSchedule empty;

  for (const std::string& name : factory_policies()) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    HierarchyConfig config;
    config.edge_count = 3;
    config.edge_capacity_bytes = sparse.overall_size_bytes() / 150;
    config.edge_policy = spec;
    config.root_capacity_bytes = sparse.overall_size_bytes() / 12;
    config.root_policy = spec;
    config.sibling_cooperation = true;

    const HierarchyResult plain = simulate_hierarchy(sparse, config);
    const HierarchyResult faulted = simulate_hierarchy(sparse, config, empty);
    expect_identical(plain, faulted, name + " sparse");
    expect_no_fault_stats(faulted.faults, name + " sparse");

    const HierarchyResult plain_dense = simulate_hierarchy(dense, config);
    const HierarchyResult faulted_dense =
        simulate_hierarchy(dense, config, empty);
    expect_identical(plain_dense, faulted_dense, name + " dense");
    expect_identical(plain, plain_dense, name + " sparse-vs-dense");
    expect_no_fault_stats(faulted_dense.faults, name + " dense");
  }
}

TEST(FaultEquivalence, EmptyScheduleMatchesPlainPartitioned) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const FaultSchedule empty;
  const SimulatorOptions options;
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0);

  for (const std::string& name : factory_policies()) {
    const auto config = cache::PartitionedCacheConfig::uniform_policy(
        sparse.overall_size_bytes() / 25, cache::policy_spec_from_name(name),
        weights);

    cache::PartitionedCache plain_cache(config);
    const SimResult plain = simulate(sparse, plain_cache, options);
    cache::PartitionedCache fault_cache(config);
    const SimResult faulted = simulate(sparse, fault_cache, options, empty);
    expect_identical(plain, faulted, name + " sparse");
    expect_no_fault_stats(faulted.faults, name + " sparse");

    cache::PartitionedCache dense_cache(config);
    const SimResult faulted_dense = simulate(dense, dense_cache, options, empty);
    expect_identical(plain, faulted_dense, name + " dense");
    expect_no_fault_stats(faulted_dense.faults, name + " dense");
  }
}

TEST(FaultEquivalence, InstrumentedEmptyScheduleMatchesPlainSeries) {
  // The fault-aware instrumented loop must report the same flow series as
  // the plain instrumented loop with an empty schedule — the fault feed
  // only adds the availability samples (every node up, every window).
  const trace::Trace t = recorded_trace();
  HierarchyConfig config;
  config.edge_count = 3;
  config.edge_capacity_bytes = t.overall_size_bytes() / 150;
  config.edge_policy = cache::policy_spec_from_name("GD*(1)");
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  config.sibling_cooperation = true;

  obs::RecordingSink plain_sink(500);
  const HierarchyResult plain = simulate_hierarchy(t, config, plain_sink);
  obs::RecordingSink fault_sink(500);
  const FaultSchedule empty;
  const HierarchyResult faulted =
      simulate_hierarchy(t, config, empty, fault_sink);

  expect_identical(plain, faulted, "instrumented");
  const obs::MetricsSeries& a = plain_sink.series();
  const obs::MetricsSeries& b = fault_sink.series();
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    const std::string label = "window " + std::to_string(i);
    EXPECT_EQ(a.windows[i].overall.requests, b.windows[i].overall.requests)
        << label;
    EXPECT_EQ(a.windows[i].overall.hits, b.windows[i].overall.hits) << label;
    EXPECT_EQ(a.windows[i].overall.evictions, b.windows[i].overall.evictions)
        << label;
    EXPECT_EQ(b.windows[i].overall.lost, 0u) << label;
    EXPECT_EQ(b.windows[i].failovers, 0u) << label;
    EXPECT_EQ(b.windows[i].fault_events, 0u) << label;
    // The plain run records no availability; the fault run reports 1.0.
    EXPECT_FALSE(a.windows[i].availability(b.fault_nodes).has_value());
    const auto avail = b.windows[i].availability(b.fault_nodes);
    ASSERT_TRUE(avail.has_value()) << label;
    EXPECT_DOUBLE_EQ(*avail, 1.0) << label;
  }
  EXPECT_EQ(a.fault_nodes, 0u);
  EXPECT_EQ(b.fault_nodes, 4u);  // 3 edges + root
  EXPECT_TRUE(b.warmup_curves.empty());
}

}  // namespace
}  // namespace webcache::sim
