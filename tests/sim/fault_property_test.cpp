// Fuzz-style properties of the fault layer: random schedules over random
// synthetic mixes must never crash, never double-count, and always conserve
// the request stream — hits + misses + lost == total, per window and
// overall.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "obs/stats_sink.hpp"
#include "sim/faults.hpp"
#include "sim/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace webcache::sim {
namespace {

trace::Trace random_trace(util::Rng& rng) {
  synth::GeneratorOptions gen;
  gen.seed = rng.below(1 << 20);
  synth::WorkloadProfile profile = rng.below(2) == 0
                                       ? synth::WorkloadProfile::DFN()
                                       : synth::WorkloadProfile::RTP();
  return synth::TraceGenerator(profile.scaled(0.002), gen).generate();
}

FaultSchedule random_schedule(util::Rng& rng, std::uint64_t total_requests,
                              std::uint32_t nodes, bool with_root) {
  FaultSchedule s;
  const std::uint64_t events = rng.below(12);
  for (std::uint64_t i = 0; i < events; ++i) {
    FaultEvent ev;
    ev.at_request = 1 + rng.below(total_requests + 10);  // may never fire
    ev.node = static_cast<std::uint32_t>(rng.below(nodes));
    const std::uint64_t kinds = with_root ? 6 : 2;
    switch (rng.below(kinds)) {
      case 0: ev.kind = FaultKind::kEdgeCrash; break;
      case 1: ev.kind = FaultKind::kEdgeRecover; break;
      case 2: ev.kind = FaultKind::kRootOutage; break;
      case 3: ev.kind = FaultKind::kRootRecover; break;
      case 4: ev.kind = FaultKind::kProbeDegrade; break;
      default: ev.kind = FaultKind::kProbeRestore; break;
    }
    s.events.push_back(ev);
  }
  s.max_probe_retries = static_cast<std::uint32_t>(rng.below(3));
  s.probe_timeout_rate = static_cast<double>(rng.below(101)) / 100.0;
  s.seed = rng.below(1 << 30);
  return s;
}

/// hits + misses + lost == requests, bytes likewise; per class sums match
/// the overall counters.
void expect_window_conserved(const obs::WindowSample& w,
                             const std::string& label) {
  EXPECT_LE(w.overall.hits + w.overall.lost, w.overall.requests) << label;
  EXPECT_LE(w.overall.hit_bytes + w.overall.lost_bytes,
            w.overall.requested_bytes)
      << label;
  std::uint64_t requests = 0, hits = 0, lost = 0, req_bytes = 0;
  for (const obs::WindowCounters& c : w.per_class) {
    requests += c.requests;
    hits += c.hits;
    lost += c.lost;
    req_bytes += c.requested_bytes;
    EXPECT_LE(c.hits + c.lost, c.requests) << label;
  }
  EXPECT_EQ(requests, w.overall.requests) << label;
  EXPECT_EQ(hits, w.overall.hits) << label;
  EXPECT_EQ(lost, w.overall.lost) << label;
  EXPECT_EQ(req_bytes, w.overall.requested_bytes) << label;
}

TEST(FaultProperty, RandomHierarchySchedulesConserveRequests) {
  util::Rng rng(20260807);
  for (int round = 0; round < 8; ++round) {
    const trace::Trace t = random_trace(rng);
    HierarchyConfig config;
    config.edge_count = 1 + static_cast<std::uint32_t>(rng.below(4));
    config.edge_capacity_bytes =
        t.overall_size_bytes() / (50 * config.edge_count);
    config.edge_policy = cache::policy_spec_from_name("GD*(1)");
    config.root_capacity_bytes = t.overall_size_bytes() / 12;
    config.root_policy = cache::policy_spec_from_name("GD*(packet)");
    config.sibling_cooperation = rng.below(2) == 0;

    const FaultSchedule s = random_schedule(
        rng, t.total_requests(), config.edge_count, /*with_root=*/true);
    const std::string label = "round " + std::to_string(round) + " (" +
                              std::to_string(s.events.size()) + " events)";

    obs::RecordingSink sink(1 + rng.below(2000));
    const HierarchyResult r = simulate_hierarchy(t, config, s, sink);

    // Overall conservation: lost requests are offered, never hits; every
    // hit happened at exactly one level (no double counting).
    EXPECT_LE(r.offered.hits + r.faults.lost_requests, r.offered.requests)
        << label;
    EXPECT_EQ(r.offered.hits,
              r.edge_hits.hits + r.sibling_hits.hits + r.root_hits.hits)
        << label;
    EXPECT_LE(r.faults.lost_requests, r.faults.failovers) << label;

    // Window-level conservation and roll-up equality.
    std::uint64_t lost = 0, failovers = 0, timeouts = 0, events = 0;
    const obs::MetricsSeries& series = sink.series();
    for (std::size_t i = 0; i < series.windows.size(); ++i) {
      expect_window_conserved(series.windows[i],
                              label + " window " + std::to_string(i));
      lost += series.windows[i].overall.lost;
      failovers += series.windows[i].failovers;
      timeouts += series.windows[i].probe_timeouts;
      events += series.windows[i].fault_events;
    }
    EXPECT_EQ(lost, r.faults.lost_requests) << label;
    EXPECT_EQ(failovers, r.faults.failovers) << label;
    EXPECT_EQ(timeouts, r.faults.probe_timeouts) << label;
    EXPECT_EQ(events, r.faults.events_applied) << label;

    const obs::WindowCounters totals = series.totals();
    EXPECT_EQ(totals.requests, r.offered.requests) << label;
    EXPECT_EQ(totals.hits, r.offered.hits) << label;
    EXPECT_EQ(totals.requested_bytes, r.offered.requested_bytes) << label;
    EXPECT_EQ(totals.lost, r.faults.lost_requests) << label;

    // The instrumented run is a pure observation of the uninstrumented one.
    const HierarchyResult bare = simulate_hierarchy(t, config, s);
    EXPECT_EQ(bare.offered.hits, r.offered.hits) << label;
    EXPECT_EQ(bare.faults.lost_requests, r.faults.lost_requests) << label;
    EXPECT_EQ(bare.faults.probe_timeouts, r.faults.probe_timeouts) << label;
  }
}

TEST(FaultProperty, RandomPartitionedSchedulesConserveRequests) {
  util::Rng rng(424242);
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0);
  for (int round = 0; round < 8; ++round) {
    const trace::Trace t = random_trace(rng);
    const FaultSchedule s = random_schedule(
        rng, t.total_requests(),
        static_cast<std::uint32_t>(trace::kDocumentClassCount),
        /*with_root=*/false);
    const std::string label = "round " + std::to_string(round);

    cache::PartitionedCache cache(
        cache::PartitionedCacheConfig::uniform_policy(
            t.overall_size_bytes() / 25,
            cache::policy_spec_from_name("LRU"), weights));
    obs::RecordingSink sink(1 + rng.below(2000));
    SimulatorOptions options;
    const SimResult r = simulate(t, cache, options, s, sink);

    EXPECT_EQ(r.overall.requests, r.measured_requests) << label;
    EXPECT_LE(r.overall.hits + r.faults.lost_requests, r.overall.requests)
        << label;
    std::uint64_t class_requests = 0, class_hits = 0;
    for (const HitCounters& c : r.per_class) {
      class_requests += c.requests;
      class_hits += c.hits;
    }
    EXPECT_EQ(class_requests, r.overall.requests) << label;
    EXPECT_EQ(class_hits, r.overall.hits) << label;

    const obs::MetricsSeries& series = sink.series();
    std::uint64_t lost = 0;
    for (std::size_t i = 0; i < series.windows.size(); ++i) {
      expect_window_conserved(series.windows[i],
                              label + " window " + std::to_string(i));
      lost += series.windows[i].overall.lost;
    }
    EXPECT_EQ(lost, r.faults.lost_requests) << label;
    const obs::WindowCounters totals = series.totals();
    EXPECT_EQ(totals.requests, r.overall.requests) << label;
    EXPECT_EQ(totals.hits, r.overall.hits) << label;
  }
}

TEST(FaultProperty, ResultsAreReproducible) {
  // Same trace + same schedule -> identical counters, twice over (fresh
  // caches each time): the determinism the 1-based indexing exists for.
  util::Rng rng(777);
  const trace::Trace t = random_trace(rng);
  HierarchyConfig config;
  config.edge_count = 4;
  config.edge_capacity_bytes = t.overall_size_bytes() / 200;
  config.edge_policy = cache::policy_spec_from_name("LRU");
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  config.sibling_cooperation = true;
  const FaultSchedule s =
      random_schedule(rng, t.total_requests(), 4, /*with_root=*/true);

  const HierarchyResult a = simulate_hierarchy(t, config, s);
  const HierarchyResult b = simulate_hierarchy(t, config, s);
  EXPECT_EQ(a.offered.hits, b.offered.hits);
  EXPECT_EQ(a.faults.lost_requests, b.faults.lost_requests);
  EXPECT_EQ(a.faults.probe_timeouts, b.faults.probe_timeouts);
  EXPECT_EQ(a.faults.failovers, b.faults.failovers);
  EXPECT_EQ(a.edge_evictions, b.edge_evictions);
}

}  // namespace
}  // namespace webcache::sim
