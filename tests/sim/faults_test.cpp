// Fault-injection layer: schedule parsing, the FaultRun state machine, and
// the degraded-routing semantics (failover, origin fetches, lost requests,
// recovery warm-up) over the hierarchy and the partitioned cache.
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "obs/stats_sink.hpp"
#include "sim/hierarchy.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"

namespace webcache::sim {
namespace {

// ---------------------------------------------------------- schedule text

TEST(FaultSchedule, ParsesDirectivesEventsAndComments) {
  std::istringstream in(
      "# a fault scenario\n"
      "max-probe-retries 2\n"
      "probe-timeout-rate 0.75\n"
      "seed 99\n"
      "\n"
      "500 edge-crash 0   # take down edge 0\n"
      "800 edge-recover 0\n"
      "1000 root-outage\n"
      "1200 root-recover\n"
      "600 probe-degrade 1\n"
      "700 probe-restore 1\n");
  const FaultSchedule s = parse_fault_schedule(in);
  EXPECT_EQ(s.max_probe_retries, 2u);
  EXPECT_DOUBLE_EQ(s.probe_timeout_rate, 0.75);
  EXPECT_EQ(s.seed, 99u);
  ASSERT_EQ(s.events.size(), 6u);
  EXPECT_EQ(s.events[0].at_request, 500u);
  EXPECT_EQ(s.events[0].kind, FaultKind::kEdgeCrash);
  EXPECT_EQ(s.events[0].node, 0u);
  EXPECT_EQ(s.events[2].kind, FaultKind::kRootOutage);
  EXPECT_EQ(s.events[4].kind, FaultKind::kProbeDegrade);
  EXPECT_EQ(s.events[4].node, 1u);
}

void expect_parse_error(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  try {
    parse_fault_schedule(in);
    FAIL() << "accepted: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(FaultSchedule, MalformedLinesNameLineAndReason) {
  expect_parse_error("banana\n", "line 1");
  expect_parse_error("# ok\n10 edge-crash\n", "line 2");       // missing node
  expect_parse_error("10 root-outage 3\n", "line 1");          // stray node
  expect_parse_error("0 edge-crash 1\n", "line 1");            // 1-based
  expect_parse_error("10 melt-down 1\n", "line 1");            // unknown kind
  expect_parse_error("probe-timeout-rate 1.5\n", "line 1");    // out of range
  expect_parse_error("10 edge-crash 1 extra\n", "line 1");     // trailing
}

TEST(FaultSchedule, KindKeywordsRoundTrip) {
  EXPECT_STREQ(to_string(FaultKind::kEdgeCrash), "edge-crash");
  EXPECT_STREQ(to_string(FaultKind::kEdgeRecover), "edge-recover");
  EXPECT_STREQ(to_string(FaultKind::kRootOutage), "root-outage");
  EXPECT_STREQ(to_string(FaultKind::kRootRecover), "root-recover");
  EXPECT_STREQ(to_string(FaultKind::kProbeDegrade), "probe-degrade");
  EXPECT_STREQ(to_string(FaultKind::kProbeRestore), "probe-restore");
}

TEST(FaultSchedule, MissingFileThrows) {
  EXPECT_THROW(load_fault_schedule_file("/nonexistent/faults.txt"),
               std::runtime_error);
}

// ----------------------------------------------------------- FaultRun core

FaultSchedule schedule_of(std::vector<FaultEvent> events) {
  FaultSchedule s;
  s.events = std::move(events);
  return s;
}

TEST(FaultRun, ValidatesAgainstMeshShape) {
  // Node out of range.
  EXPECT_THROW(FaultRun(schedule_of({{10, FaultKind::kEdgeCrash, 4}}), 4,
                        /*has_root=*/true),
               std::invalid_argument);
  // Root and probe events need a root (partitioned runs have neither).
  EXPECT_THROW(FaultRun(schedule_of({{10, FaultKind::kRootOutage, 0}}), 4,
                        /*has_root=*/false),
               std::invalid_argument);
  EXPECT_THROW(FaultRun(schedule_of({{10, FaultKind::kProbeDegrade, 1}}), 4,
                        /*has_root=*/false),
               std::invalid_argument);
  // 1-based request indices.
  EXPECT_THROW(FaultRun(schedule_of({{0, FaultKind::kEdgeCrash, 0}}), 4,
                        /*has_root=*/true),
               std::invalid_argument);
  EXPECT_NO_THROW(FaultRun(schedule_of({{10, FaultKind::kEdgeCrash, 3}}), 4,
                           /*has_root=*/true));
}

TEST(FaultRun, AppliesEventsInOrderAndSkipsNoOps) {
  // Crash twice (second is a no-op), recover, recover again (no-op).
  FaultSchedule s = schedule_of({{5, FaultKind::kEdgeCrash, 1},
                                 {6, FaultKind::kEdgeCrash, 1},
                                 {8, FaultKind::kEdgeRecover, 1},
                                 {9, FaultKind::kEdgeRecover, 1}});
  FaultRun run(s, 2, /*has_root=*/true);
  std::uint64_t applied = 0;
  const auto count = [&](std::uint32_t, obs::FaultEventKind) { ++applied; };
  run.advance(4, count);
  EXPECT_TRUE(run.node_up(1));
  EXPECT_EQ(run.up_nodes(), 3u);  // 2 edges + root
  run.advance(7, count);
  EXPECT_FALSE(run.node_up(1));
  EXPECT_EQ(applied, 1u);  // the repeat crash was a no-op
  EXPECT_EQ(run.up_nodes(), 2u);
  run.advance(20, count);
  EXPECT_TRUE(run.node_up(1));
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(run.total_nodes(), 3u);
}

TEST(FaultRun, SameIndexEventsKeepFileOrder) {
  // Crash + recover at the same request index: both apply, in file order,
  // so the node ends up up (but cold — the caller crashed the cache).
  FaultSchedule s = schedule_of(
      {{5, FaultKind::kEdgeCrash, 0}, {5, FaultKind::kEdgeRecover, 0}});
  FaultRun run(s, 1, /*has_root=*/true);
  std::vector<obs::FaultEventKind> seen;
  run.advance(5, [&](std::uint32_t, obs::FaultEventKind k) {
    seen.push_back(k);
  });
  EXPECT_TRUE(run.node_up(0));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], obs::FaultEventKind::kCrash);
  EXPECT_EQ(seen[1], obs::FaultEventKind::kRecovery);
}

TEST(FaultRun, ProbeTimeoutsAreDeterministicAndRateShaped) {
  FaultSchedule s;
  s.probe_timeout_rate = 1.0;
  FaultRun always(s, 2, true);
  EXPECT_TRUE(always.probe_times_out(1, 0, 0));
  s.probe_timeout_rate = 0.0;
  FaultRun never(s, 2, true);
  EXPECT_FALSE(never.probe_times_out(1, 0, 0));

  s.probe_timeout_rate = 0.5;
  s.seed = 7;
  FaultRun half(s, 2, true);
  FaultRun half_again(s, 2, true);
  std::uint64_t timeouts = 0;
  for (std::uint64_t i = 1; i <= 4000; ++i) {
    const bool t = half.probe_times_out(i, 1, 0);
    EXPECT_EQ(t, half_again.probe_times_out(i, 1, 0));  // pure function
    timeouts += t ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(timeouts), 2000.0, 150.0);
}

// ------------------------------------------------------ hierarchy routing

trace::Trace small_trace() {
  synth::GeneratorOptions gen;
  gen.seed = 5;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.005),
                               gen)
      .generate();
}

HierarchyConfig basic_config(const trace::Trace& t) {
  HierarchyConfig config;
  config.edge_count = 4;
  config.edge_capacity_bytes = t.overall_size_bytes() / 100;
  config.edge_policy = cache::policy_spec_from_name("GD*(1)");
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  return config;
}

TEST(HierarchyFaults, EdgeCrashFailsOverToRoot) {
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const HierarchyResult baseline = simulate_hierarchy(t, config);

  FaultSchedule s =
      schedule_of({{t.total_requests() / 2, FaultKind::kEdgeCrash, 0}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);

  EXPECT_EQ(r.faults.events_applied, 1u);
  EXPECT_GT(r.faults.failovers, 0u);
  EXPECT_EQ(r.faults.lost_requests, 0u);  // root stays up
  EXPECT_EQ(r.faults.origin_fetches, 0u);
  // The offered stream is unchanged; the dead edge's share moves to the
  // root, so the root sees strictly more traffic than in the fault-free run.
  EXPECT_EQ(r.offered.requests, baseline.offered.requests);
  EXPECT_GT(r.root_requests, baseline.root_requests);
  EXPECT_LT(r.edge_hits.hits, baseline.edge_hits.hits);
}

TEST(HierarchyFaults, RootOutageServesFromOriginAndWarmsEdges) {
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);

  FaultSchedule s =
      schedule_of({{t.total_requests() / 2, FaultKind::kRootOutage, 0}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);

  EXPECT_GT(r.faults.origin_fetches, 0u);
  EXPECT_EQ(r.faults.lost_requests, 0u);  // edges all up
  // Origin fetches still warm the edge, so the edges keep producing hits
  // after the outage begins.
  EXPECT_GT(r.edge_hits.hits, 0u);
  const HierarchyResult baseline = simulate_hierarchy(t, config);
  EXPECT_EQ(r.offered.requests, baseline.offered.requests);
  EXPECT_LT(r.root_hits.hits, baseline.root_hits.hits);
}

TEST(HierarchyFaults, DoubleFaultLosesRequests) {
  // Satellite: edge AND root down — the dead edge's clients have nowhere
  // to go (no mesh), so their requests are lost; everyone else is served.
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const std::uint64_t mid = t.total_requests() / 2;
  FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, 0},
                                 {mid, FaultKind::kRootOutage, 0}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);

  EXPECT_GT(r.faults.lost_requests, 0u);
  EXPECT_GT(r.faults.lost_bytes, 0u);
  EXPECT_GT(r.faults.origin_fetches, 0u);  // the live edges' misses
  // Lost requests are offered but never hits.
  const HierarchyResult baseline = simulate_hierarchy(t, config);
  EXPECT_EQ(r.offered.requests, baseline.offered.requests);
  EXPECT_LE(r.offered.hits + r.faults.lost_requests, r.offered.requests);
}

TEST(HierarchyFaults, AllEdgesDownRoutesEverythingToRoot) {
  // Satellite: every edge down at once, root up — nothing is lost, every
  // measured request is a failover, the edge level never answers again.
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  FaultSchedule s = schedule_of({{1, FaultKind::kEdgeCrash, 0},
                                 {1, FaultKind::kEdgeCrash, 1},
                                 {1, FaultKind::kEdgeCrash, 2},
                                 {1, FaultKind::kEdgeCrash, 3}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);
  EXPECT_EQ(r.faults.lost_requests, 0u);
  EXPECT_EQ(r.faults.failovers, r.offered.requests);
  EXPECT_EQ(r.edge_hits.hits, 0u);
  EXPECT_EQ(r.root_requests, r.offered.requests);
}

TEST(HierarchyFaults, TotalOutageLosesEveryRequest) {
  // Satellite: all edges and the root down from request 1 — a total mesh
  // outage. Every measured request is lost, none is a hit.
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  FaultSchedule s = schedule_of({{1, FaultKind::kEdgeCrash, 0},
                                 {1, FaultKind::kEdgeCrash, 1},
                                 {1, FaultKind::kEdgeCrash, 2},
                                 {1, FaultKind::kEdgeCrash, 3},
                                 {1, FaultKind::kRootOutage, 0}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);
  EXPECT_EQ(r.faults.lost_requests, r.offered.requests);
  EXPECT_EQ(r.offered.hits, 0u);
  EXPECT_EQ(r.edge_hits.hits + r.sibling_hits.hits + r.root_hits.hits, 0u);
  EXPECT_EQ(r.faults.lost_bytes, r.offered.requested_bytes);
}

TEST(HierarchyFaults, SingleEdgeHierarchyFailsOverStraightToRoot) {
  // Satellite: a 1-edge hierarchy has no siblings — an edge crash must go
  // straight to the root (and to lost when the root is down too), without
  // touching the (empty) sibling scan.
  const trace::Trace t = small_trace();
  HierarchyConfig config = basic_config(t);
  config.edge_count = 1;
  config.sibling_cooperation = true;  // cooperation with no siblings

  FaultSchedule s = schedule_of({{1, FaultKind::kEdgeCrash, 0}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);
  EXPECT_EQ(r.faults.lost_requests, 0u);
  EXPECT_EQ(r.edge_hits.hits, 0u);
  EXPECT_EQ(r.sibling_hits.hits, 0u);
  EXPECT_EQ(r.root_requests, r.offered.requests);

  s.events.push_back({1, FaultKind::kRootOutage, 0});
  const HierarchyResult dark = simulate_hierarchy(t, config, s);
  EXPECT_EQ(dark.faults.lost_requests, dark.offered.requests);
}

TEST(HierarchyFaults, CrashAndRecoveryInSameWindowRestartsCold) {
  // Satellite: crash + recover at the same request index — the node stays
  // routable but restarts cold, so it produces fewer edge hits than the
  // fault-free run and no requests are lost or failed over.
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const std::uint64_t mid = t.total_requests() / 2;
  FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, 0},
                                 {mid, FaultKind::kEdgeRecover, 0}});
  const HierarchyResult r = simulate_hierarchy(t, config, s);
  const HierarchyResult baseline = simulate_hierarchy(t, config);
  EXPECT_EQ(r.faults.events_applied, 2u);
  EXPECT_EQ(r.faults.failovers, 0u);
  EXPECT_EQ(r.faults.lost_requests, 0u);
  EXPECT_LT(r.edge_hits.hits, baseline.edge_hits.hits);
  EXPECT_EQ(r.offered.requests, baseline.offered.requests);
}

TEST(HierarchyFaults, MeshFailoverPrefersSiblingsOverRoot) {
  const trace::Trace t = small_trace();
  HierarchyConfig mesh = basic_config(t);
  mesh.sibling_cooperation = true;
  const std::uint64_t mid = t.total_requests() / 2;
  const FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, 0}});

  const HierarchyResult with_mesh = simulate_hierarchy(t, mesh, s);
  HierarchyConfig solo = mesh;
  solo.sibling_cooperation = false;
  const HierarchyResult without = simulate_hierarchy(t, solo, s);

  // A sibling copy serves some of the dead edge's requests, keeping them
  // away from the root.
  EXPECT_GT(with_mesh.sibling_hits.hits, 0u);
  EXPECT_LT(with_mesh.root_requests, without.root_requests);
  EXPECT_EQ(with_mesh.faults.lost_requests, 0u);
}

TEST(HierarchyFaults, DegradedSiblingTimesOutWithBoundedRetry) {
  const trace::Trace t = small_trace();
  HierarchyConfig mesh = basic_config(t);
  mesh.sibling_cooperation = true;

  // All probes to edge 1 time out: its copies become unreachable to
  // siblings, each probe costing 1 + max_probe_retries attempts.
  FaultSchedule s = schedule_of({{1, FaultKind::kProbeDegrade, 1}});
  s.probe_timeout_rate = 1.0;
  s.max_probe_retries = 2;
  const HierarchyResult r = simulate_hierarchy(t, mesh, s);
  EXPECT_GT(r.faults.probe_timeouts, 0u);
  EXPECT_EQ(r.faults.probe_timeouts % 3, 0u);  // 3 attempts per probe

  // With the probe path restored at request 2, only the very first request
  // can still time out (its sibling caches are empty anyway), and the
  // sibling-hit stream matches the fault-free mesh exactly.
  s.events.push_back({2, FaultKind::kProbeRestore, 1});
  const HierarchyResult healed = simulate_hierarchy(t, mesh, s);
  const HierarchyResult baseline = simulate_hierarchy(t, mesh);
  EXPECT_LE(healed.faults.probe_timeouts, 3u);
  EXPECT_EQ(healed.sibling_hits.hits, baseline.sibling_hits.hits);
}

TEST(HierarchyFaults, InstrumentedRunMatchesUninstrumented) {
  const trace::Trace t = small_trace();
  HierarchyConfig config = basic_config(t);
  config.sibling_cooperation = true;
  const std::uint64_t mid = t.total_requests() / 2;
  FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, 0},
                                 {mid + 50, FaultKind::kRootOutage, 0},
                                 {mid + 200, FaultKind::kEdgeRecover, 0},
                                 {mid + 400, FaultKind::kRootRecover, 0}});

  const HierarchyResult plain = simulate_hierarchy(t, config, s);
  obs::RecordingSink sink(500);
  const HierarchyResult observed = simulate_hierarchy(t, config, s, sink);

  EXPECT_EQ(plain.offered.requests, observed.offered.requests);
  EXPECT_EQ(plain.offered.hits, observed.offered.hits);
  EXPECT_EQ(plain.edge_hits.hits, observed.edge_hits.hits);
  EXPECT_EQ(plain.root_hits.hits, observed.root_hits.hits);
  EXPECT_EQ(plain.faults.failovers, observed.faults.failovers);
  EXPECT_EQ(plain.faults.lost_requests, observed.faults.lost_requests);
  EXPECT_EQ(plain.faults.origin_fetches, observed.faults.origin_fetches);
  EXPECT_EQ(plain.faults.events_applied, observed.faults.events_applied);
}

TEST(HierarchyFaults, SinkRecordsAvailabilityLossesAndWarmup) {
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const std::uint64_t mid = t.total_requests() / 2;
  FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, 0},
                                 {mid, FaultKind::kRootOutage, 0},
                                 {mid + 500, FaultKind::kEdgeRecover, 0},
                                 {mid + 500, FaultKind::kRootRecover, 0}});

  obs::RecordingSink sink(400);
  const HierarchyResult r = simulate_hierarchy(t, config, s, sink);
  const obs::MetricsSeries& series = sink.series();

  // Mesh shape: 4 edges + root.
  EXPECT_EQ(series.fault_nodes, 5u);

  // Availability is defined in every window, dips below 1 during the double
  // fault, and is 1.0 before the first event.
  bool saw_degraded = false;
  for (const obs::WindowSample& w : series.windows) {
    const auto avail = w.availability(series.fault_nodes);
    ASSERT_TRUE(avail.has_value());
    EXPECT_GE(*avail, 0.0);
    EXPECT_LE(*avail, 1.0);
    if (*avail < 1.0) saw_degraded = true;
  }
  EXPECT_TRUE(saw_degraded);
  ASSERT_FALSE(series.windows.empty());
  EXPECT_DOUBLE_EQ(
      series.windows.front().availability(series.fault_nodes).value(), 1.0);

  // Roll-ups tie the series to the aggregate fault counters.
  std::uint64_t lost = 0, failovers = 0, events = 0;
  for (const obs::WindowSample& w : series.windows) {
    lost += w.overall.lost;
    failovers += w.failovers;
    events += w.fault_events;
  }
  EXPECT_EQ(lost, r.faults.lost_requests);
  EXPECT_EQ(failovers, r.faults.failovers);
  EXPECT_EQ(events, r.faults.events_applied);

  // Both recovered nodes produced a warm-up curve starting at the recovery
  // index, with hit rates that are proper fractions.
  ASSERT_EQ(series.warmup_curves.size(), 2u);
  bool saw_edge = false, saw_root = false;
  for (const obs::WarmupCurve& curve : series.warmup_curves) {
    if (curve.node == obs::kRootNode) saw_root = true;
    if (curve.node == 0) saw_edge = true;
    EXPECT_EQ(curve.recovered_at, mid + 500);
    EXPECT_FALSE(curve.windows.empty());
    for (const obs::WarmupWindow& w : curve.windows) {
      EXPECT_LE(w.overall.hits, w.overall.requests);
    }
  }
  EXPECT_TRUE(saw_edge);
  EXPECT_TRUE(saw_root);
}

TEST(HierarchyFaults, WarmupCurveShowsColdStartTransient) {
  // The recovered node's first warm-up window must be colder than its last:
  // the cold-start transient the curves exist to show.
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const std::uint64_t early = t.total_requests() / 4;
  FaultSchedule s = schedule_of({{early, FaultKind::kEdgeCrash, 0},
                                 {early + 1, FaultKind::kEdgeRecover, 0}});
  obs::RecordingSink sink(200);
  simulate_hierarchy(t, config, s, sink);
  const auto& curves = sink.series().warmup_curves;
  ASSERT_EQ(curves.size(), 1u);
  ASSERT_GE(curves[0].windows.size(), 2u);
  // The first window after the cold restart is colder than the node's best
  // later window (the final window may be partial, so compare to the max).
  double best_later = 0.0;
  for (std::size_t i = 1; i < curves[0].windows.size(); ++i) {
    best_later = std::max(best_later, curves[0].windows[i].overall.hit_rate());
  }
  EXPECT_LT(curves[0].windows.front().overall.hit_rate(), best_later);
}

// ------------------------------------------------------------- partitioned

cache::PartitionedCache fresh_partitioned(const trace::Trace& t) {
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0);
  return cache::PartitionedCache(cache::PartitionedCacheConfig::uniform_policy(
      t.overall_size_bytes() / 25, cache::policy_spec_from_name("LRU"),
      weights));
}

TEST(PartitionedFaults, DownPartitionLosesItsClassOnly) {
  const trace::Trace t = small_trace();
  SimulatorOptions options;

  FaultSchedule s = schedule_of(
      {{1, FaultKind::kEdgeCrash,
        static_cast<std::uint32_t>(trace::DocumentClass::kImage)}});
  cache::PartitionedCache cache = fresh_partitioned(t);
  const SimResult r = simulate(t, cache, options, s);

  const HitCounters& images = r.of(trace::DocumentClass::kImage);
  EXPECT_GT(images.requests, 0u);
  EXPECT_EQ(images.hits, 0u);
  EXPECT_EQ(r.faults.lost_requests, images.requests);
  EXPECT_EQ(r.faults.lost_bytes, images.requested_bytes);
  // A single box has no failover path.
  EXPECT_EQ(r.faults.failovers, 0u);
  // The other classes are unaffected.
  EXPECT_GT(r.of(trace::DocumentClass::kHtml).hits, 0u);
  // The per-class stream still partitions the overall stream.
  std::uint64_t class_requests = 0;
  for (const HitCounters& c : r.per_class) class_requests += c.requests;
  EXPECT_EQ(class_requests, r.overall.requests);
}

TEST(PartitionedFaults, RecoveredPartitionServesAgain) {
  const trace::Trace t = small_trace();
  SimulatorOptions options;
  const std::uint32_t image =
      static_cast<std::uint32_t>(trace::DocumentClass::kImage);
  const std::uint64_t mid = t.total_requests() / 2;
  FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, image},
                                 {mid + 200, FaultKind::kEdgeRecover, image}});
  cache::PartitionedCache cache = fresh_partitioned(t);
  const SimResult r = simulate(t, cache, options, s);

  EXPECT_GT(r.faults.lost_requests, 0u);
  // After recovery the partition produces hits again, so it cannot have
  // lost every image request past the crash.
  const HitCounters& images = r.of(trace::DocumentClass::kImage);
  EXPECT_GT(images.hits, 0u);
  EXPECT_LT(r.faults.lost_requests, images.requests);
}

TEST(PartitionedFaults, RootAndProbeEventsRejected) {
  const trace::Trace t = small_trace();
  SimulatorOptions options;
  cache::PartitionedCache cache = fresh_partitioned(t);
  EXPECT_THROW(simulate(t, cache, options,
                        schedule_of({{10, FaultKind::kRootOutage, 0}})),
               std::invalid_argument);
  EXPECT_THROW(simulate(t, cache, options,
                        schedule_of({{10, FaultKind::kProbeDegrade, 0}})),
               std::invalid_argument);
}

TEST(PartitionedFaults, LostRequestsExcludedFromLatency) {
  // Lost requests fetch nothing, so they must not contribute origin-fetch
  // latency: losing a partition can only lower the total incurred latency.
  const trace::Trace t = small_trace();
  SimulatorOptions options;
  cache::PartitionedCache plain_cache = fresh_partitioned(t);
  const SimResult plain = simulate(t, plain_cache, options);

  FaultSchedule s = schedule_of(
      {{1, FaultKind::kEdgeCrash,
        static_cast<std::uint32_t>(trace::DocumentClass::kImage)}});
  cache::PartitionedCache faulted_cache = fresh_partitioned(t);
  const SimResult faulted = simulate(t, faulted_cache, options, s);
  EXPECT_LT(faulted.miss_latency_ms, plain.miss_latency_ms);
  // The all-miss baseline shrinks by exactly the lost class too: a lost
  // request would not have been fetched even by a cacheless proxy.
  EXPECT_LT(faulted.all_miss_latency_ms, plain.all_miss_latency_ms);
}

TEST(PartitionedFaults, SinkSeriesConservesAndRollsUp) {
  const trace::Trace t = small_trace();
  SimulatorOptions options;
  const std::uint32_t image =
      static_cast<std::uint32_t>(trace::DocumentClass::kImage);
  const std::uint64_t mid = t.total_requests() / 2;
  FaultSchedule s = schedule_of({{mid, FaultKind::kEdgeCrash, image},
                                 {mid + 300, FaultKind::kEdgeRecover, image}});

  obs::RecordingSink sink(500);
  cache::PartitionedCache cache = fresh_partitioned(t);
  const SimResult r = simulate(t, cache, options, s, sink);

  const obs::WindowCounters totals = sink.series().totals();
  EXPECT_EQ(totals.requests, r.overall.requests);
  EXPECT_EQ(totals.hits, r.overall.hits);
  EXPECT_EQ(totals.lost, r.faults.lost_requests);
  EXPECT_EQ(sink.series().fault_nodes, trace::kDocumentClassCount);
  // hits + misses + lost == requests in every window.
  for (const obs::WindowSample& w : sink.series().windows) {
    EXPECT_LE(w.overall.hits + w.overall.lost, w.overall.requests);
  }
  // The recovered partition carries a warm-up curve.
  ASSERT_EQ(sink.series().warmup_curves.size(), 1u);
  EXPECT_EQ(sink.series().warmup_curves[0].node, image);
}

}  // namespace
}  // namespace webcache::sim
