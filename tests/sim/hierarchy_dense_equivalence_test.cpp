// The hierarchy's dense-id fast path must be a pure representation change:
// replaying the same trace through dense-reserved edge/root caches has to
// yield bit-identical HierarchyResults to the hash-backed path, across the
// paper's policies, both cost models, edge counts, and the sibling mesh.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "sim/hierarchy.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::sim {
namespace {

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const HierarchyResult& sparse,
                      const HierarchyResult& dense,
                      const std::string& label) {
  expect_identical_counters(sparse.offered, dense.offered, label + " offered");
  expect_identical_counters(sparse.edge_hits, dense.edge_hits,
                            label + " edge");
  expect_identical_counters(sparse.sibling_hits, dense.sibling_hits,
                            label + " sibling");
  expect_identical_counters(sparse.root_hits, dense.root_hits,
                            label + " root");
  for (std::size_t c = 0; c < sparse.edge_per_class.size(); ++c) {
    expect_identical_counters(sparse.edge_per_class[c],
                              dense.edge_per_class[c],
                              label + " edge class " + std::to_string(c));
    expect_identical_counters(sparse.root_per_class[c],
                              dense.root_per_class[c],
                              label + " root class " + std::to_string(c));
  }
  EXPECT_EQ(sparse.root_requests, dense.root_requests) << label;
  EXPECT_EQ(sparse.edge_evictions, dense.edge_evictions) << label;
  EXPECT_EQ(sparse.root_evictions, dense.root_evictions) << label;
}

trace::Trace recorded_trace() {
  synth::GeneratorOptions gen;
  gen.seed = 5;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002),
                               gen)
      .generate();
}

HierarchyConfig config_for(const trace::Trace& t,
                           const cache::PolicySpec& policy,
                           std::uint32_t edges, bool sibling) {
  HierarchyConfig config;
  config.edge_count = edges;
  config.edge_capacity_bytes = t.overall_size_bytes() / (50 * edges);
  config.edge_policy = policy;
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  config.root_policy = policy;
  config.sibling_cooperation = sibling;
  return config;
}

TEST(HierarchyDenseEquivalence, PaperPolicyMatrix) {
  // All four paper policies x both cost models x edge counts {1, 4} x
  // sibling cooperation on/off: the full configuration matrix the paper's
  // two proxy levels span.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);

  std::vector<cache::PolicySpec> specs =
      cache::paper_policy_set(cache::CostModelKind::kConstant);
  for (const cache::PolicySpec& spec :
       cache::paper_policy_set(cache::CostModelKind::kPacket)) {
    specs.push_back(spec);
  }

  std::size_t spec_index = 0;
  for (const cache::PolicySpec& spec : specs) {
    ++spec_index;
    for (const std::uint32_t edges : {1u, 4u}) {
      for (const bool sibling : {false, true}) {
        const HierarchyConfig config =
            config_for(sparse, spec, edges, sibling);
        const HierarchyResult a = simulate_hierarchy(sparse, config);
        const HierarchyResult b = simulate_hierarchy(dense, config);
        expect_identical(a, b,
                         "spec " + std::to_string(spec_index) + " edges " +
                             std::to_string(edges) +
                             (sibling ? " sibling" : ""));
      }
    }
  }
}

TEST(HierarchyDenseEquivalence, ModificationRulesMatch) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(packet)");

  for (const ModificationRule rule :
       {ModificationRule::kThreshold, ModificationRule::kAnyChange,
        ModificationRule::kNever}) {
    HierarchyConfig config = config_for(sparse, spec, 4, /*sibling=*/true);
    config.simulator.modification_rule = rule;
    const HierarchyResult a = simulate_hierarchy(sparse, config);
    const HierarchyResult b = simulate_hierarchy(dense, config);
    expect_identical(a, b, "rule " + std::to_string(static_cast<int>(rule)));
  }
}

TEST(HierarchyDenseEquivalence, ReplicationToggleMatches) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  HierarchyConfig config = config_for(
      sparse, cache::policy_spec_from_name("LRU"), 4, /*sibling=*/true);
  config.replicate_on_sibling_hit = false;
  expect_identical(simulate_hierarchy(sparse, config),
                   simulate_hierarchy(dense, config), "no-replicate");
}

TEST(HierarchyDenseEquivalence, DenseTraceRoundTripsForClientAttachment) {
  // densify() renumbers documents but must leave client ids untouched and
  // keep the original-id table exact, so a dense replay attaches every
  // request to the same edge and results can be mapped back to URL hashes.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);

  ASSERT_EQ(sparse.requests.size(), dense.trace.requests.size());
  for (std::size_t i = 0; i < sparse.requests.size(); ++i) {
    const trace::Request& s = sparse.requests[i];
    const trace::Request& d = dense.trace.requests[i];
    ASSERT_EQ(s.client, d.client) << "request " << i;
    ASSERT_EQ(s.document, dense.original_id(d.document)) << "request " << i;
    ASSERT_EQ(edge_for_client(s.client, 4), edge_for_client(d.client, 4))
        << "request " << i;
  }
}

TEST(HierarchyDenseEquivalence, DenseOverloadValidatesConfig) {
  const trace::DenseTrace dense = trace::densify(recorded_trace());
  HierarchyConfig config = config_for(
      dense.trace, cache::policy_spec_from_name("LRU"), 4, false);
  config.edge_count = 0;
  EXPECT_THROW(simulate_hierarchy(dense, config), std::invalid_argument);
  config = config_for(dense.trace, cache::policy_spec_from_name("LRU"), 4,
                      false);
  config.simulator.warmup_fraction = 1.5;
  EXPECT_THROW(simulate_hierarchy(dense, config), std::invalid_argument);
}

}  // namespace
}  // namespace webcache::sim
