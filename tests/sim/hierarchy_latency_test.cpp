// Latency accounting for the hierarchy: requests served at the edge level
// (own edge or sibling) are free, rerouted fetches pay the simulator's
// fetch-latency model, and every timed-out sibling probe on a request's
// path is charged HierarchyConfig::probe_rtt_ms. A schedule whose probes
// never time out must make the probe-RTT knob invisible — bit-identical
// latency doubles whatever its value.
#include <gtest/gtest.h>

#include <string>

#include "cache/factory.hpp"
#include "sim/faults.hpp"
#include "sim/hierarchy.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request.hpp"

namespace webcache::sim {
namespace {

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

HierarchyConfig base_config(const trace::Trace& t) {
  HierarchyConfig config;
  config.edge_count = 2;
  config.edge_policy = cache::policy_spec_from_name("LRU");
  config.edge_capacity_bytes = t.overall_size_bytes() / 200;
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  return config;
}

TEST(HierarchyLatency, FaultFreeAccountingIsConsistent) {
  const trace::Trace t = recorded_trace();
  const HierarchyConfig config = base_config(t);
  const HierarchyResult r = simulate_hierarchy(t, config);

  EXPECT_GT(r.all_miss_latency_ms, 0.0);
  EXPECT_GT(r.miss_latency_ms, 0.0);  // cold misses always pay
  // Edge service is free, so incurred latency can never exceed the
  // cacheless bound; with any edge hits at all it is strictly below it.
  EXPECT_LT(r.miss_latency_ms, r.all_miss_latency_ms);
  EXPECT_GT(r.latency_savings(), 0.0);
  EXPECT_LE(r.latency_savings(), 1.0);
}

TEST(HierarchyLatency, ProbeRttKnobInertWithoutFaults) {
  const trace::Trace t = recorded_trace();
  HierarchyConfig config = base_config(t);
  config.sibling_cooperation = true;
  const HierarchyResult baseline = simulate_hierarchy(t, config);

  config.probe_rtt_ms = 7.25;  // no schedule: no probes can time out
  const HierarchyResult charged = simulate_hierarchy(t, config);
  EXPECT_EQ(baseline.miss_latency_ms, charged.miss_latency_ms);
  EXPECT_EQ(baseline.all_miss_latency_ms, charged.all_miss_latency_ms);
}

TEST(HierarchyLatency, ZeroTimeoutScheduleIsBitIdenticalAcrossRtt) {
  const trace::Trace t = recorded_trace();
  HierarchyConfig config = base_config(t);
  config.sibling_cooperation = true;

  // Real outage churn, but a probe-timeout rate of zero: the degraded
  // window never times a probe out, so the RTT charge never applies.
  FaultSchedule schedule;
  schedule.events = {{50, FaultKind::kEdgeCrash, 0},
                     {400, FaultKind::kEdgeRecover, 0},
                     {600, FaultKind::kProbeDegrade, 1},
                     {2000, FaultKind::kProbeRestore, 1},
                     {2500, FaultKind::kRootOutage, 0},
                     {3000, FaultKind::kRootRecover, 0}};
  schedule.probe_timeout_rate = 0.0;
  schedule.seed = 11;

  const HierarchyResult baseline = simulate_hierarchy(t, config, schedule);
  EXPECT_EQ(baseline.faults.probe_timeouts, 0u);

  config.probe_rtt_ms = 9.5;
  const HierarchyResult charged = simulate_hierarchy(t, config, schedule);
  EXPECT_EQ(baseline.miss_latency_ms, charged.miss_latency_ms);
  EXPECT_EQ(baseline.all_miss_latency_ms, charged.all_miss_latency_ms);
  EXPECT_EQ(baseline.combined_hit_rate(), charged.combined_hit_rate());
}

TEST(HierarchyLatency, TimedOutProbesChargeExactlyRttEach) {
  const trace::Trace t = recorded_trace();
  HierarchyConfig config = base_config(t);
  config.sibling_cooperation = true;
  // No warm-up: every request is measured, so every timed-out probe on the
  // path of a measured request is charged and the identity below is exact.
  config.simulator.warmup_fraction = 0.0;

  // Only probe degradation — all nodes stay up, so no request is ever lost
  // and probe_timeouts counts exactly the charged attempts.
  FaultSchedule schedule;
  schedule.events = {{1, FaultKind::kProbeDegrade, 1},
                     {t.total_requests() / 2, FaultKind::kProbeRestore, 1}};
  schedule.probe_timeout_rate = 1.0;  // degraded probes always time out
  schedule.max_probe_retries = 2;
  schedule.seed = 3;

  const HierarchyResult uncharged = simulate_hierarchy(t, config, schedule);
  ASSERT_GT(uncharged.faults.probe_timeouts, 0u);

  const double rtt = 5.0;
  config.probe_rtt_ms = rtt;
  const HierarchyResult charged = simulate_hierarchy(t, config, schedule);

  // Routing is independent of the RTT charge: same probes, same hits.
  EXPECT_EQ(charged.faults.probe_timeouts, uncharged.faults.probe_timeouts);
  EXPECT_EQ(charged.combined_hit_rate(), uncharged.combined_hit_rate());
  EXPECT_EQ(charged.all_miss_latency_ms, uncharged.all_miss_latency_ms);
  // The charged run interleaves RTT terms with fetch latencies, so the
  // summation order differs from adding the total at the end — compare up
  // to accumulated rounding, not bitwise.
  const double expected =
      uncharged.miss_latency_ms +
      rtt * static_cast<double>(charged.faults.probe_timeouts);
  EXPECT_NEAR(charged.miss_latency_ms, expected, 1e-6 * expected);
}

TEST(HierarchyLatency, DenseAndSparseLatencyBitIdentical) {
  const trace::Trace t = recorded_trace();
  HierarchyConfig config = base_config(t);
  config.sibling_cooperation = true;
  config.probe_rtt_ms = 4.0;

  FaultSchedule schedule;
  schedule.events = {{1, FaultKind::kProbeDegrade, 1},
                     {4000, FaultKind::kProbeRestore, 1}};
  schedule.probe_timeout_rate = 0.75;
  schedule.seed = 21;

  const HierarchyResult sparse = simulate_hierarchy(t, config, schedule);
  const trace::DenseTrace dense = trace::densify(t);
  const HierarchyResult densified = simulate_hierarchy(dense, config, schedule);
  EXPECT_EQ(sparse.miss_latency_ms, densified.miss_latency_ms);
  EXPECT_EQ(sparse.all_miss_latency_ms, densified.all_miss_latency_ms);
  EXPECT_EQ(sparse.faults.probe_timeouts, densified.faults.probe_timeouts);
}

}  // namespace
}  // namespace webcache::sim
