#include "sim/hierarchy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "synth/generator.hpp"

namespace webcache::sim {
namespace {

trace::Trace small_trace() {
  synth::GeneratorOptions gen;
  gen.seed = 5;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.005),
                               gen)
      .generate();
}

HierarchyConfig basic_config(const trace::Trace& t) {
  HierarchyConfig config;
  config.edge_count = 4;
  config.edge_capacity_bytes = t.overall_size_bytes() / 100;
  config.edge_policy = cache::policy_spec_from_name("GD*(1)");
  config.root_capacity_bytes = t.overall_size_bytes() / 12;
  config.root_policy = cache::policy_spec_from_name("GD*(packet)");
  return config;
}

TEST(Hierarchy, RejectsInvalidConfig) {
  const trace::Trace t = small_trace();
  HierarchyConfig config = basic_config(t);
  config.edge_count = 0;
  EXPECT_THROW(simulate_hierarchy(t, config), std::invalid_argument);
  config = basic_config(t);
  config.simulator.warmup_fraction = 1.5;
  EXPECT_THROW(simulate_hierarchy(t, config), std::invalid_argument);
}

TEST(Hierarchy, ClientsStickToTheirEdge) {
  // All requests of one client must land on one edge (synthetic traces
  // carry client ids).
  for (std::uint32_t client = 1; client < 200; ++client) {
    const auto e = edge_for_client(client, 4);
    ASSERT_LT(e, 4u);
    EXPECT_EQ(e, edge_for_client(client, 4));
  }
}

TEST(Hierarchy, ClientRoutingChangesEdgeLoads) {
  // Zipf-skewed clients: with client routing, the edge serving the heavy
  // browsers processes visibly more requests than under uniform mixing.
  const trace::Trace t = small_trace();
  std::array<std::uint64_t, 4> per_edge{};
  std::uint64_t index = 0;
  for (const auto& r : t.requests) {
    ++index;
    ASSERT_NE(r.client, 0u);
    ++per_edge[edge_for_client(r.client, 4)];
  }
  std::uint64_t max_load = 0, min_load = ~0ULL;
  for (const auto c : per_edge) {
    max_load = std::max(max_load, c);
    min_load = std::min(min_load, c);
  }
  EXPECT_GT(max_load, min_load);  // skew visible
  EXPECT_GT(min_load, 0u);        // but every edge sees traffic
}

TEST(Hierarchy, EdgeAssignmentDeterministicAndBalanced) {
  std::array<std::uint64_t, 4> counts{};
  for (std::uint64_t i = 0; i < 100000; ++i) {
    const auto e = edge_for_request(i, 4);
    ASSERT_LT(e, 4u);
    EXPECT_EQ(e, edge_for_request(i, 4));
    ++counts[e];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 25000.0, 1000.0);
  }
}

TEST(Hierarchy, AccountingIsClosed) {
  const trace::Trace t = small_trace();
  const HierarchyResult r = simulate_hierarchy(t, basic_config(t));
  // Every measured request is offered; edge misses = root requests.
  EXPECT_EQ(r.offered.requests, r.edge_hits.requests);
  EXPECT_EQ(r.root_requests, r.offered.requests - r.edge_hits.hits);
  EXPECT_EQ(r.root_hits.requests, r.root_requests);
  // Combined = edge + root, and all rates are proper fractions.
  EXPECT_NEAR(r.combined_hit_rate(),
              r.edge_hit_rate() +
                  static_cast<double>(r.root_hits.hits) /
                      static_cast<double>(r.offered.requests),
              1e-12);
  EXPECT_LE(r.combined_hit_rate(), 1.0);
  EXPECT_LE(r.combined_byte_hit_rate(), 1.0);
  EXPECT_NEAR(r.origin_traffic_fraction(), 1.0 - r.combined_byte_hit_rate(),
              1e-12);
  // Per-class counters partition the offered stream.
  std::uint64_t edge_class_requests = 0;
  for (const auto& c : r.edge_per_class) edge_class_requests += c.requests;
  EXPECT_EQ(edge_class_requests, r.offered.requests);
}

TEST(Hierarchy, RootSeesFilteredStream) {
  // The root's hit rate on forwarded misses is lower than a same-size
  // single cache's hit rate on the raw stream: the edges strip the easy
  // re-references (the filtering effect of cache hierarchies).
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const HierarchyResult hier = simulate_hierarchy(t, config);
  const SimResult solo =
      simulate(t, config.root_capacity_bytes, config.root_policy, {});
  EXPECT_LT(hier.root_hit_rate(), solo.overall.hit_rate());
  EXPECT_GT(hier.root_requests, 0u);
}

TEST(Hierarchy, CombinedBeatsEdgesAlone) {
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const HierarchyResult r = simulate_hierarchy(t, config);
  EXPECT_GT(r.combined_hit_rate(), r.edge_hit_rate());
  EXPECT_GT(r.combined_byte_hit_rate(), r.edge_byte_hit_rate());
}

TEST(Hierarchy, MoreEdgesDiluteEdgeLocality) {
  // Splitting the same total edge capacity across more proxies replicates
  // hot documents and fragments the working set: the edge hit rate drops.
  const trace::Trace t = small_trace();
  HierarchyConfig few = basic_config(t);
  few.edge_count = 2;
  few.edge_capacity_bytes = t.overall_size_bytes() / 50;  // total /25
  HierarchyConfig many = basic_config(t);
  many.edge_count = 16;
  many.edge_capacity_bytes = t.overall_size_bytes() / 400;  // same total
  const HierarchyResult few_r = simulate_hierarchy(t, few);
  const HierarchyResult many_r = simulate_hierarchy(t, many);
  EXPECT_GT(few_r.edge_hit_rate(), many_r.edge_hit_rate());
}

TEST(Hierarchy, SiblingCooperationReducesOriginTraffic) {
  // The DFN-mesh configuration: an edge miss served by a sibling neither
  // reaches the root nor the origin, so combined hit rate rises and origin
  // traffic falls (or at worst stays equal) versus the strict hierarchy.
  const trace::Trace t = small_trace();
  HierarchyConfig solo = basic_config(t);
  HierarchyConfig mesh = basic_config(t);
  mesh.sibling_cooperation = true;
  const HierarchyResult solo_r = simulate_hierarchy(t, solo);
  const HierarchyResult mesh_r = simulate_hierarchy(t, mesh);
  EXPECT_GT(mesh_r.sibling_hits.hits, 0u);
  EXPECT_EQ(solo_r.sibling_hits.hits, 0u);
  EXPECT_LT(mesh_r.root_requests, solo_r.root_requests);
  EXPECT_GE(mesh_r.edge_hit_rate(), solo_r.edge_hit_rate());
}

TEST(Hierarchy, SiblingAccountingClosed) {
  const trace::Trace t = small_trace();
  HierarchyConfig config = basic_config(t);
  config.sibling_cooperation = true;
  const HierarchyResult r = simulate_hierarchy(t, config);
  // offered = own-edge answered + sibling answered + forwarded to root.
  EXPECT_EQ(r.offered.requests,
            r.edge_hits.hits + r.sibling_hits.hits + r.root_requests);
  EXPECT_LE(r.combined_hit_rate(), 1.0);
}

TEST(Hierarchy, ReplicationTogglesLocalCopies) {
  // With replication, a second request from the same client after a
  // sibling hit is a local edge hit; without it, it's a sibling hit again.
  const trace::Trace t = small_trace();
  HierarchyConfig with = basic_config(t);
  with.sibling_cooperation = true;
  with.replicate_on_sibling_hit = true;
  HierarchyConfig without = with;
  without.replicate_on_sibling_hit = false;
  const HierarchyResult with_r = simulate_hierarchy(t, with);
  const HierarchyResult without_r = simulate_hierarchy(t, without);
  EXPECT_GT(without_r.sibling_hits.hits, with_r.sibling_hits.hits);
}

TEST(Hierarchy, Deterministic) {
  const trace::Trace t = small_trace();
  const HierarchyConfig config = basic_config(t);
  const HierarchyResult a = simulate_hierarchy(t, config);
  const HierarchyResult b = simulate_hierarchy(t, config);
  EXPECT_EQ(a.edge_hits.hits, b.edge_hits.hits);
  EXPECT_EQ(a.root_hits.hit_bytes, b.root_hits.hit_bytes);
  EXPECT_EQ(a.edge_evictions, b.edge_evictions);
}

TEST(Hierarchy, WarmupExcluded) {
  const trace::Trace t = small_trace();
  HierarchyConfig config = basic_config(t);
  config.simulator.warmup_fraction = 0.5;
  const HierarchyResult r = simulate_hierarchy(t, config);
  EXPECT_EQ(r.offered.requests, t.total_requests() -
                                    static_cast<std::uint64_t>(
                                        t.total_requests() * 0.5));
}

}  // namespace
}  // namespace webcache::sim
