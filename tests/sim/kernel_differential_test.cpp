// The monomorphized replay kernels must be a pure dispatch change: routing
// a PolicySpec run through a registered kernel (KernelMode::kAuto / kOn)
// has to yield byte-identical SimResults to the forced-virtual path
// (KernelMode::kOff) — for every factory policy, sparse and dense, streamed
// in chunks of any size, with metrics windows and fault schedules on, and
// across checkpoint/resume in either direction (a checkpoint written by one
// engine must resume under the other). Unregistered policies and composite
// frontends must fall back to the virtual path honestly, and kOn must
// refuse by name when no kernel exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "cache/partitioned.hpp"
#include "obs/stats_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/kernel.hpp"
#include "sim/reporter.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {
namespace {

namespace fs = std::filesystem;

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.policy_name, b.policy_name) << label;
  EXPECT_EQ(a.capacity_bytes, b.capacity_bytes) << label;
  expect_identical_counters(a.overall, b.overall, label);
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    expect_identical_counters(a.per_class[c], b.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(a.warmup_requests, b.warmup_requests) << label;
  EXPECT_EQ(a.measured_requests, b.measured_requests) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.bypasses, b.bypasses) << label;
  // Both engines execute the identical ReplayCore statements, so the
  // latency doubles accumulate in the same order: exact equality.
  EXPECT_EQ(a.miss_latency_ms, b.miss_latency_ms) << label;
  EXPECT_EQ(a.all_miss_latency_ms, b.all_miss_latency_ms) << label;
  EXPECT_EQ(a.modification_misses, b.modification_misses) << label;
  EXPECT_EQ(a.interrupted_transfers, b.interrupted_transfers) << label;
  ASSERT_EQ(a.occupancy_series.size(), b.occupancy_series.size()) << label;
  for (std::size_t i = 0; i < a.occupancy_series.size(); ++i) {
    const OccupancySample& sa = a.occupancy_series[i];
    const OccupancySample& sb = b.occupancy_series[i];
    EXPECT_EQ(sa.request_index, sb.request_index) << label;
    EXPECT_EQ(sa.occupancy.total_objects, sb.occupancy.total_objects)
        << label;
    EXPECT_EQ(sa.occupancy.total_bytes, sb.occupancy.total_bytes) << label;
    EXPECT_EQ(sa.occupancy.objects, sb.occupancy.objects) << label;
    EXPECT_EQ(sa.occupancy.bytes, sb.occupancy.bytes) << label;
  }
  EXPECT_EQ(a.faults.events_applied, b.faults.events_applied) << label;
  EXPECT_EQ(a.faults.failovers, b.faults.failovers) << label;
  EXPECT_EQ(a.faults.lost_requests, b.faults.lost_requests) << label;
  EXPECT_EQ(a.faults.lost_bytes, b.faults.lost_bytes) << label;
}

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

/// Every spelling the policy factory accepts. All but the GD*C family have
/// a registered kernel; GD*C is deliberately unregistered (per-class heaps)
/// and pins the transparent-fallback path.
const std::vector<std::string>& factory_policies() {
  static const std::vector<std::string> names = {
      "LRU",          "LRU-MIN",       "LRU-2",
      "LRU-THOLD(300000)",             "FIFO",
      "SIZE",         "LFU",           "LFU-DA",
      "GDS(1)",       "GDS(packet)",   "GDS(latency)",
      "GDSF(1)",      "GDSF(packet)",  "GDSF(latency)",
      "GD*(1)",       "GD*(packet)",   "GD*(latency)",
      "GD*C(1)",      "GD*C(packet)",
      "RANDOM:seed=7",                 "CLOCK",
      "DELAY-CLOCK:k=3",               "PROB-LRU:p=0.5,seed=9",
      "DELAY-LRU:k=2",                 "BATCH-LRU:batch=8"};
  return names;
}

SimulatorOptions with_kernel(SimulatorOptions options, KernelMode mode) {
  options.kernel = mode;
  return options;
}

/// A fresh, empty checkpoint directory under the test temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/webcache_kernel_" + name;
  fs::remove_all(dir);
  return dir;
}

TEST(KernelDifferential, AllFactoryPoliciesSparseAndDense) {
  const trace::Trace t = recorded_trace();
  const trace::DenseTrace dense = trace::densify(t);
  const std::uint64_t capacity = t.overall_size_bytes() / 25;  // 4%

  SimulatorOptions options;
  options.occupancy_samples = 8;  // the countdown sampler must agree too

  for (const std::string& name : factory_policies()) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const bool has_kernel = kernel_available(spec);
    const std::string expected_engine =
        has_kernel ? "monomorphized" : "virtual";

    const SimResult virt =
        simulate(t, capacity, spec, with_kernel(options, KernelMode::kOff));
    EXPECT_EQ(virt.replay_kernel, "virtual") << name;

    const SimResult auto_sparse =
        simulate(t, capacity, spec, with_kernel(options, KernelMode::kAuto));
    EXPECT_EQ(auto_sparse.replay_kernel, expected_engine) << name;
    expect_identical(virt, auto_sparse, name + " sparse");

    const SimResult virt_dense = simulate(
        dense, capacity, spec, with_kernel(options, KernelMode::kOff));
    const SimResult auto_dense = simulate(
        dense, capacity, spec, with_kernel(options, KernelMode::kAuto));
    EXPECT_EQ(virt_dense.replay_kernel, "virtual") << name;
    EXPECT_EQ(auto_dense.replay_kernel, expected_engine) << name;
    expect_identical(virt_dense, auto_dense, name + " dense");
    expect_identical(virt, virt_dense, name + " sparse-vs-dense");

    if (has_kernel) {
      // kOn must agree with kAuto (same kernel, forced).
      const SimResult forced =
          simulate(t, capacity, spec, with_kernel(options, KernelMode::kOn));
      EXPECT_EQ(forced.replay_kernel, "monomorphized") << name;
      expect_identical(virt, forced, name + " forced");
    } else {
      EXPECT_THROW(
          simulate(t, capacity, spec, with_kernel(options, KernelMode::kOn)),
          std::invalid_argument)
          << name;
    }
  }
}

TEST(KernelDifferential, StreamingChunksWithMetricsWindows) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const SimulatorOptions options;

  // One representative per kernel family translation unit.
  for (const std::string& name :
       {std::string("LRU"), std::string("GDSF(packet)"),
        std::string("DELAY-CLOCK:k=3")}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    ASSERT_TRUE(kernel_available(spec)) << name;

    // Window length 113 (prime) closes mid-chunk for every chunking below.
    obs::RecordingSink virt_sink(113);
    const SimResult virt = simulate(
        t, capacity, spec, with_kernel(options, KernelMode::kOff), virt_sink);
    std::ostringstream virt_json;
    write_metrics_json(virt_json, virt, virt_sink.series());

    // Chunk 0 = whole trace in one span (the prefetch lookahead covers the
    // full tail); 1 = every boundary condition; 4096 = steady state.
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{4096},
                                    std::size_t{0}}) {
      const std::string label = name + " chunk=" + std::to_string(chunk);
      trace::MemoryRequestStream stream(t, chunk);
      const SimResult plain = simulate_stream(
          stream, capacity, spec, with_kernel(options, KernelMode::kOn));
      EXPECT_EQ(plain.replay_kernel, "monomorphized") << label;
      expect_identical(virt, plain, label);

      trace::MemoryRequestStream instrumented(t, chunk);
      obs::RecordingSink sink(113);
      const SimResult streamed =
          simulate_stream(instrumented, capacity, spec,
                          with_kernel(options, KernelMode::kOn), sink);
      EXPECT_EQ(streamed.replay_kernel, "monomorphized") << label;
      expect_identical(virt, streamed, label + " instrumented");
      std::ostringstream json;
      write_metrics_json(json, streamed, sink.series());
      EXPECT_EQ(virt_json.str(), json.str())
          << "metrics JSON diverged at " << label;
    }
  }
}

TEST(KernelDifferential, StreamingFaultSchedulesMatchVirtual) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");
  const SimulatorOptions options;

  // Events pinned to chunk boundaries and mid-chunk indices, all keyed off
  // the global 1-based request index.
  FaultSchedule schedule;
  schedule.events = {{14, FaultKind::kEdgeCrash, 0},
                     {15, FaultKind::kEdgeRecover, 0},
                     {100, FaultKind::kEdgeCrash, 0},
                     {4096, FaultKind::kEdgeRecover, 0},
                     {4097, FaultKind::kEdgeCrash, 0},
                     {5000, FaultKind::kEdgeRecover, 0}};
  schedule.seed = 17;

  trace::MemoryRequestStream virt_stream(t, 4096);
  const SimResult virt =
      simulate_stream(virt_stream, capacity, spec,
                      with_kernel(options, KernelMode::kOff), schedule);
  EXPECT_EQ(virt.replay_kernel, "virtual");

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{4096},
                                  std::size_t{0}}) {
    const std::string label = "faults chunk=" + std::to_string(chunk);
    trace::MemoryRequestStream stream(t, chunk);
    const SimResult kernel =
        simulate_stream(stream, capacity, spec,
                        with_kernel(options, KernelMode::kOn), schedule);
    EXPECT_EQ(kernel.replay_kernel, "monomorphized") << label;
    expect_identical(virt, kernel, label);

    // Faulted + instrumented: the full series must also agree.
    trace::MemoryRequestStream instrumented(t, chunk);
    obs::RecordingSink sink(113);
    const SimResult both =
        simulate_stream(instrumented, capacity, spec,
                        with_kernel(options, KernelMode::kOn), schedule, sink);
    expect_identical(virt, both, label + " instrumented");
  }
}

TEST(KernelDifferential, DensifiedStreamMatchesVirtual) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(packet)");
  const SimulatorOptions options;

  const SimResult virt =
      simulate(t, capacity, spec, with_kernel(options, KernelMode::kOff));

  // Hot capacities from pathologically tiny (every miss spills) to larger
  // than the document universe.
  for (const std::size_t hot : {std::size_t{2}, std::size_t{64},
                                std::size_t{1} << 20}) {
    trace::MemoryRequestStream stream(t, 4096);
    trace::OnlineDensifier::Options densify;
    densify.hot_capacity = hot;
    const SimResult kernel = simulate_stream_densified(
        stream, capacity, spec, with_kernel(options, KernelMode::kOn),
        densify);
    EXPECT_EQ(kernel.replay_kernel, "monomorphized");
    expect_identical(virt, kernel, "densified hot=" + std::to_string(hot));
  }
}

TEST(KernelDifferential, CheckpointResumeInterchangeableAcrossEngines) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const std::uint64_t half = t.total_requests() / 2;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LFU-DA");

  SimulatorOptions options;
  options.occupancy_samples = 8;

  trace::MemoryRequestStream s0(t, 4096);
  const SimResult baseline = simulate_stream(
      s0, capacity, spec, with_kernel(options, KernelMode::kOff));

  // Both orderings: checkpoint under engine A, resume under engine B.
  const std::pair<KernelMode, KernelMode> directions[] = {
      {KernelMode::kOn, KernelMode::kOff},   // kernel writes, virtual resumes
      {KernelMode::kOff, KernelMode::kOn}};  // virtual writes, kernel resumes
  int index = 0;
  for (const auto& [first, second] : directions) {
    const std::string dir = fresh_dir("cross_" + std::to_string(index++));
    const std::string label =
        std::string("direction ") + (first == KernelMode::kOn ? "kernel->virtual"
                                                              : "virtual->kernel");

    StreamCheckpointJob job;
    job.options = with_kernel(options, first);
    job.checkpoint.dir = dir;
    job.checkpoint.every = 919;  // prime: never aligns with chunk 4096
    job.checkpoint.keep = 2;
    job.checkpoint.trace_source = "synthetic-dfn-0.002";
    job.checkpoint.stop_after_requests = half;

    trace::MemoryRequestStream s1(t, 4096);
    const CheckpointedRun partial =
        simulate_stream_checkpointed(s1, capacity, spec, job);
    ASSERT_TRUE(partial.stopped_early) << label;
    ASSERT_GT(partial.checkpoints_written, 0u) << label;
    EXPECT_EQ(partial.result.replay_kernel,
              first == KernelMode::kOn ? "monomorphized" : "virtual")
        << label;

    job.options = with_kernel(options, second);
    job.checkpoint.resume = true;
    job.checkpoint.stop_after_requests = 0;
    trace::MemoryRequestStream s2(t, 4096);
    const CheckpointedRun resumed =
        simulate_stream_checkpointed(s2, capacity, spec, job);
    EXPECT_GT(resumed.resumed_from, 0u) << label;
    EXPECT_EQ(resumed.result.replay_kernel,
              second == KernelMode::kOn ? "monomorphized" : "virtual")
        << label;
    expect_identical(baseline, resumed.result, label);
    fs::remove_all(dir);
  }
}

TEST(KernelDifferential, CheckpointedKernelRefusesSinkAndFaults) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");

  // Instrumented and fault-injected checkpoint jobs are virtual-only; kOn
  // must refuse rather than silently fall back, kAuto must fall back and
  // say so.
  obs::RecordingSink sink(113);
  StreamCheckpointJob job;
  job.options = with_kernel(SimulatorOptions{}, KernelMode::kOn);
  job.sink = &sink;
  {
    trace::MemoryRequestStream stream(t, 4096);
    EXPECT_THROW(simulate_stream_checkpointed(stream, capacity, spec, job),
                 std::invalid_argument);
  }

  job.options.kernel = KernelMode::kAuto;
  {
    trace::MemoryRequestStream stream(t, 4096);
    const CheckpointedRun run =
        simulate_stream_checkpointed(stream, capacity, spec, job);
    EXPECT_EQ(run.result.replay_kernel, "virtual");
  }
}

TEST(KernelDifferential, RegistryFallbackIsHonest) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const SimulatorOptions options;

  // GD*C keeps per-class heaps and is deliberately unregistered: kAuto runs
  // virtual (and reports it), kOn refuses by policy name.
  const cache::PolicySpec gdsc = cache::policy_spec_from_name("GD*C(1)");
  EXPECT_FALSE(kernel_available(gdsc));
  EXPECT_EQ(make_kernel(capacity, gdsc), nullptr);
  const SimResult fallback =
      simulate(t, capacity, gdsc, with_kernel(options, KernelMode::kAuto));
  EXPECT_EQ(fallback.replay_kernel, "virtual");
  try {
    simulate(t, capacity, gdsc, with_kernel(options, KernelMode::kOn));
    FAIL() << "KernelMode::kOn must throw for an unregistered policy";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find(kernel_name_of(gdsc)),
              std::string::npos)
        << "diagnostic must name the policy: " << err.what();
  }

  // Frontend-taking overloads never consult the registry: a composite
  // PartitionedCache replays virtual even though its per-class policy (LRU)
  // has a kernel.
  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0 / static_cast<double>(trace::kDocumentClassCount));
  cache::PartitionedCache partitioned(
      cache::PartitionedCacheConfig::uniform_policy(
          capacity, cache::policy_spec_from_name("LRU"), weights));
  const SimResult composite = simulate(t, partitioned, options);
  EXPECT_EQ(composite.replay_kernel, "virtual");

  // The registry names are canonical, sorted, and parameters do not change
  // the key.
  const std::vector<std::string> names = registered_kernel_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& expected :
       {std::string("LRU"), std::string("GDSF"), std::string("CLOCK"),
        std::string("BATCH-LRU")}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected << " missing from the kernel registry";
  }
  EXPECT_EQ(std::find(names.begin(), names.end(), "GD*C"), names.end());
  EXPECT_EQ(kernel_name_of(cache::policy_spec_from_name("GDSF(packet)")),
            "GDSF");
  EXPECT_EQ(kernel_name_of(cache::policy_spec_from_name("GDSF(1)")), "GDSF");
}

}  // namespace
}  // namespace webcache::sim
