#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace webcache::sim {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc, std::uint64_t size) {
  Request r;
  r.document = doc;
  r.document_size = size;
  r.transfer_size = size;
  return r;
}

cache::PolicySpec lru() { return cache::policy_spec_from_name("LRU"); }

SimulatorOptions opts() {
  SimulatorOptions o;
  o.warmup_fraction = 0.0;
  o.latency_setup_ms = 100.0;
  o.latency_bytes_per_ms = 10.0;
  return o;
}

TEST(Latency, AllMissesIncurFullLatency) {
  Trace t;
  t.requests = {req(1, 100), req(2, 200)};  // two compulsory misses
  const SimResult r = simulate(t, 10000, lru(), opts());
  // 100 + 100/10 = 110; 100 + 200/10 = 120.
  EXPECT_DOUBLE_EQ(r.miss_latency_ms, 230.0);
  EXPECT_DOUBLE_EQ(r.all_miss_latency_ms, 230.0);
  EXPECT_DOUBLE_EQ(r.latency_savings(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_latency_ms(), 115.0);
}

TEST(Latency, HitsAreFree) {
  Trace t;
  t.requests = {req(1, 100), req(1, 100), req(1, 100), req(1, 100)};
  const SimResult r = simulate(t, 10000, lru(), opts());
  EXPECT_DOUBLE_EQ(r.miss_latency_ms, 110.0);  // only the compulsory miss
  EXPECT_DOUBLE_EQ(r.all_miss_latency_ms, 440.0);
  EXPECT_DOUBLE_EQ(r.latency_savings(), 0.75);
  EXPECT_DOUBLE_EQ(r.mean_latency_ms(), 27.5);
}

TEST(Latency, BypassesCostLikeMisses) {
  Trace t;
  t.requests = {req(1, 100000)};  // larger than the cache -> bypass
  const SimResult r = simulate(t, 100, lru(), opts());
  EXPECT_EQ(r.bypasses, 1u);
  EXPECT_DOUBLE_EQ(r.miss_latency_ms, 100.0 + 100000.0 / 10.0);
}

TEST(Latency, WarmupRequestsExcluded) {
  Trace t;
  for (int i = 0; i < 10; ++i) t.requests.push_back(req(1, 100));
  SimulatorOptions o = opts();
  o.warmup_fraction = 0.10;  // first request (the only miss) is warm-up
  const SimResult r = simulate(t, 10000, lru(), o);
  EXPECT_DOUBLE_EQ(r.miss_latency_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.latency_savings(), 1.0);
}

TEST(Latency, EmptyTraceDefined) {
  const SimResult r = simulate(Trace{}, 100, lru(), opts());
  EXPECT_DOUBLE_EQ(r.latency_savings(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_latency_ms(), 0.0);
}

TEST(Latency, SavingsTrackHitRateForUniformSizes) {
  Trace t;
  for (int i = 0; i < 1000; ++i) t.requests.push_back(req(i % 20, 500));
  const SimResult r = simulate(t, 100000, lru(), opts());
  // Uniform sizes: latency savings == hit rate exactly.
  EXPECT_NEAR(r.latency_savings(), r.overall.hit_rate(), 1e-12);
}

}  // namespace
}  // namespace webcache::sim
