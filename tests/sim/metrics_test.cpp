#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace webcache::sim {
namespace {

TEST(HitCounters, EmptyRatesAreZero) {
  HitCounters c;
  EXPECT_EQ(c.hit_rate(), 0.0);
  EXPECT_EQ(c.byte_hit_rate(), 0.0);
}

TEST(HitCounters, RatesComputed) {
  HitCounters c;
  c.requests = 10;
  c.hits = 4;
  c.requested_bytes = 1000;
  c.hit_bytes = 150;
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.4);
  EXPECT_DOUBLE_EQ(c.byte_hit_rate(), 0.15);
}

TEST(HitCounters, MergeAdds) {
  HitCounters a, b;
  a.requests = 10;
  a.hits = 5;
  a.requested_bytes = 100;
  a.hit_bytes = 50;
  b.requests = 30;
  b.hits = 5;
  b.requested_bytes = 300;
  b.hit_bytes = 10;
  a.merge(b);
  EXPECT_EQ(a.requests, 40u);
  EXPECT_EQ(a.hits, 10u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 0.25);
  EXPECT_DOUBLE_EQ(a.byte_hit_rate(), 0.15);
}

TEST(SimResult, PerClassAccessor) {
  SimResult r;
  r.per_class[static_cast<std::size_t>(trace::DocumentClass::kHtml)].hits = 7;
  EXPECT_EQ(r.of(trace::DocumentClass::kHtml).hits, 7u);
  EXPECT_EQ(r.of(trace::DocumentClass::kImage).hits, 0u);
}

}  // namespace
}  // namespace webcache::sim
