// Analytic cross-check for RANDOM eviction: under the independent
// reference model (IRM) the per-document hit probability of a cache of C
// equal-sized objects under RANDOM replacement is well approximated by the
// Che-style fixed point (Fricker, Robert, Roberts, "A versatile and
// accurate approximation for LRU cache performance", arXiv:1202.4880;
// RANDOM there is the special case where the characteristic time acts as
// an exponential rather than deterministic timer):
//
//     h_i = q_i T / (1 + q_i T),   with T solving  sum_i h_i(T) = C.
//
// The simulated hit ratio on a synthetic Zipf IRM trace must land within a
// documented tolerance of sum_i q_i h_i. Tolerance rationale: the trace is
// finite (sampling noise ~1/sqrt(N) on 200k draws ~ 0.003), the cache
// starts cold (first-reference misses are excluded by the warmup cut), and
// the approximation itself carries O(1/C) error; 0.02 absolute absorbs all
// three with margin while still failing hard on any off-by-one in the
// eviction accounting (removing a single line of the fixed point shifts
// the prediction by far more).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/request.hpp"
#include "util/rng.hpp"

namespace webcache::sim {
namespace {

constexpr std::size_t kDocs = 2000;
constexpr std::size_t kRequests = 200000;
constexpr std::uint64_t kCacheObjects = 200;  // C, in unit-size objects
constexpr double kZipfAlpha = 0.8;
constexpr double kTolerance = 0.02;

std::vector<double> zipf_popularities() {
  std::vector<double> q(kDocs);
  double norm = 0.0;
  for (std::size_t i = 0; i < kDocs; ++i) {
    q[i] = 1.0 / std::pow(static_cast<double>(i + 1), kZipfAlpha);
    norm += q[i];
  }
  for (double& v : q) v /= norm;
  return q;
}

// Solves sum_i q_i T / (1 + q_i T) = C for T by bisection (the left side
// is increasing in T from 0 to kDocs, and C < kDocs).
double solve_characteristic_time(const std::vector<double>& q) {
  auto filled = [&](double t) {
    double sum = 0.0;
    for (const double qi : q) sum += qi * t / (1.0 + qi * t);
    return sum;
  };
  double lo = 0.0;
  double hi = 1.0;
  while (filled(hi) < static_cast<double>(kCacheObjects)) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (filled(mid) < static_cast<double>(kCacheObjects) ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double predicted_hit_ratio(const std::vector<double>& q) {
  const double t = solve_characteristic_time(q);
  double hit = 0.0;
  for (const double qi : q) hit += qi * qi * t / (1.0 + qi * t);
  return hit;
}

trace::Trace irm_zipf_trace(const std::vector<double>& q, std::uint64_t seed) {
  // Inverse-CDF sampling keeps the trace an exact IRM draw from q.
  std::vector<double> cdf(q.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    acc += q[i];
    cdf[i] = acc;
  }
  util::Rng rng(seed);
  trace::Trace t;
  t.requests.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    trace::Request r;
    r.document = static_cast<trace::DocumentId>(it - cdf.begin());
    r.document_size = 1;
    r.transfer_size = 1;  // uniform sizes: capacity C == C objects
    r.doc_class = trace::DocumentClass::kOther;
    t.requests.push_back(r);
  }
  return t;
}

TEST(RandomAnalytic, HitRatioMatchesCheApproximation) {
  const std::vector<double> q = zipf_popularities();
  const double predicted = predicted_hit_ratio(q);
  // Sanity-pin the fixed point itself so a tolerance widening cannot hide
  // a broken solver: for these constants the prediction is ~0.37.
  ASSERT_GT(predicted, 0.25);
  ASSERT_LT(predicted, 0.55);

  cache::PolicySpec spec = cache::policy_spec_from_name("RANDOM:seed=17");
  SimulatorOptions opts;
  opts.warmup_fraction = 0.25;  // past the cold-start transient
  const SimResult r = simulate(irm_zipf_trace(q, 4242), kCacheObjects, spec,
                               opts);
  const double simulated = r.overall.hit_rate();
  EXPECT_NEAR(simulated, predicted, kTolerance)
      << "RANDOM hit ratio diverged from the arXiv:1202.4880 fixed point";
}

TEST(RandomAnalytic, PredictionIsSeedInvariant) {
  // Two different policy seeds must both land inside the same band —
  // the analytic target is a property of the scheme, not of one stream.
  const std::vector<double> q = zipf_popularities();
  const double predicted = predicted_hit_ratio(q);
  const trace::Trace t = irm_zipf_trace(q, 4242);
  SimulatorOptions opts;
  opts.warmup_fraction = 0.25;
  for (const char* name : {"RANDOM:seed=1", "RANDOM:seed=987654321"}) {
    const SimResult r =
        simulate(t, kCacheObjects, cache::policy_spec_from_name(name), opts);
    EXPECT_NEAR(r.overall.hit_rate(), predicted, kTolerance) << name;
  }
}

}  // namespace
}  // namespace webcache::sim
