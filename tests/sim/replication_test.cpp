#include "sim/replication.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::sim {
namespace {

ReplicationConfig small_config(std::uint32_t replications = 3) {
  ReplicationConfig config;
  config.replications = replications;
  config.base_seed = 7;
  config.cache_fraction = 0.04;
  return config;
}

synth::WorkloadProfile tiny_dfn() {
  return synth::WorkloadProfile::DFN().scaled(0.002);
}

TEST(Replication, RejectsBadConfig) {
  const auto policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  ReplicationConfig config = small_config(0);
  EXPECT_THROW(run_replicated(tiny_dfn(), policies, config),
               std::invalid_argument);
  config = small_config();
  EXPECT_THROW(run_replicated(tiny_dfn(), {}, config), std::invalid_argument);
  config.cache_fraction = 0.0;
  EXPECT_THROW(run_replicated(tiny_dfn(), policies, config),
               std::invalid_argument);
}

TEST(Replication, AggregatesAcrossSeeds) {
  const auto policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  const auto results = run_replicated(tiny_dfn(), policies, small_config());
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.hit_rate.samples(), 3u);
    EXPECT_GT(r.hit_rate.mean(), 0.0);
    EXPECT_LT(r.hit_rate.mean(), 1.0);
    EXPECT_GE(r.hit_rate.max(), r.hit_rate.min());
    EXPECT_LE(r.byte_hit_rate.mean(), r.hit_rate.mean() + 0.5);
  }
  EXPECT_EQ(results[0].policy_name, "LRU");
  EXPECT_EQ(results[3].policy_name, "GD*(1)");
}

TEST(Replication, SeedNoiseIsSmall) {
  // Replicas differ only by seed; their hit rates must agree within a few
  // points — otherwise the generator is unstable and single-seed benches
  // would be meaningless.
  const std::vector<cache::PolicySpec> policies = {
      cache::policy_spec_from_name("GD*(1)")};
  const auto results = run_replicated(tiny_dfn(), policies, small_config(4));
  EXPECT_LT(results[0].hit_rate.max() - results[0].hit_rate.min(), 0.05);
}

TEST(Replication, Deterministic) {
  const std::vector<cache::PolicySpec> policies = {
      cache::policy_spec_from_name("LRU")};
  const auto a = run_replicated(tiny_dfn(), policies, small_config());
  const auto b = run_replicated(tiny_dfn(), policies, small_config());
  EXPECT_DOUBLE_EQ(a[0].hit_rate.mean(), b[0].hit_rate.mean());
  EXPECT_DOUBLE_EQ(a[0].byte_hit_rate.stddev(), b[0].byte_hit_rate.stddev());
}

TEST(Replication, GdStarBeatsLruBeyondSeedNoise) {
  // The paper's headline hit-rate ordering must survive the confidence
  // interval test — i.e. it is not an artifact of one lucky seed.
  const auto policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  const auto results = run_replicated(tiny_dfn(), policies, small_config(4));
  const auto& lru = results[0];
  const auto& gdstar = results[3];
  EXPECT_TRUE(clearly_separated(gdstar.hit_rate, lru.hit_rate));
  EXPECT_GT(gdstar.hit_rate.mean(), lru.hit_rate.mean());
}

TEST(Replication, CiHalfWidthBehaves) {
  MetricSummary m;
  EXPECT_EQ(m.ci95_half_width(), 0.0);
  m.stats.add(0.5);
  EXPECT_EQ(m.ci95_half_width(), 0.0);  // one sample: undefined -> 0
  m.stats.add(0.5);
  EXPECT_DOUBLE_EQ(m.ci95_half_width(), 0.0);  // identical samples
  m.stats.add(0.9);
  EXPECT_GT(m.ci95_half_width(), 0.0);
}

TEST(Replication, ClearlySeparatedSemantics) {
  MetricSummary low, high;
  for (const double x : {0.10, 0.11, 0.09, 0.10}) low.stats.add(x);
  for (const double x : {0.30, 0.31, 0.29, 0.30}) high.stats.add(x);
  EXPECT_TRUE(clearly_separated(low, high));
  MetricSummary noisy_low, noisy_high;
  for (const double x : {0.0, 0.2, 0.1, 0.3}) noisy_low.stats.add(x);
  for (const double x : {0.1, 0.3, 0.2, 0.4}) noisy_high.stats.add(x);
  EXPECT_FALSE(clearly_separated(noisy_low, noisy_high));
}

}  // namespace
}  // namespace webcache::sim
