#include "sim/reporter.hpp"

#include <gtest/gtest.h>

#include "synth/generator.hpp"

namespace webcache::sim {
namespace {

SweepResult small_sweep() {
  synth::GeneratorOptions gen_opts;
  gen_opts.seed = 5;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.001),
                            gen_opts)
          .generate();
  SweepConfig config;
  config.cache_fractions = {0.01, 0.05};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  return run_sweep(t, config);
}

TEST(Reporter, SweepPanelHeaderHasAllPolicies) {
  const SweepResult sweep = small_sweep();
  const util::Table table = render_sweep_panel(
      sweep, trace::DocumentClass::kImage, Metric::kHitRate, "Images HR");
  const std::string text = table.to_text();
  for (const char* name : {"LRU", "LFU-DA", "GDS(1)", "GD*(1)"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("Cache (MB)"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);  // one per cache size
}

TEST(Reporter, OverallPanelRenders) {
  const SweepResult sweep = small_sweep();
  const util::Table hr =
      render_sweep_overall(sweep, Metric::kHitRate, "Overall HR");
  const util::Table bhr =
      render_sweep_overall(sweep, Metric::kByteHitRate, "Overall BHR");
  EXPECT_EQ(hr.rows(), 2u);
  EXPECT_EQ(bhr.rows(), 2u);
  EXPECT_NE(hr.to_text(), bhr.to_text());
}

TEST(Reporter, OccupancySeriesRendersClassColumns) {
  synth::GeneratorOptions gen_opts;
  gen_opts.seed = 5;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.001),
                            gen_opts)
          .generate();
  cache::PolicySpec spec;
  spec.kind = cache::PolicyKind::kGds;
  SimulatorOptions opts;
  opts.occupancy_samples = 8;
  const SimResult result = simulate(t, 1 << 20, spec, opts);
  const util::Table docs = render_occupancy_series(result, false, "Docs");
  const util::Table bytes = render_occupancy_series(result, true, "Bytes");
  EXPECT_EQ(docs.rows(), result.occupancy_series.size());
  EXPECT_EQ(bytes.rows(), result.occupancy_series.size());
  EXPECT_NE(docs.to_text().find("Multi Media"), std::string::npos);
}

TEST(Reporter, DiagnosticsHasRowPerPolicyAndSize) {
  const SweepResult sweep = small_sweep();
  const util::Table table = render_sweep_diagnostics(sweep, "Diag");
  EXPECT_EQ(table.rows(), 2u * 4u);
  EXPECT_NE(table.to_text().find("Evictions"), std::string::npos);
}

TEST(Reporter, CsvExportParsesBack) {
  const SweepResult sweep = small_sweep();
  const util::Table table =
      render_sweep_overall(sweep, Metric::kHitRate, "Overall");
  const std::string csv = table.to_csv();
  // Header + two data rows, each with 2 + 4 columns.
  std::size_t lines = 0, commas_first_line = 0;
  for (std::size_t i = 0; i < csv.size(); ++i) {
    if (csv[i] == '\n') ++lines;
    if (csv[i] == ',' && lines == 0) ++commas_first_line;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(commas_first_line, 5u);
}

}  // namespace
}  // namespace webcache::sim
