// Statistical contract of the SHARDS-sampled sweep: every sampled point
// must land within its own reported error bound of the exact one-pass
// result, the reported error must shrink as the rate grows, fixed seeds
// must reproduce bit-identical curves, and rate == 1.0 must degenerate to
// the exact engine. Plus the run_sweep routing: sampled cells are annotated
// and never silently replace exact ones.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "cache/factory.hpp"
#include "sim/reporter.hpp"
#include "sim/sampled_sweep.hpp"
#include "sim/stack_sweep.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request_stream.hpp"

namespace webcache::sim {
namespace {

// ~67k requests over ~30k documents: enough cardinality that rate 0.001
// still samples a few dozen documents.
const trace::Trace& reference_trace() {
  static const trace::Trace t = [] {
    synth::TraceGenerator generator(
        synth::WorkloadProfile::DFN().scaled(0.01));
    return generator.generate();
  }();
  return t;
}

std::vector<std::uint64_t> reference_ladder(const trace::Trace& t) {
  const std::uint64_t floor_bytes = StackSweep::max_transfer_size(t);
  std::vector<std::uint64_t> ladder;
  for (const std::uint64_t div : {200, 50, 12, 3}) {
    ladder.push_back(
        std::max(floor_bytes, t.overall_size_bytes() / div));
  }
  return ladder;
}

TEST(SampledSweep, RateOneIsExactlyTheOnePassResult) {
  const trace::Trace& t = reference_trace();
  SampledSweepConfig config;
  config.capacities = reference_ladder(t);
  config.sample_rate = 1.0;

  const SampledCurve curve = SampledSweep(config).run(t);
  EXPECT_TRUE(curve.exact);
  EXPECT_EQ(curve.effective_rate, 1.0);

  const std::vector<SimResult> exact =
      StackSweep(config.capacities, config.simulator).run(t);
  ASSERT_EQ(curve.results.size(), exact.size());
  ASSERT_EQ(curve.points.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(curve.results[i].overall.requests, exact[i].overall.requests);
    EXPECT_EQ(curve.results[i].overall.hits, exact[i].overall.hits);
    EXPECT_EQ(curve.results[i].overall.requested_bytes,
              exact[i].overall.requested_bytes);
    EXPECT_EQ(curve.results[i].overall.hit_bytes,
              exact[i].overall.hit_bytes);
    EXPECT_EQ(curve.points[i].hit_rate, exact[i].overall.hit_rate());
    EXPECT_EQ(curve.points[i].byte_hit_rate,
              exact[i].overall.byte_hit_rate());
    EXPECT_EQ(curve.points[i].hit_rate_error, 0.0);
    EXPECT_EQ(curve.points[i].byte_hit_rate_error, 0.0);
  }
}

TEST(SampledSweep, ObservedErrorWithinReportedBound) {
  const trace::Trace& t = reference_trace();
  SampledSweepConfig config;
  config.capacities = reference_ladder(t);
  const std::vector<SimResult> exact =
      StackSweep(config.capacities, config.simulator).run(t);

  for (const double rate : {0.1, 0.01, 0.001}) {
    // Several independent replicates: the bound is a 99% bound, but it also
    // carries small-sample and model-bias slack, so a handful of seeded
    // draws all landing inside it is the expected behavior — a single
    // excursion at these n would indicate the bound is miscalibrated.
    for (const std::uint64_t seed :
         {config.hash_seed, std::uint64_t{1}, std::uint64_t{0xdecafbad}}) {
      config.sample_rate = rate;
      config.hash_seed = seed;
      const SampledCurve curve = SampledSweep(config).run(t);
      EXPECT_FALSE(curve.exact);
      EXPECT_GT(curve.sampled_documents, 0u)
          << "rate " << rate << " seed " << seed;
      for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const SampledPoint& p = curve.points[i];
        const double true_hit = exact[i].overall.hit_rate();
        const double true_bhr = exact[i].overall.byte_hit_rate();
        EXPECT_LE(std::abs(p.hit_rate - true_hit), p.hit_rate_error)
            << "hit rate at capacity " << p.capacity_bytes << ", rate "
            << rate << ", seed " << seed << " (est " << p.hit_rate
            << " vs exact " << true_hit << ")";
        EXPECT_LE(std::abs(p.byte_hit_rate - true_bhr),
                  p.byte_hit_rate_error)
            << "byte hit rate at capacity " << p.capacity_bytes << ", rate "
            << rate << ", seed " << seed << " (est " << p.byte_hit_rate
            << " vs exact " << true_bhr << ")";
        EXPECT_GT(p.hit_rate_error, 0.0);
        EXPECT_LE(p.hit_rate_error, 1.0);
      }
    }
  }
}

TEST(SampledSweep, ReportedErrorShrinksAsRateGrows) {
  // The bound is data-adaptive: a single seed that happens to draw a hot
  // document at one rate legitimately reports a LARGER bound there (its
  // coverage term sees the distortion), so pointwise monotonicity across
  // rates is not the contract. The contract is in expectation: averaged
  // over seeds and the ladder, more sampling budget buys a tighter bound.
  const trace::Trace& t = reference_trace();
  SampledSweepConfig config;
  config.capacities = reference_ladder(t);
  const std::vector<std::uint64_t> seeds = {
      config.hash_seed, 1, 0xdecafbad, 42, 777};

  std::vector<double> mean_hit, mean_byte;
  for (const double rate : {0.001, 0.01, 0.1}) {
    double hit = 0.0, byte = 0.0;
    std::size_t n = 0;
    for (const std::uint64_t seed : seeds) {
      config.sample_rate = rate;
      config.hash_seed = seed;
      const SampledCurve curve = SampledSweep(config).run(t);
      for (const SampledPoint& p : curve.points) {
        hit += p.hit_rate_error;
        byte += p.byte_hit_rate_error;
        ++n;
      }
    }
    mean_hit.push_back(hit / static_cast<double>(n));
    mean_byte.push_back(byte / static_cast<double>(n));
  }
  for (std::size_t i = 0; i + 1 < mean_hit.size(); ++i) {
    EXPECT_GE(mean_hit[i], mean_hit[i + 1]) << "between rate steps " << i;
    EXPECT_GE(mean_byte[i], mean_byte[i + 1]) << "between rate steps " << i;
  }
  // And the budget actually buys precision: the top rate's mean bound is
  // well below the bottom rate's saturated one.
  EXPECT_LT(mean_hit.back(), 0.6 * mean_hit.front());
}

TEST(SampledSweep, DeterministicForFixedSeedAndChunkInvariant) {
  const trace::Trace& t = reference_trace();
  SampledSweepConfig config;
  config.capacities = reference_ladder(t);
  config.sample_rate = 0.05;

  const SampledSweep sweep(config);
  const SampledCurve a = sweep.run(t);
  const SampledCurve b = sweep.run(t);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].hit_rate, b.points[i].hit_rate);
    EXPECT_EQ(a.points[i].byte_hit_rate, b.points[i].byte_hit_rate);
    EXPECT_EQ(a.points[i].hit_rate_error, b.points[i].hit_rate_error);
    EXPECT_EQ(a.points[i].est_hits, b.points[i].est_hits);
  }
  EXPECT_EQ(a.sampled_documents, b.sampled_documents);
  EXPECT_EQ(a.sampled_requests, b.sampled_requests);

  // The estimator consumes a stream; its chunking must not matter.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    trace::MemoryRequestStream stream(t, chunk);
    const SampledCurve c = sweep.run(stream);
    for (std::size_t i = 0; i < a.points.size(); ++i) {
      EXPECT_EQ(a.points[i].hit_rate, c.points[i].hit_rate)
          << "chunk " << chunk;
      EXPECT_EQ(a.points[i].hit_rate_error, c.points[i].hit_rate_error)
          << "chunk " << chunk;
    }
  }
}

TEST(SampledSweep, AdaptiveCapBoundsTheTrackedPopulation) {
  const trace::Trace& t = reference_trace();
  SampledSweepConfig config;
  config.capacities = reference_ladder(t);
  config.sample_rate = 1.0;  // start exact-rate, let the cap drive it down
  config.max_sampled_documents = 256;

  const SampledCurve curve = SampledSweep(config).run(t);
  EXPECT_FALSE(curve.exact);  // the cap forces the sampled engine
  EXPECT_LE(curve.sampled_documents, 256u);
  EXPECT_LT(curve.effective_rate, 1.0);
  EXPECT_LE(curve.effective_rate, curve.configured_rate);
  for (const SampledPoint& p : curve.points) {
    EXPECT_GE(p.hit_rate, 0.0);
    EXPECT_LE(p.hit_rate, 1.0);
    EXPECT_GT(p.hit_rate_error, 0.0);
  }

  // Deterministic: the eviction order is a pure function of the hashes.
  const SampledCurve again = SampledSweep(config).run(t);
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_EQ(curve.points[i].hit_rate, again.points[i].hit_rate);
    EXPECT_EQ(curve.points[i].hit_rate_error,
              again.points[i].hit_rate_error);
  }
  EXPECT_EQ(curve.effective_rate, again.effective_rate);
}

TEST(SampledSweep, ValidatesConfiguration) {
  SampledSweepConfig config;
  EXPECT_THROW(SampledSweep{config}, std::invalid_argument);  // empty ladder
  config.capacities = {1 << 20};
  config.sample_rate = 0.0;
  EXPECT_THROW(SampledSweep{config}, std::invalid_argument);
  config.sample_rate = 1.5;
  EXPECT_THROW(SampledSweep{config}, std::invalid_argument);
  config.sample_rate = 0.5;
  config.simulator.occupancy_samples = 4;  // not stack-safe
  EXPECT_THROW(SampledSweep{config}, std::invalid_argument);
  config.simulator.occupancy_samples = 0;
  EXPECT_NO_THROW(SampledSweep{config});
}

// ---- run_sweep routing ----

TEST(SampledSweep, RunSweepAnnotatesSampledLruCells) {
  const trace::Trace& t = reference_trace();
  SweepConfig config;
  config.cache_fractions = {0.02, 0.08};
  config.policies = {cache::policy_spec_from_name("LRU"),
                     cache::policy_spec_from_name("FIFO")};
  config.sampling = SamplingMode::kOn;
  config.sample_rate = 0.1;

  const SweepResult sweep = run_sweep(t, config);
  EXPECT_TRUE(sweep.sampled);
  EXPECT_EQ(sweep.sample_rate, 0.1);
  for (const SweepPoint& point : sweep.points) {
    ASSERT_EQ(point.estimates.size(), config.policies.size());
    EXPECT_TRUE(point.estimates[0].sampled);   // LRU column
    EXPECT_GT(point.estimates[0].hit_rate_error, 0.0);
    EXPECT_FALSE(point.estimates[1].sampled);  // FIFO stays exact
    EXPECT_EQ(point.estimates[1].hit_rate_error, 0.0);
    // The sampled estimate must be in the bound's reach of the exact cell.
    const SweepConfig exact_config = [&] {
      SweepConfig c = config;
      c.sampling = SamplingMode::kOff;
      return c;
    }();
    const SweepResult exact = run_sweep(t, exact_config);
    EXPECT_FALSE(exact.sampled);
    for (std::size_t f = 0; f < exact.points.size(); ++f) {
      const double est = sweep.points[f].results[0].overall.hit_rate();
      const double truth = exact.points[f].results[0].overall.hit_rate();
      EXPECT_LE(std::abs(est - truth),
                sweep.points[f].estimates[0].hit_rate_error)
          << "fraction index " << f;
      // Non-LRU columns must be bit-identical between the two runs.
      EXPECT_EQ(sweep.points[f].results[1].overall.hits,
                exact.points[f].results[1].overall.hits);
    }
    break;  // the exact cross-check only needs to run once
  }
}

TEST(SampledSweep, AutoModeKeysOffTheMemoryBudget) {
  const trace::Trace& t = reference_trace();
  SweepConfig config;
  config.cache_fractions = {0.04};
  config.policies = {cache::policy_spec_from_name("LRU")};
  config.sampling = SamplingMode::kAuto;

  // No budget: auto never samples.
  const SweepResult no_budget = run_sweep(t, config);
  EXPECT_FALSE(no_budget.sampled);

  // A 1-byte budget: the exact engine's footprint always exceeds it.
  config.sample_memory_budget_bytes = 1;
  config.sample_rate = 0.1;
  const SweepResult tight = run_sweep(t, config);
  EXPECT_TRUE(tight.sampled);

  // A huge budget: exact again.
  config.sample_memory_budget_bytes = std::uint64_t{1} << 62;
  const SweepResult loose = run_sweep(t, config);
  EXPECT_FALSE(loose.sampled);
}

TEST(SampledSweep, SweepJsonCarriesErrorBars) {
  const trace::Trace& t = reference_trace();
  SweepConfig config;
  config.cache_fractions = {0.04};
  config.policies = {cache::policy_spec_from_name("LRU")};
  config.sampling = SamplingMode::kOn;
  config.sample_rate = 0.1;

  const SweepResult sweep = run_sweep(t, config);
  std::ostringstream json;
  write_sweep_json(json, sweep);
  EXPECT_NE(json.str().find("\"sampling\""), std::string::npos);
  EXPECT_NE(json.str().find("\"hit_rate_error\""), std::string::npos);

  // Exact sweeps must serialize without any sampling fields — the schema
  // extension is strictly additive.
  config.sampling = SamplingMode::kOff;
  const SweepResult exact = run_sweep(t, config);
  std::ostringstream exact_json;
  write_sweep_json(exact_json, exact);
  EXPECT_EQ(exact_json.str().find("\"sampling\""), std::string::npos);
  EXPECT_EQ(exact_json.str().find("\"hit_rate_error\""), std::string::npos);
}

}  // namespace
}  // namespace webcache::sim
