// Differential suite for the sharded replay engine.
//
// Exact mode carries a hard promise: for the LRU/FIFO family the merged
// SimResult is bit-identical to the serial simulate() — every counter AND
// both trace-order latency doubles — for any thread count, any shard
// count, sparse or dense ids, every modification rule, with and without
// warm-up. The approximate mode promises determinism (pure function of
// trace/policy/options/shards, thread-count invariant), exact request
// conservation, and hit rates close to serial (bounded here).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "obs/stats_sink.hpp"
#include "sim/sharded_replay.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/binary_trace.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::sim {
namespace {

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const SimResult& serial, const SimResult& sharded,
                      const std::string& label) {
  EXPECT_EQ(serial.policy_name, sharded.policy_name) << label;
  EXPECT_EQ(serial.capacity_bytes, sharded.capacity_bytes) << label;
  expect_identical_counters(serial.overall, sharded.overall, label);
  for (std::size_t c = 0; c < serial.per_class.size(); ++c) {
    expect_identical_counters(serial.per_class[c], sharded.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(serial.warmup_requests, sharded.warmup_requests) << label;
  EXPECT_EQ(serial.measured_requests, sharded.measured_requests) << label;
  EXPECT_EQ(serial.evictions, sharded.evictions) << label;
  EXPECT_EQ(serial.bypasses, sharded.bypasses) << label;
  EXPECT_EQ(serial.modification_misses, sharded.modification_misses) << label;
  EXPECT_EQ(serial.interrupted_transfers, sharded.interrupted_transfers)
      << label;
  // The sharded engine accumulates the latency doubles in trace order, so
  // exact FP equality is the correct expectation.
  EXPECT_EQ(serial.miss_latency_ms, sharded.miss_latency_ms) << label;
  EXPECT_EQ(serial.all_miss_latency_ms, sharded.all_miss_latency_ms) << label;
}

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

ShardedConfig exact_config(std::uint32_t threads, std::uint32_t shards) {
  ShardedConfig config;
  config.threads = threads;
  config.shards = shards;
  config.mode = ShardedMode::kExact;
  return config;
}

// ---- exact mode: the differential matrix ----------------------------------

TEST(ShardedReplayExact, MatchesSerialForLruFamilyAcrossThreadCounts) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const SimulatorOptions options;

  for (const std::string name : {"LRU", "FIFO", "LRU-THOLD(300000)"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult serial = simulate(sparse, capacity, spec, options);
    // shards=2 at threads=1 forces the pipeline (no serial delegation), so
    // the 1-thread row tests the engine, not the fallback.
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      const SimResult sharded = simulate_sharded(
          sparse, capacity, spec, options,
          exact_config(threads, threads == 1 ? 2 : 0));
      expect_identical(serial, sharded,
                       name + " sparse threads=" + std::to_string(threads));
      const SimResult sharded_dense = simulate_sharded(
          dense, capacity, spec, options,
          exact_config(threads, threads == 1 ? 2 : 0));
      expect_identical(serial, sharded_dense,
                       name + " dense threads=" + std::to_string(threads));
    }
  }
}

TEST(ShardedReplayExact, ShardCountNeverChangesTheResult) {
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 50;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");
  const SimulatorOptions options;
  const SimResult serial = simulate(sparse, capacity, spec, options);
  for (const std::uint32_t shards : {2u, 3u, 7u, 16u}) {
    expect_identical(serial,
                     simulate_sharded(sparse, capacity, spec, options,
                                      exact_config(2, shards)),
                     "shards=" + std::to_string(shards));
  }
}

TEST(ShardedReplayExact, MatchesSerialUnderEveryModificationRule) {
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 50;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");

  for (const ModificationRule rule :
       {ModificationRule::kThreshold, ModificationRule::kAnyChange,
        ModificationRule::kNever}) {
    SimulatorOptions options;
    options.modification_rule = rule;
    const std::string label = "rule " + std::to_string(static_cast<int>(rule));
    const SimResult serial = simulate(sparse, capacity, spec, options);
    expect_identical(serial,
                     simulate_sharded(sparse, capacity, spec, options,
                                      exact_config(4, 0)),
                     label + " sparse");
    expect_identical(serial,
                     simulate_sharded(dense, capacity, spec, options,
                                      exact_config(4, 0)),
                     label + " dense");
  }
}

TEST(ShardedReplayExact, MatchesSerialWithAndWithoutWarmup) {
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("FIFO");
  for (const double warmup : {0.0, 0.10, 0.50}) {
    SimulatorOptions options;
    options.warmup_fraction = warmup;
    const SimResult serial = simulate(sparse, capacity, spec, options);
    expect_identical(serial,
                     simulate_sharded(sparse, capacity, spec, options,
                                      exact_config(3, 0)),
                     "warmup=" + std::to_string(warmup));
  }
}

TEST(ShardedReplayExact, OversizedCacheAndTinyCacheEdges) {
  const trace::Trace sparse = recorded_trace();
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");
  const SimulatorOptions options;
  // Everything fits: no evictions at all.
  const std::uint64_t huge = sparse.overall_size_bytes() * 2;
  expect_identical(simulate(sparse, huge, spec, options),
                   simulate_sharded(sparse, huge, spec, options,
                                    exact_config(4, 0)),
                   "oversized");
  // Smaller than most transfers: the admission check bypasses constantly.
  expect_identical(simulate(sparse, 4096, spec, options),
                   simulate_sharded(sparse, 4096, spec, options,
                                    exact_config(4, 0)),
                   "tiny");
}

TEST(ShardedReplayExact, SingleThreadAutoShardsDelegatesToSerialPath) {
  // threads=1 with auto shards is documented to BE the serial simulate():
  // same code path, so trivially identical — the cheap spelling the CLI
  // uses for --threads=1.
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");
  const SimulatorOptions options;
  expect_identical(simulate(sparse, capacity, spec, options),
                   simulate_sharded(sparse, capacity, spec, options,
                                    exact_config(1, 0)),
                   "delegated");
}

TEST(ShardedReplayExact, MatchesSerialOnTheGoldenFixture) {
  // The checked-in golden DFN trace (the workload whose exact counters
  // tests/integration/golden_trace_test.cpp pins) replayed through the
  // sharded engine: identical to serial, which transitively pins the
  // sharded counters to the golden file.
  const trace::Trace golden = trace::read_binary_trace_file(
      std::string(WEBCACHE_TEST_DATA_DIR) + "/golden_dfn.wct");
  const trace::DenseTrace dense = trace::densify(golden);
  const std::uint64_t capacity = static_cast<std::uint64_t>(
      static_cast<double>(golden.overall_size_bytes()) * 0.04);
  const SimulatorOptions options;
  for (const std::string name : {"LRU", "FIFO", "LRU-THOLD(300000)"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult serial = simulate(golden, capacity, spec, options);
    expect_identical(serial,
                     simulate_sharded(golden, capacity, spec, options,
                                      exact_config(4, 0)),
                     "golden sparse " + name);
    expect_identical(serial,
                     simulate_sharded(dense, capacity, spec, options,
                                      exact_config(4, 0)),
                     "golden dense " + name);
  }
}

TEST(ShardedReplayExact, MatchesSerialForReadOnlyHitPathPolicies) {
  // RANDOM / CLOCK / DELAY-CLOCK replay a real policy instance inside the
  // serial resolve stage. The same thread/shard matrix as the LRU family:
  // bit-identical to serial on both representations — for RANDOM this also
  // proves the draw stream is consumed identically (one draw per eviction,
  // position-based), since a single extra or missing draw would cascade.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const SimulatorOptions options;

  for (const std::string name :
       {"RANDOM:seed=5", "CLOCK", "DELAY-CLOCK:k=3"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult serial = simulate(sparse, capacity, spec, options);
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      const SimResult sharded = simulate_sharded(
          sparse, capacity, spec, options,
          exact_config(threads, threads == 1 ? 2 : 0));
      expect_identical(serial, sharded,
                       name + " sparse threads=" + std::to_string(threads));
      const SimResult sharded_dense = simulate_sharded(
          dense, capacity, spec, options,
          exact_config(threads, threads == 1 ? 2 : 0));
      expect_identical(serial, sharded_dense,
                       name + " dense threads=" + std::to_string(threads));
    }
  }
}

TEST(ShardedReplayExact, ShardCountNeverChangesRandomOrClock) {
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 50;
  const SimulatorOptions options;
  for (const std::string name : {"RANDOM:seed=5", "DELAY-CLOCK:k=2"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult serial = simulate(sparse, capacity, spec, options);
    for (const std::uint32_t shards : {2u, 3u, 7u, 16u}) {
      expect_identical(serial,
                       simulate_sharded(sparse, capacity, spec, options,
                                        exact_config(2, shards)),
                       name + " shards=" + std::to_string(shards));
    }
  }
}

// ---- configuration errors -------------------------------------------------

TEST(ShardedReplayConfig, ExactModeRejectsHeapOrderedPolicies) {
  for (const std::string name : {"GDS(1)", "GDSF(1)", "GD*(1)", "LFU-DA"}) {
    EXPECT_THROW(ShardedReplay(1 << 20, cache::policy_spec_from_name(name),
                               SimulatorOptions{}, exact_config(4, 0)),
                 std::invalid_argument)
        << name;
  }
}

TEST(ShardedReplayConfig, ExactModeRejectsPromotionMutatingLazyLru) {
  // The lazy-LRU promotion variants write the recency order on hits, so
  // they are explicitly outside the exact engine's contract — the ctor
  // must refuse rather than silently approximate.
  for (const std::string name :
       {"PROB-LRU:p=0.5", "DELAY-LRU:k=8", "BATCH-LRU:batch=16"}) {
    EXPECT_THROW(ShardedReplay(1 << 20, cache::policy_spec_from_name(name),
                               SimulatorOptions{}, exact_config(4, 0)),
                 std::invalid_argument)
        << name;
  }
}

TEST(ShardedReplayApproxLazy, LazyLruRunsInApproxMode) {
  // ...but all three are fine in approx mode: deterministic, thread-count
  // invariant, and representation-agnostic like every other policy there.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const SimulatorOptions options;
  for (const std::string name :
       {"PROB-LRU:p=0.5", "DELAY-LRU:k=8", "BATCH-LRU:batch=16"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    ShardedConfig config;
    config.mode = ShardedMode::kApprox;
    config.shards = 8;
    config.threads = 2;
    const SimResult a = simulate_sharded(sparse, capacity, spec, options,
                                         config);
    config.threads = 4;
    expect_identical(a, simulate_sharded(sparse, capacity, spec, options,
                                         config),
                     name + " thread invariance");
    expect_identical(a, simulate_sharded(dense, capacity, spec, options,
                                         config),
                     name + " dense agreement");
    EXPECT_EQ(a.overall.requests,
              simulate(sparse, capacity, spec, options).overall.requests)
        << name;
  }
}

TEST(ShardedReplayConfig, RejectsOccupancySampling) {
  SimulatorOptions options;
  options.occupancy_samples = 8;
  EXPECT_THROW(ShardedReplay(1 << 20, cache::policy_spec_from_name("LRU"),
                             options, exact_config(4, 0)),
               std::invalid_argument);
}

TEST(ShardedReplayConfig, ExactEligibilityIsTheReadOnlyHitPathSet) {
  const SimulatorOptions options;
  for (const std::string name : {"LRU", "FIFO", "LRU-THOLD(300)", "RANDOM",
                                 "CLOCK", "DELAY-CLOCK:k=4"}) {
    EXPECT_TRUE(ShardedReplay::exact_eligible(
        cache::policy_spec_from_name(name), options))
        << name;
  }
  for (const std::string name : {"GDS(1)", "GDSF(packet)", "GD*(1)", "SIZE",
                                  "LFU", "LFU-DA", "LRU-MIN", "LRU-2",
                                  "PROB-LRU:p=0.5", "DELAY-LRU:k=8",
                                  "BATCH-LRU:batch=16"}) {
    EXPECT_FALSE(ShardedReplay::exact_eligible(
        cache::policy_spec_from_name(name), options))
        << name;
  }
}

TEST(ShardedReplayConfig, ApproxModeRejectsInstrumentedRuns) {
  const trace::Trace sparse = recorded_trace();
  ShardedConfig config;
  config.mode = ShardedMode::kApprox;
  config.threads = 2;
  obs::RecordingSink sink(500);
  ShardedReplay engine(1 << 20, cache::policy_spec_from_name("GDSF(1)"),
                       SimulatorOptions{}, config);
  EXPECT_THROW(engine.run(sparse, sink), std::invalid_argument);
}

TEST(ShardedReplayConfig, ValidatesSimulatorOptionsLikeSimulate) {
  SimulatorOptions options;
  options.modification_threshold = 0.0;  // simulate() rejects this too
  EXPECT_THROW(ShardedReplay(1 << 20, cache::policy_spec_from_name("LRU"),
                             options, exact_config(4, 0)),
               std::invalid_argument);
}

// ---- approximate mode -----------------------------------------------------

ShardedConfig approx_config(std::uint32_t threads, std::uint32_t shards,
                            std::uint64_t rebalance = 0) {
  ShardedConfig config;
  config.threads = threads;
  config.shards = shards;
  config.mode = ShardedMode::kApprox;
  config.rebalance_interval = rebalance;
  return config;
}

TEST(ShardedReplayApprox, IsDeterministicAndThreadCountInvariant) {
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GDSF(1)");
  const SimulatorOptions options;

  const SimResult one = simulate_sharded(sparse, capacity, spec, options,
                                         approx_config(1, 8));
  for (const std::uint32_t threads : {2u, 4u, 8u}) {
    expect_identical(one,
                     simulate_sharded(sparse, capacity, spec, options,
                                      approx_config(threads, 8)),
                     "threads=" + std::to_string(threads));
  }
}

TEST(ShardedReplayApprox, SparseAndDenseAgree) {
  // Approx shards by the pre-densification id, so densify() cannot move a
  // document to another shard and both representations run the same
  // per-shard experiments.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const SimulatorOptions options;
  for (const std::string name : {"GDSF(1)", "GD*(packet)", "LFU-DA"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    expect_identical(simulate_sharded(sparse, capacity, spec, options,
                                      approx_config(4, 0)),
                     simulate_sharded(dense, capacity, spec, options,
                                      approx_config(4, 0)),
                     name);
  }
}

TEST(ShardedReplayApprox, DivergenceFromSerialIsBounded) {
  // The documented approximation bound: per-shard quotas distort hit rates
  // but not wildly. Request conservation is exact (partitioning never
  // drops a request); the hit-rate divergence stays within a few points on
  // the reference workload.
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const SimulatorOptions options;
  for (const std::string name : {"GDSF(1)", "GD*(1)", "LFU-DA", "GDS(1)"}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult serial = simulate(sparse, capacity, spec, options);
    const SimResult approx = simulate_sharded(sparse, capacity, spec, options,
                                              approx_config(4, 0));
    EXPECT_EQ(serial.overall.requests, approx.overall.requests) << name;
    EXPECT_EQ(serial.overall.requested_bytes, approx.overall.requested_bytes)
        << name;
    EXPECT_EQ(serial.measured_requests, approx.measured_requests) << name;
    EXPECT_NEAR(serial.overall.hit_rate(), approx.overall.hit_rate(), 0.05)
        << name;
    EXPECT_NEAR(serial.overall.byte_hit_rate(), approx.overall.byte_hit_rate(),
                0.05)
        << name;
  }
}

TEST(ShardedReplayApprox, RebalancingIsDeterministic) {
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GDSF(1)");
  const SimulatorOptions options;

  const SimResult a = simulate_sharded(sparse, capacity, spec, options,
                                       approx_config(2, 8, 5000));
  const SimResult b = simulate_sharded(sparse, capacity, spec, options,
                                       approx_config(4, 8, 5000));
  expect_identical(a, b, "rebalance thread invariance");
  EXPECT_EQ(a.overall.requests,
            simulate(sparse, capacity, spec, options).overall.requests);
}

TEST(ShardedReplayApprox, SingleShardIsExactlySerial) {
  // One shard gets the whole budget and replays the whole trace in order —
  // the approximation vanishes, so the engine delegates to simulate().
  const trace::Trace sparse = recorded_trace();
  const std::uint64_t capacity = sparse.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(1)");
  const SimulatorOptions options;
  expect_identical(simulate(sparse, capacity, spec, options),
                   simulate_sharded(sparse, capacity, spec, options,
                                    approx_config(4, 1)),
                   "single shard");
}

}  // namespace
}  // namespace webcache::sim
