#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::sim {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc, std::uint64_t size,
            DocumentClass cls = DocumentClass::kOther) {
  Request r;
  r.document = doc;
  r.doc_class = cls;
  r.document_size = size;
  r.transfer_size = size;
  return r;
}

cache::PolicySpec lru() {
  cache::PolicySpec spec;
  spec.kind = cache::PolicyKind::kLru;
  return spec;
}

SimulatorOptions no_warmup() {
  SimulatorOptions opts;
  opts.warmup_fraction = 0.0;
  return opts;
}

TEST(Simulator, RejectsBadOptions) {
  Trace t;
  t.requests = {req(1, 10)};
  SimulatorOptions bad;
  bad.warmup_fraction = 1.0;
  EXPECT_THROW(simulate(t, 100, lru(), bad), std::invalid_argument);
  bad = SimulatorOptions{};
  bad.modification_threshold = 0.0;
  EXPECT_THROW(simulate(t, 100, lru(), bad), std::invalid_argument);
}

TEST(Simulator, BasicHitAccounting) {
  Trace t;
  t.requests = {req(1, 10), req(1, 10), req(2, 20), req(1, 10)};
  const SimResult r = simulate(t, 100, lru(), no_warmup());
  EXPECT_EQ(r.overall.requests, 4u);
  EXPECT_EQ(r.overall.hits, 2u);
  EXPECT_EQ(r.overall.requested_bytes, 50u);
  EXPECT_EQ(r.overall.hit_bytes, 20u);
  EXPECT_EQ(r.measured_requests, 4u);
  EXPECT_EQ(r.warmup_requests, 0u);
}

TEST(Simulator, PerClassAccountingIndependent) {
  Trace t;
  t.requests = {
      req(1, 10, DocumentClass::kImage), req(1, 10, DocumentClass::kImage),
      req(2, 1000, DocumentClass::kMultiMedia),
      req(2, 1000, DocumentClass::kMultiMedia),
      req(3, 50, DocumentClass::kHtml)};
  const SimResult r = simulate(t, 10000, lru(), no_warmup());
  EXPECT_DOUBLE_EQ(r.of(DocumentClass::kImage).hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.of(DocumentClass::kMultiMedia).hit_rate(), 0.5);
  EXPECT_DOUBLE_EQ(r.of(DocumentClass::kHtml).hit_rate(), 0.0);
  EXPECT_EQ(r.of(DocumentClass::kApplication).requests, 0u);
  // "the hit rate on images is ... hits on images / requested images".
  EXPECT_EQ(r.of(DocumentClass::kImage).requests, 2u);
}

TEST(Simulator, WarmupExcludedFromStats) {
  // 10 requests, 10% warmup -> first request unmeasured.
  Trace t;
  for (int i = 0; i < 10; ++i) t.requests.push_back(req(1, 10));
  SimulatorOptions opts;
  opts.warmup_fraction = 0.10;
  const SimResult r = simulate(t, 100, lru(), opts);
  EXPECT_EQ(r.warmup_requests, 1u);
  EXPECT_EQ(r.measured_requests, 9u);
  EXPECT_EQ(r.overall.requests, 9u);
  // The warmup request inserted the document, so all 9 measured are hits.
  EXPECT_EQ(r.overall.hits, 9u);
}

TEST(Simulator, WarmupImprovesMeasuredHitRate) {
  Trace t;
  for (int i = 0; i < 100; ++i) t.requests.push_back(req(i % 10, 10));
  SimulatorOptions cold = no_warmup();
  SimulatorOptions warm;
  warm.warmup_fraction = 0.10;
  const double cold_hr = simulate(t, 1000, lru(), cold).overall.hit_rate();
  const double warm_hr = simulate(t, 1000, lru(), warm).overall.hit_rate();
  EXPECT_GT(warm_hr, cold_hr);
  EXPECT_DOUBLE_EQ(warm_hr, 1.0);  // all compulsory misses fall in warmup
}

TEST(Simulator, ModificationRuleSmallChangeIsMiss) {
  // <5% size change => modification => miss (paper, Section 4.1).
  Trace t;
  t.requests = {req(1, 1000), req(1, 1040)};  // +4%
  const SimResult r = simulate(t, 10000, lru(), no_warmup());
  EXPECT_EQ(r.overall.hits, 0u);
  EXPECT_EQ(r.modification_misses, 1u);
  EXPECT_EQ(r.interrupted_transfers, 0u);
}

TEST(Simulator, InterruptedTransferStaysHit) {
  // >=5% size change => interrupted transfer => cached copy stays valid.
  Trace t;
  t.requests = {req(1, 1000), req(1, 300)};  // -70%
  const SimResult r = simulate(t, 10000, lru(), no_warmup());
  EXPECT_EQ(r.overall.hits, 1u);
  EXPECT_EQ(r.modification_misses, 0u);
  EXPECT_EQ(r.interrupted_transfers, 1u);
  // Byte accounting uses the trace-recorded (transferred) size.
  EXPECT_EQ(r.overall.hit_bytes, 300u);
}

TEST(Simulator, SizeTrackingFollowsLatestSize) {
  // 1000 -> 300 (interrupt, hit) -> 310 (<5% of 300: modification, miss).
  Trace t;
  t.requests = {req(1, 1000), req(1, 300), req(1, 310)};
  const SimResult r = simulate(t, 10000, lru(), no_warmup());
  EXPECT_EQ(r.overall.hits, 1u);
  EXPECT_EQ(r.modification_misses, 1u);
  EXPECT_EQ(r.interrupted_transfers, 1u);
}

TEST(Simulator, AnyChangeRuleTreatsInterruptsAsModifications) {
  Trace t;
  t.requests = {req(1, 1000), req(1, 300), req(1, 300)};
  SimulatorOptions opts = no_warmup();
  opts.modification_rule = ModificationRule::kAnyChange;
  const SimResult r = simulate(t, 10000, lru(), opts);
  // Second request: size changed -> modification miss. Third: same size,
  // plain hit.
  EXPECT_EQ(r.overall.hits, 1u);
  EXPECT_EQ(r.modification_misses, 1u);
  EXPECT_EQ(r.interrupted_transfers, 0u);
}

TEST(Simulator, NeverRuleIgnoresAllChanges) {
  Trace t;
  t.requests = {req(1, 1000), req(1, 1040), req(1, 300)};
  SimulatorOptions opts = no_warmup();
  opts.modification_rule = ModificationRule::kNever;
  const SimResult r = simulate(t, 10000, lru(), opts);
  EXPECT_EQ(r.overall.hits, 2u);
  EXPECT_EQ(r.modification_misses, 0u);
}

TEST(Simulator, SizeTrackingSpansEviction) {
  // The modification state is global (the paper's simulator tracks every
  // document in the trace), so a document evicted in between is still
  // recognized as modified.
  Trace t;
  t.requests = {req(1, 1000), req(2, 1000), req(1, 1040)};
  const SimResult r = simulate(t, 1000, lru(), no_warmup());  // 1 slot
  EXPECT_EQ(r.overall.hits, 0u);
  // Document 1 was NOT resident when its modification was seen.
  EXPECT_EQ(r.modification_misses, 0u);
}

TEST(Simulator, BypassCounted) {
  Trace t;
  t.requests = {req(1, 10), req(2, 5000)};
  const SimResult r = simulate(t, 100, lru(), no_warmup());
  EXPECT_EQ(r.bypasses, 1u);
  EXPECT_EQ(r.overall.requests, 2u);
  EXPECT_EQ(r.overall.hits, 0u);
}

TEST(Simulator, EvictionsReported) {
  Trace t;
  for (int i = 0; i < 20; ++i) t.requests.push_back(req(i, 10));
  const SimResult r = simulate(t, 100, lru(), no_warmup());
  EXPECT_EQ(r.evictions, 10u);
}

TEST(Simulator, OccupancySeriesRecorded) {
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.requests.push_back(req(i, 10, DocumentClass::kImage));
  }
  SimulatorOptions opts = no_warmup();
  opts.occupancy_samples = 10;
  const SimResult r = simulate(t, 10000, lru(), opts);
  ASSERT_EQ(r.occupancy_series.size(), 10u);
  EXPECT_EQ(r.occupancy_series.front().request_index, 10u);
  EXPECT_EQ(r.occupancy_series.back().request_index, 100u);
  EXPECT_DOUBLE_EQ(
      r.occupancy_series.back().occupancy.object_fraction(DocumentClass::kImage),
      1.0);
}

TEST(Simulator, PolicyNameAndCapacityRecorded) {
  Trace t;
  t.requests = {req(1, 10)};
  const SimResult r = simulate(t, 12345, lru(), no_warmup());
  EXPECT_EQ(r.policy_name, "LRU");
  EXPECT_EQ(r.capacity_bytes, 12345u);
}

TEST(Simulator, EmptyTrace) {
  const SimResult r = simulate(Trace{}, 100, lru(), {});
  EXPECT_EQ(r.overall.requests, 0u);
  EXPECT_EQ(r.overall.hit_rate(), 0.0);
}

}  // namespace
}  // namespace webcache::sim
