// Curve-sanity properties of the one-pass LRU path. The stack inclusion
// property (every request fits in every capacity on this path, so resident
// sets are nested) implies the hit-rate and byte-hit-rate curves are
// monotone non-decreasing in capacity; and since per-class counters are
// just a partition of the same request stream, they must sum to the overall
// counters at every capacity. Both hold for every modification rule and
// across fuzzed workload seeds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stack_sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"

namespace webcache::sim {
namespace {

trace::Trace fuzzed_trace(std::uint64_t seed) {
  synth::GeneratorOptions options;
  options.seed = seed;
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002),
                                  options);
  return generator.generate();
}

/// A dense ascending capacity ladder starting at the smallest capacity the
/// engine accepts for this trace.
std::vector<std::uint64_t> ascending_ladder(const trace::Trace& trace) {
  const std::uint64_t floor = StackSweep::max_transfer_size(trace);
  const std::uint64_t overall = trace.overall_size_bytes();
  std::vector<std::uint64_t> capacities = {floor};
  for (const double fraction :
       {0.002, 0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.40, 1.0}) {
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(overall) * fraction);
    if (capacity > capacities.back()) capacities.push_back(capacity);
  }
  return capacities;
}

void expect_curves_monotone(const std::vector<SimResult>& curve,
                            const std::string& label) {
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const std::string at = label + " capacities " +
                           std::to_string(curve[i - 1].capacity_bytes) +
                           " -> " + std::to_string(curve[i].capacity_bytes);
    EXPECT_GE(curve[i].overall.hits, curve[i - 1].overall.hits) << at;
    EXPECT_GE(curve[i].overall.hit_bytes, curve[i - 1].overall.hit_bytes)
        << at;
    // Requests are capacity-independent, so monotone hits are monotone
    // rates; check the rates too since they are what the figures plot.
    EXPECT_GE(curve[i].overall.hit_rate(), curve[i - 1].overall.hit_rate())
        << at;
    EXPECT_GE(curve[i].overall.byte_hit_rate(),
              curve[i - 1].overall.byte_hit_rate())
        << at;
  }
}

void expect_classes_sum_to_overall(const std::vector<SimResult>& curve,
                                   const std::string& label) {
  for (const SimResult& r : curve) {
    HitCounters sum;
    for (const HitCounters& cls : r.per_class) {
      sum.requests += cls.requests;
      sum.hits += cls.hits;
      sum.requested_bytes += cls.requested_bytes;
      sum.hit_bytes += cls.hit_bytes;
    }
    const std::string at =
        label + " capacity " + std::to_string(r.capacity_bytes);
    EXPECT_EQ(sum.requests, r.overall.requests) << at;
    EXPECT_EQ(sum.hits, r.overall.hits) << at;
    EXPECT_EQ(sum.requested_bytes, r.overall.requested_bytes) << at;
    EXPECT_EQ(sum.hit_bytes, r.overall.hit_bytes) << at;
  }
}

TEST(StackSweepProperty, CurvesMonotoneAndClassesPartitionTheStream) {
  for (const std::uint64_t seed : {42u, 7u, 20020607u}) {
    const trace::Trace trace = fuzzed_trace(seed);
    const std::vector<std::uint64_t> capacities = ascending_ladder(trace);
    ASSERT_GE(capacities.size(), 3u) << "seed " << seed;
    for (const ModificationRule rule :
         {ModificationRule::kThreshold, ModificationRule::kAnyChange,
          ModificationRule::kNever}) {
      SimulatorOptions options;
      options.modification_rule = rule;
      const std::string label = "seed " + std::to_string(seed) + " rule " +
                                std::to_string(static_cast<int>(rule));
      const std::vector<SimResult> curve =
          StackSweep(capacities, options).run(trace);
      expect_curves_monotone(curve, label);
      expect_classes_sum_to_overall(curve, label);
    }
  }
}

TEST(StackSweepProperty, FullSizeCacheNeverEvicts) {
  // A cache as large as all requested bytes holds every stored copy (each
  // resident copy is some past transfer of a distinct document), so the
  // curve's right end must be the compulsory-miss bound with no evictions.
  const trace::Trace trace = fuzzed_trace(42);
  std::vector<std::uint64_t> capacities = ascending_ladder(trace);
  capacities.push_back(trace.requested_bytes());
  SimulatorOptions options;
  options.modification_rule = ModificationRule::kNever;
  const std::vector<SimResult> curve =
      StackSweep(capacities, options).run(trace);
  EXPECT_EQ(curve.back().evictions, 0u);
}

}  // namespace
}  // namespace webcache::sim
