// Differential equivalence for the one-pass LRU engine: every SimResult
// StackSweep produces must equal per-capacity sim::simulate() with an LRU
// policy bit-for-bit — overall and per-class, hit and byte-hit counters,
// evictions, modification misses, even the latency doubles (same additions
// in the same order) — sparse and dense, on the golden fixture and on
// fuzzed synthetic mixes across all modification rules. The run_sweep
// integration is covered too: one-pass on/off/auto yield identical
// SweepResults with mixed policy sets, including capacities that must fall
// back to the grid.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/stack_sweep.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/binary_trace.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::sim {
namespace {

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const SimResult& expected, const SimResult& actual,
                      const std::string& label) {
  EXPECT_EQ(expected.policy_name, actual.policy_name) << label;
  EXPECT_EQ(expected.capacity_bytes, actual.capacity_bytes) << label;
  expect_identical_counters(expected.overall, actual.overall, label);
  for (std::size_t c = 0; c < expected.per_class.size(); ++c) {
    expect_identical_counters(expected.per_class[c], actual.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(expected.warmup_requests, actual.warmup_requests) << label;
  EXPECT_EQ(expected.measured_requests, actual.measured_requests) << label;
  EXPECT_EQ(expected.evictions, actual.evictions) << label;
  EXPECT_EQ(expected.bypasses, actual.bypasses) << label;
  // Same doubles added in the same order: exact equality is correct.
  EXPECT_EQ(expected.miss_latency_ms, actual.miss_latency_ms) << label;
  EXPECT_EQ(expected.all_miss_latency_ms, actual.all_miss_latency_ms) << label;
  EXPECT_EQ(expected.modification_misses, actual.modification_misses) << label;
  EXPECT_EQ(expected.interrupted_transfers, actual.interrupted_transfers)
      << label;
  EXPECT_TRUE(actual.occupancy_series.empty()) << label;
}

trace::Trace recorded_trace(std::uint64_t seed = 42) {
  synth::GeneratorOptions options;
  options.seed = seed;
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002),
                                  options);
  return generator.generate();
}

/// The paper's capacity ladder for this trace, restricted to capacities the
/// one-pass engine accepts (>= largest transfer size).
std::vector<std::uint64_t> eligible_ladder(const trace::Trace& trace) {
  const std::uint64_t largest = StackSweep::max_transfer_size(trace);
  std::vector<std::uint64_t> capacities;
  for (const double fraction :
       {0.005, 0.01, 0.02, 0.04, 0.08, 0.16, 0.40}) {
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(trace.overall_size_bytes()) * fraction);
    if (capacity >= largest) capacities.push_back(capacity);
  }
  return capacities;
}

void expect_matches_simulate(const trace::Trace& sparse,
                             const std::vector<std::uint64_t>& capacities,
                             const SimulatorOptions& options,
                             const std::string& label) {
  const trace::DenseTrace dense = trace::densify(sparse);
  const StackSweep sweep(capacities, options);
  const std::vector<SimResult> one_pass_sparse = sweep.run(sparse);
  const std::vector<SimResult> one_pass_dense = sweep.run(dense);
  ASSERT_EQ(one_pass_sparse.size(), capacities.size());
  ASSERT_EQ(one_pass_dense.size(), capacities.size());

  const cache::PolicySpec lru = cache::policy_spec_from_name("LRU");
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const SimResult reference = simulate(sparse, capacities[i], lru, options);
    const std::string cell =
        label + " capacity " + std::to_string(capacities[i]);
    expect_identical(reference, one_pass_sparse[i], cell + " (sparse)");
    expect_identical(reference, one_pass_dense[i], cell + " (dense)");
  }
}

TEST(StackSweep, MatchesSimulateAcrossTheLadder) {
  const trace::Trace trace = recorded_trace();
  const std::vector<std::uint64_t> capacities = eligible_ladder(trace);
  ASSERT_FALSE(capacities.empty());
  expect_matches_simulate(trace, capacities, SimulatorOptions{}, "default");
}

TEST(StackSweep, MatchesSimulateUnderEveryModificationRule) {
  const trace::Trace trace = recorded_trace();
  const std::vector<std::uint64_t> capacities = eligible_ladder(trace);
  for (const ModificationRule rule :
       {ModificationRule::kThreshold, ModificationRule::kAnyChange,
        ModificationRule::kNever}) {
    SimulatorOptions options;
    options.modification_rule = rule;
    expect_matches_simulate(trace, capacities, options,
                            "rule " + std::to_string(static_cast<int>(rule)));
  }
}

TEST(StackSweep, MatchesSimulateOnFuzzedMixes) {
  // Fuzzed seeds shuffle the popularity draws, size distributions, and the
  // modification/interruption injections — fresh divergence patterns each
  // time (a hit after an interrupted transfer leaves a stale stored size in
  // exactly the capacities where it hit).
  for (const std::uint64_t seed : {7u, 1234u, 999983u}) {
    const trace::Trace trace = recorded_trace(seed);
    const std::vector<std::uint64_t> capacities = eligible_ladder(trace);
    ASSERT_FALSE(capacities.empty()) << "seed " << seed;
    SimulatorOptions options;
    options.warmup_fraction = 0.25;  // off-default warm-up boundary
    expect_matches_simulate(trace, capacities, options,
                            "seed " + std::to_string(seed));
  }
}

TEST(StackSweep, MatchesSimulateAtEveryGoldenCapacity) {
  // The checked-in golden fixture (tests/integration/golden_trace_test.cpp)
  // replayed at every paper-ladder capacity the engine accepts.
  const trace::Trace trace = trace::read_binary_trace_file(
      std::string(WEBCACHE_TEST_DATA_DIR) + "/golden_dfn.wct");
  ASSERT_EQ(trace.total_requests(), 6718u);
  const std::vector<std::uint64_t> capacities = eligible_ladder(trace);
  ASSERT_FALSE(capacities.empty());
  expect_matches_simulate(trace, capacities, SimulatorOptions{}, "golden");
}

TEST(StackSweep, RejectsCapacityBelowLargestTransfer) {
  const trace::Trace trace = recorded_trace();
  const std::uint64_t largest = StackSweep::max_transfer_size(trace);
  ASSERT_GT(largest, 1u);
  const StackSweep sweep({largest - 1}, SimulatorOptions{});
  EXPECT_THROW(sweep.run(trace), std::invalid_argument);
  EXPECT_THROW(sweep.run(trace::densify(trace)), std::invalid_argument);
}

TEST(StackSweep, RejectsNonStackSafeOptions) {
  SimulatorOptions options;
  options.occupancy_samples = 4;
  EXPECT_FALSE(StackSweep::options_stack_safe(options));
  EXPECT_THROW(StackSweep({1 << 20}, options), std::invalid_argument);
  EXPECT_THROW(StackSweep({}, SimulatorOptions{}), std::invalid_argument);
}

// ---- run_sweep integration ----

void expect_identical_sweeps(const SweepResult& a, const SweepResult& b,
                             const std::string& label) {
  ASSERT_EQ(a.points.size(), b.points.size()) << label;
  EXPECT_EQ(a.overall_size_bytes, b.overall_size_bytes) << label;
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    ASSERT_EQ(a.points[f].results.size(), b.points[f].results.size()) << label;
    EXPECT_EQ(a.points[f].capacity_bytes, b.points[f].capacity_bytes) << label;
    for (std::size_t p = 0; p < a.points[f].results.size(); ++p) {
      expect_identical(a.points[f].results[p], b.points[f].results[p],
                       label + " cell f" + std::to_string(f) + " p" +
                           std::to_string(p));
    }
  }
}

TEST(StackSweepIntegration, OnePassModesAgreeOnMixedPolicyGrids) {
  // The default ladder's smallest fractions sit below the largest transfer
  // size on this trace or not — either way the one-pass run must partition
  // correctly and agree with the all-grid run, for LRU and non-LRU columns.
  const trace::Trace sparse = recorded_trace();
  const trace::DenseTrace dense = trace::densify(sparse);

  SweepConfig config;
  config.policies = cache::paper_policy_set(cache::CostModelKind::kPacket);
  config.threads = 2;

  config.one_pass = OnePassMode::kOff;
  const SweepResult grid = run_sweep(sparse, config);
  config.one_pass = OnePassMode::kAuto;
  const SweepResult auto_sparse = run_sweep(sparse, config);
  const SweepResult auto_dense = run_sweep(dense, config);
  config.one_pass = OnePassMode::kOn;
  const SweepResult on_sparse = run_sweep(sparse, config);

  expect_identical_sweeps(grid, auto_sparse, "auto sparse");
  expect_identical_sweeps(grid, auto_dense, "auto dense");
  expect_identical_sweeps(grid, on_sparse, "on sparse");
}

TEST(StackSweepIntegration, FallsBackWhenOptionsAreNotStackSafe) {
  const trace::Trace trace = recorded_trace();

  SweepConfig config;
  config.cache_fractions = {0.02, 0.08};
  config.policies = {cache::policy_spec_from_name("LRU")};
  config.simulator.occupancy_samples = 4;  // grid-only territory

  config.one_pass = OnePassMode::kOff;
  const SweepResult grid = run_sweep(trace, config);
  config.one_pass = OnePassMode::kAuto;
  const SweepResult fallback = run_sweep(trace, config);

  ASSERT_EQ(grid.points.size(), fallback.points.size());
  for (std::size_t f = 0; f < grid.points.size(); ++f) {
    // Occupancy snapshots only exist on the grid path, so their presence
    // proves the fallback ran — and the series must match the baseline.
    ASSERT_FALSE(fallback.points[f].results[0].occupancy_series.empty());
    EXPECT_EQ(grid.points[f].results[0].occupancy_series.size(),
              fallback.points[f].results[0].occupancy_series.size());
    EXPECT_EQ(grid.points[f].results[0].overall.hits,
              fallback.points[f].results[0].overall.hits);
  }
}

}  // namespace
}  // namespace webcache::sim
