// The streaming replay must be a pure delivery change: driving the same
// requests through simulate_stream() in chunks of any size has to yield
// byte-identical SimResults to materializing them and calling simulate() —
// for every factory policy, with metrics windows and fault schedules that
// straddle chunk boundaries, and through the bounded online densifier.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "cache/frontend.hpp"
#include "obs/stats_sink.hpp"
#include "sim/faults.hpp"
#include "sim/reporter.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/binary_trace.hpp"
#include "trace/request_stream.hpp"
#include "trace/streaming_trace.hpp"

namespace webcache::sim {
namespace {

// Chunk size 0 = whole trace in one span; 1 = one request per chunk (every
// boundary condition), 7 = misaligned with every window/event interval.
const std::vector<std::size_t> kChunkings = {1, 7, 4096, 0};

void expect_identical_counters(const HitCounters& a, const HitCounters& b,
                               const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.requested_bytes, b.requested_bytes) << label;
  EXPECT_EQ(a.hit_bytes, b.hit_bytes) << label;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.policy_name, b.policy_name) << label;
  EXPECT_EQ(a.capacity_bytes, b.capacity_bytes) << label;
  expect_identical_counters(a.overall, b.overall, label);
  for (std::size_t c = 0; c < a.per_class.size(); ++c) {
    expect_identical_counters(a.per_class[c], b.per_class[c],
                              label + " class " + std::to_string(c));
  }
  EXPECT_EQ(a.warmup_requests, b.warmup_requests) << label;
  EXPECT_EQ(a.measured_requests, b.measured_requests) << label;
  EXPECT_EQ(a.evictions, b.evictions) << label;
  EXPECT_EQ(a.bypasses, b.bypasses) << label;
  // The latency sums accumulate the same doubles in the same order, so
  // exact equality is the correct expectation.
  EXPECT_EQ(a.miss_latency_ms, b.miss_latency_ms) << label;
  EXPECT_EQ(a.all_miss_latency_ms, b.all_miss_latency_ms) << label;
  EXPECT_EQ(a.modification_misses, b.modification_misses) << label;
  EXPECT_EQ(a.interrupted_transfers, b.interrupted_transfers) << label;
  ASSERT_EQ(a.occupancy_series.size(), b.occupancy_series.size()) << label;
  for (std::size_t i = 0; i < a.occupancy_series.size(); ++i) {
    const OccupancySample& sa = a.occupancy_series[i];
    const OccupancySample& sb = b.occupancy_series[i];
    EXPECT_EQ(sa.request_index, sb.request_index) << label;
    EXPECT_EQ(sa.occupancy.total_objects, sb.occupancy.total_objects)
        << label;
    EXPECT_EQ(sa.occupancy.total_bytes, sb.occupancy.total_bytes) << label;
    EXPECT_EQ(sa.occupancy.objects, sb.occupancy.objects) << label;
    EXPECT_EQ(sa.occupancy.bytes, sb.occupancy.bytes) << label;
  }
}

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

// Every spelling the policy factory accepts, including the lazy-promotion
// and randomized families (their RNGs key off the spec seed and the access
// sequence, so chunked delivery cannot perturb them).
const std::vector<std::string>& factory_policies() {
  static const std::vector<std::string> names = {
      "LRU",          "LRU-MIN",       "LRU-2",
      "LRU-THOLD(300000)",             "FIFO",
      "SIZE",         "LFU",           "LFU-DA",
      "GDS(1)",       "GDS(packet)",   "GDS(latency)",
      "GDSF(1)",      "GDSF(packet)",  "GDSF(latency)",
      "GD*(1)",       "GD*(packet)",   "GD*(latency)",
      "GD*C(1)",      "GD*C(packet)",
      "RANDOM:seed=7",                 "CLOCK",
      "DELAY-CLOCK:k=3",               "PROB-LRU:p=0.5,seed=9",
      "DELAY-LRU:k=2",                 "BATCH-LRU:batch=8"};
  return names;
}

TEST(StreamingEquivalence, AllFactoryPoliciesAllChunkings) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;  // 4%

  SimulatorOptions options;
  options.occupancy_samples = 8;  // samples land mid-chunk for every size

  for (const std::string& name : factory_policies()) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult baseline = simulate(t, capacity, spec, options);
    for (const std::size_t chunk : kChunkings) {
      trace::MemoryRequestStream stream(t, chunk);
      const SimResult streamed =
          simulate_stream(stream, capacity, spec, options);
      expect_identical(baseline, streamed,
                       name + " chunk=" + std::to_string(chunk));
    }
  }
}

TEST(StreamingEquivalence, MetricsWindowsStraddleChunkBoundaries) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(packet)");
  const SimulatorOptions options;

  // Window length 113 (prime) never aligns with chunk 7 or 4096, so nearly
  // every window closes mid-chunk; compare the full serialized series.
  obs::RecordingSink baseline_sink(113);
  const SimResult baseline = simulate(t, capacity, spec, options, baseline_sink);
  std::ostringstream baseline_json;
  write_metrics_json(baseline_json, baseline, baseline_sink.series());

  for (const std::size_t chunk : kChunkings) {
    trace::MemoryRequestStream stream(t, chunk);
    cache::SingleCacheFrontend frontend(capacity, cache::make_policy(spec));
    obs::RecordingSink sink(113);
    const SimResult streamed = simulate_stream(stream, frontend, options, sink);
    expect_identical(baseline, streamed,
                     "metrics chunk=" + std::to_string(chunk));
    std::ostringstream json;
    write_metrics_json(json, streamed, sink.series());
    EXPECT_EQ(baseline_json.str(), json.str())
        << "metrics JSON diverged at chunk=" << chunk;
  }
}

TEST(StreamingEquivalence, FaultSchedulesStraddleChunkBoundaries) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LRU");
  const SimulatorOptions options;

  // Events pinned to chunk-7 boundaries (14, 15) and mid-chunk indices;
  // all key off the global 1-based request index.
  FaultSchedule schedule;
  schedule.events = {{14, FaultKind::kEdgeCrash, 0},
                     {15, FaultKind::kEdgeRecover, 0},
                     {100, FaultKind::kEdgeCrash, 0},
                     {4096, FaultKind::kEdgeRecover, 0},
                     {4097, FaultKind::kEdgeCrash, 0},
                     {5000, FaultKind::kEdgeRecover, 0}};
  schedule.seed = 17;

  cache::SingleCacheFrontend base_frontend(capacity, cache::make_policy(spec));
  const SimResult baseline = simulate(t, base_frontend, options, schedule);

  for (const std::size_t chunk : kChunkings) {
    trace::MemoryRequestStream stream(t, chunk);
    cache::SingleCacheFrontend frontend(capacity, cache::make_policy(spec));
    const SimResult streamed =
        simulate_stream(stream, frontend, options, schedule);
    expect_identical(baseline, streamed,
                     "faults chunk=" + std::to_string(chunk));
  }

  // Instrumented fault replay: series must also match exactly.
  obs::RecordingSink baseline_sink(113);
  cache::SingleCacheFrontend bf2(capacity, cache::make_policy(spec));
  const SimResult base2 = simulate(t, bf2, options, schedule, baseline_sink);
  std::ostringstream baseline_json;
  write_metrics_json(baseline_json, base2, baseline_sink.series());
  for (const std::size_t chunk : kChunkings) {
    trace::MemoryRequestStream stream(t, chunk);
    cache::SingleCacheFrontend frontend(capacity, cache::make_policy(spec));
    obs::RecordingSink sink(113);
    const SimResult streamed =
        simulate_stream(stream, frontend, options, schedule, sink);
    expect_identical(base2, streamed,
                     "faulted metrics chunk=" + std::to_string(chunk));
    std::ostringstream json;
    write_metrics_json(json, streamed, sink.series());
    EXPECT_EQ(baseline_json.str(), json.str())
        << "faulted metrics JSON diverged at chunk=" << chunk;
  }
}

TEST(StreamingEquivalence, WarmupAndModificationRulesMatch) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 50;
  const cache::PolicySpec spec = cache::policy_spec_from_name("GD*(1)");

  for (const ModificationRule rule :
       {ModificationRule::kThreshold, ModificationRule::kAnyChange,
        ModificationRule::kNever}) {
    for (const double warmup : {0.0, 0.1, 0.37}) {
      SimulatorOptions options;
      options.modification_rule = rule;
      options.warmup_fraction = warmup;
      const SimResult baseline = simulate(t, capacity, spec, options);
      trace::MemoryRequestStream stream(t, 7);
      const SimResult streamed =
          simulate_stream(stream, capacity, spec, options);
      expect_identical(baseline, streamed,
                       "rule " + std::to_string(static_cast<int>(rule)) +
                           " warmup " + std::to_string(warmup));
    }
  }
}

TEST(StreamingEquivalence, DensifiedStreamMatchesSparse) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const SimulatorOptions options;

  for (const std::string& name : {std::string("LRU"),
                                  std::string("GD*(packet)"),
                                  std::string("SIZE")}) {
    const cache::PolicySpec spec = cache::policy_spec_from_name(name);
    const SimResult baseline = simulate(t, capacity, spec, options);
    // Hot capacities from pathologically tiny (every miss spills) to
    // comfortably larger than the document universe.
    for (const std::size_t hot : {std::size_t{2}, std::size_t{64},
                                  std::size_t{1} << 20}) {
      trace::MemoryRequestStream stream(t, 4096);
      cache::SingleCacheFrontend frontend(capacity, cache::make_policy(spec));
      trace::OnlineDensifier::Options densify;
      densify.hot_capacity = hot;
      const SimResult streamed =
          simulate_stream_densified(stream, frontend, options, densify);
      expect_identical(baseline, streamed,
                       name + " hot=" + std::to_string(hot));
    }
  }
}

TEST(StreamingEquivalence, FileReaderMatchesMaterializedLoad) {
  const trace::Trace t = recorded_trace();
  const std::uint64_t capacity = t.overall_size_bytes() / 25;
  const cache::PolicySpec spec = cache::policy_spec_from_name("LFU-DA");
  const SimulatorOptions options;

  const std::string path =
      testing::TempDir() + "/streaming_equivalence.wct";
  trace::write_binary_trace_file(path, t);

  const SimResult baseline = simulate(t, capacity, spec, options);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    trace::StreamingTraceReader stream(path, chunk);
    EXPECT_EQ(stream.total_requests(), t.total_requests());
    const SimResult streamed = simulate_stream(stream, capacity, spec, options);
    expect_identical(baseline, streamed,
                     "file chunk=" + std::to_string(chunk));

    // reset() must replay the identical stream.
    stream.reset();
    const SimResult again = simulate_stream(stream, capacity, spec, options);
    expect_identical(baseline, again,
                     "file reset chunk=" + std::to_string(chunk));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webcache::sim
