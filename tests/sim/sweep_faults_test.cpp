// Fault schedules on the sweep drivers: every grid cell replays the same
// FaultSchedule against a fresh frontend. An empty (or never-firing)
// schedule must leave the sweep bit-identical to the plain driver, crash
// events must surface in the per-cell FaultStats deterministically, and
// schedules a frontend cannot express (root/probe events, out-of-range
// nodes) must be rejected. The leftover-thread sharded routing inside
// exact-eligible cells must never change a counter either.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <string>

#include "cache/factory.hpp"
#include "cache/partitioned.hpp"
#include "sim/faults.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"

namespace webcache::sim {
namespace {

trace::Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

void expect_identical_cells(const SweepResult& a, const SweepResult& b,
                            const std::string& label) {
  ASSERT_EQ(a.points.size(), b.points.size()) << label;
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    ASSERT_EQ(a.points[f].results.size(), b.points[f].results.size()) << label;
    EXPECT_EQ(a.points[f].capacity_bytes, b.points[f].capacity_bytes) << label;
    for (std::size_t p = 0; p < a.points[f].results.size(); ++p) {
      const SimResult& x = a.points[f].results[p];
      const SimResult& y = b.points[f].results[p];
      const std::string at =
          label + " f" + std::to_string(f) + " p" + std::to_string(p);
      EXPECT_EQ(x.policy_name, y.policy_name) << at;
      EXPECT_EQ(x.overall.requests, y.overall.requests) << at;
      EXPECT_EQ(x.overall.hits, y.overall.hits) << at;
      EXPECT_EQ(x.overall.hit_bytes, y.overall.hit_bytes) << at;
      EXPECT_EQ(x.evictions, y.evictions) << at;
      EXPECT_EQ(x.bypasses, y.bypasses) << at;
      EXPECT_EQ(x.miss_latency_ms, y.miss_latency_ms) << at;
      EXPECT_EQ(x.all_miss_latency_ms, y.all_miss_latency_ms) << at;
      EXPECT_EQ(x.faults.events_applied, y.faults.events_applied) << at;
      EXPECT_EQ(x.faults.lost_requests, y.faults.lost_requests) << at;
      EXPECT_EQ(x.faults.lost_bytes, y.faults.lost_bytes) << at;
    }
  }
}

SweepConfig policy_config() {
  SweepConfig config;
  config.cache_fractions = {0.01, 0.04};
  config.policies = {cache::policy_spec_from_name("LRU"),
                     cache::policy_spec_from_name("GDSF(1)")};
  return config;
}

TEST(SweepFaults, NeverFiringScheduleIsBitIdenticalToPlainSweep) {
  // A schedule whose only event lies past the end of the trace exercises
  // the fault-aware cell loop end to end without ever changing state — the
  // strongest equivalence the fault layer promises.
  const trace::Trace t = recorded_trace();
  SweepConfig plain = policy_config();
  plain.one_pass = OnePassMode::kOff;  // same per-cell path on both sides
  const SweepResult baseline = run_sweep(t, plain);

  SweepConfig faulty = plain;
  faulty.faults.events.push_back(
      FaultEvent{t.requests.size() * 10, FaultKind::kEdgeCrash, 0});
  const SweepResult with_schedule = run_sweep(t, faulty);
  expect_identical_cells(baseline, with_schedule, "never-firing");
}

TEST(SweepFaults, EmptyScheduleTakesThePlainPathUnchanged) {
  const trace::Trace t = recorded_trace();
  const SweepConfig config = policy_config();  // default: empty schedule
  EXPECT_TRUE(config.faults.empty());
  const SweepResult a = run_sweep(t, config);
  const SweepResult b = run_sweep(t, config);
  expect_identical_cells(a, b, "empty schedule determinism");
}

TEST(SweepFaults, CrashLosesRequestsInEveryCellDeterministically) {
  const trace::Trace t = recorded_trace();
  SweepConfig config = policy_config();
  // Crash the (single-domain) cache a third of the way in, never recover:
  // every later request of every cell is lost.
  config.faults.events.push_back(
      FaultEvent{t.requests.size() / 3, FaultKind::kEdgeCrash, 0});

  const SweepResult a = run_sweep(t, config);
  const SweepResult b = run_sweep(t, config);
  expect_identical_cells(a, b, "crash determinism");
  for (const SweepPoint& point : a.points) {
    for (const SimResult& r : point.results) {
      EXPECT_EQ(r.faults.events_applied, 1u) << r.policy_name;
      EXPECT_GT(r.faults.lost_requests, 0u) << r.policy_name;
      // Lost requests are counted in the totals but can never hit.
      EXPECT_LE(r.overall.hits + r.faults.lost_requests, r.overall.requests)
          << r.policy_name;
    }
  }
}

TEST(SweepFaults, RecoveryRestartsCold) {
  const trace::Trace t = recorded_trace();
  SweepConfig config = policy_config();
  config.faults.events.push_back(
      FaultEvent{t.requests.size() / 2, FaultKind::kEdgeCrash, 0});
  config.faults.events.push_back(
      FaultEvent{t.requests.size() / 2 + 2000, FaultKind::kEdgeRecover, 0});
  const SweepResult r = run_sweep(t, config);
  for (const SweepPoint& point : r.points) {
    for (const SimResult& cell : point.results) {
      EXPECT_EQ(cell.faults.events_applied, 2u) << cell.policy_name;
      EXPECT_GT(cell.faults.lost_requests, 0u) << cell.policy_name;
      // The cache serves again after recovery, so losses are bounded by
      // the outage span.
      EXPECT_LT(cell.faults.lost_requests, cell.overall.requests)
          << cell.policy_name;
    }
  }
}

TEST(SweepFaults, RejectsEventsTheFrontendCannotExpress) {
  const trace::Trace t = recorded_trace();
  SweepConfig root = policy_config();
  root.faults.events.push_back(
      FaultEvent{100, FaultKind::kRootOutage, 0});
  EXPECT_THROW(run_sweep(t, root), std::invalid_argument);

  SweepConfig out_of_range = policy_config();
  out_of_range.faults.events.push_back(
      FaultEvent{100, FaultKind::kEdgeCrash, 3});  // single-domain cells
  EXPECT_THROW(run_sweep(t, out_of_range), std::invalid_argument);
}

FrontendSweepConfig partitioned_config() {
  FrontendSweepConfig config;
  config.cache_fractions = {0.04};
  config.frontends.push_back([](std::uint64_t capacity) {
    std::array<double, trace::kDocumentClassCount> weights{};
    weights.fill(1.0);
    return std::make_unique<cache::PartitionedCache>(
        cache::PartitionedCacheConfig::uniform_policy(
            capacity, cache::policy_spec_from_name("LRU"), weights));
  });
  return config;
}

TEST(SweepFaults, FrontendSweepMatchesDirectPartitionedFaultReplay) {
  // The frontend sweep's fault cells must be the same replay as calling
  // the fault-aware simulate() on an identically built PartitionedCache:
  // node i is the partition of document class i.
  const trace::Trace t = recorded_trace();
  FrontendSweepConfig config = partitioned_config();
  config.faults.events.push_back(
      FaultEvent{t.requests.size() / 4, FaultKind::kEdgeCrash, 1});
  const SweepResult sweep = run_sweep(t, config);

  std::array<double, trace::kDocumentClassCount> weights{};
  weights.fill(1.0);
  cache::PartitionedCache direct(cache::PartitionedCacheConfig::uniform_policy(
      sweep.points[0].capacity_bytes, cache::policy_spec_from_name("LRU"),
      weights));
  const SimResult expected =
      simulate(t, direct, config.simulator, config.faults);

  const SimResult& cell = sweep.points[0].results[0];
  EXPECT_EQ(expected.overall.requests, cell.overall.requests);
  EXPECT_EQ(expected.overall.hits, cell.overall.hits);
  EXPECT_EQ(expected.evictions, cell.evictions);
  EXPECT_EQ(expected.faults.lost_requests, cell.faults.lost_requests);
  EXPECT_EQ(expected.faults.events_applied, cell.faults.events_applied);
  EXPECT_GT(cell.faults.lost_requests, 0u);
}

TEST(SweepFaults, FrontendSweepEmptyScheduleMatchesPlainDriver) {
  const trace::Trace t = recorded_trace();
  const FrontendSweepConfig plain = partitioned_config();
  FrontendSweepConfig with_empty = partitioned_config();
  EXPECT_TRUE(with_empty.faults.empty());
  expect_identical_cells(run_sweep(t, plain), run_sweep(t, with_empty),
                         "frontend empty schedule");
}

TEST(SweepFaults, LeftoverThreadShardedRoutingIsBitIdentical) {
  // More threads than cells routes the spare threads inside exact-eligible
  // cells via the sharded engine; the sweep must stay bit-identical to the
  // one-thread grid.
  const trace::Trace t = recorded_trace();
  const trace::DenseTrace dense = trace::densify(t);
  SweepConfig config;
  config.cache_fractions = {0.02};
  config.policies = {cache::policy_spec_from_name("LRU"),
                     cache::policy_spec_from_name("FIFO"),
                     cache::policy_spec_from_name("GDSF(1)")};
  config.one_pass = OnePassMode::kOff;  // keep all cells on the grid

  config.threads = 1;
  const SweepResult serial = run_sweep(t, config);
  const SweepResult serial_dense = run_sweep(dense, config);
  config.threads = 32;  // 32 threads over 3 cells -> 10 per cell
  const SweepResult routed = run_sweep(t, config);
  const SweepResult routed_dense = run_sweep(dense, config);

  expect_identical_cells(serial, routed, "sharded routing sparse");
  expect_identical_cells(serial_dense, routed_dense, "sharded routing dense");
}

}  // namespace
}  // namespace webcache::sim
