#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/sweep.hpp"
#include "synth/generator.hpp"

namespace webcache::sim {
namespace {

trace::Trace small_trace() {
  synth::GeneratorOptions opts;
  opts.seed = 5;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002),
                               opts)
      .generate();
}

SweepConfig grid_config() {
  SweepConfig config;
  config.cache_fractions = {0.01, 0.04, 0.16};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  return config;
}

TEST(SweepParallel, MatchesSerialBitForBit) {
  const trace::Trace t = small_trace();
  SweepConfig serial = grid_config();
  serial.threads = 1;
  SweepConfig parallel = grid_config();
  parallel.threads = 4;

  const SweepResult a = run_sweep(t, serial);
  const SweepResult b = run_sweep(t, parallel);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t f = 0; f < a.points.size(); ++f) {
    ASSERT_EQ(a.points[f].results.size(), b.points[f].results.size());
    for (std::size_t p = 0; p < a.points[f].results.size(); ++p) {
      const SimResult& ra = a.points[f].results[p];
      const SimResult& rb = b.points[f].results[p];
      EXPECT_EQ(ra.policy_name, rb.policy_name);
      EXPECT_EQ(ra.overall.hits, rb.overall.hits);
      EXPECT_EQ(ra.overall.hit_bytes, rb.overall.hit_bytes);
      EXPECT_EQ(ra.evictions, rb.evictions);
      EXPECT_DOUBLE_EQ(ra.miss_latency_ms, rb.miss_latency_ms);
    }
  }
}

TEST(SweepParallel, MoreThreadsThanCellsIsSafe) {
  const trace::Trace t = small_trace();
  SweepConfig config = grid_config();
  config.cache_fractions = {0.04};
  config.policies = {cache::policy_spec_from_name("LRU")};
  config.threads = 64;
  const SweepResult sweep = run_sweep(t, config);
  ASSERT_EQ(sweep.points.size(), 1u);
  EXPECT_GT(sweep.points[0].results[0].overall.hit_rate(), 0.0);
}

TEST(SweepParallel, WorkerExceptionsPropagateToCaller) {
  // A failing cell (invalid simulator options detected inside simulate)
  // must surface as an exception on the calling thread, not terminate.
  const trace::Trace t = small_trace();
  SweepConfig config = grid_config();
  config.threads = 4;
  config.simulator.modification_threshold = 0.0;  // rejected by simulate()
  EXPECT_THROW(run_sweep(t, config), std::invalid_argument);
}

TEST(SweepParallel, ZeroMeansHardwareConcurrency) {
  const trace::Trace t = small_trace();
  SweepConfig config = grid_config();
  config.threads = 0;
  const SweepResult sweep = run_sweep(t, config);
  for (const auto& point : sweep.points) {
    for (const auto& r : point.results) {
      EXPECT_GT(r.overall.requests, 0u);
    }
  }
}

}  // namespace
}  // namespace webcache::sim
