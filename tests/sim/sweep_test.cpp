#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "synth/generator.hpp"

namespace webcache::sim {
namespace {

trace::Trace small_trace() {
  synth::GeneratorOptions opts;
  opts.seed = 5;
  return synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002),
                               opts)
      .generate();
}

TEST(Sweep, RejectsEmptyConfig) {
  SweepConfig no_policies;
  no_policies.policies.clear();
  EXPECT_THROW(run_sweep(trace::Trace{}, no_policies), std::invalid_argument);

  SweepConfig no_sizes;
  no_sizes.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  no_sizes.cache_fractions.clear();
  EXPECT_THROW(run_sweep(trace::Trace{}, no_sizes), std::invalid_argument);

  SweepConfig bad_fraction;
  bad_fraction.policies = no_sizes.policies;
  bad_fraction.cache_fractions = {0.0};
  EXPECT_THROW(run_sweep(trace::Trace{}, bad_fraction), std::invalid_argument);
}

TEST(Sweep, CapacitiesScaleWithFractions) {
  const trace::Trace t = small_trace();
  SweepConfig config;
  config.cache_fractions = {0.01, 0.10};
  config.policies = {cache::PolicySpec{cache::PolicyKind::kLru, {}, {}}};
  const SweepResult sweep = run_sweep(t, config);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.overall_size_bytes, t.overall_size_bytes());
  EXPECT_NEAR(static_cast<double>(sweep.points[0].capacity_bytes),
              static_cast<double>(sweep.overall_size_bytes) * 0.01, 1.0);
  EXPECT_NEAR(static_cast<double>(sweep.points[1].capacity_bytes),
              static_cast<double>(sweep.overall_size_bytes) * 0.10, 1.0);
}

TEST(Sweep, OneResultPerPolicyInOrder) {
  const trace::Trace t = small_trace();
  SweepConfig config;
  config.cache_fractions = {0.05};
  config.policies = cache::paper_policy_set(cache::CostModelKind::kConstant);
  const SweepResult sweep = run_sweep(t, config);
  ASSERT_EQ(sweep.points.size(), 1u);
  const auto& results = sweep.points[0].results;
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].policy_name, "LRU");
  EXPECT_EQ(results[1].policy_name, "LFU-DA");
  EXPECT_EQ(results[2].policy_name, "GDS(1)");
  EXPECT_EQ(results[3].policy_name, "GD*(1)");
}

TEST(Sweep, HitRateGrowsWithCacheSize) {
  // The log-like growth observed by [3]: bigger caches hit more.
  const trace::Trace t = small_trace();
  SweepConfig config;
  config.cache_fractions = {0.005, 0.04, 0.40};
  config.policies = {cache::PolicySpec{cache::PolicyKind::kLru, {}, {}}};
  const SweepResult sweep = run_sweep(t, config);
  const double hr_small = sweep.points[0].results[0].overall.hit_rate();
  const double hr_mid = sweep.points[1].results[0].overall.hit_rate();
  const double hr_large = sweep.points[2].results[0].overall.hit_rate();
  EXPECT_LT(hr_small, hr_mid);
  EXPECT_LT(hr_mid, hr_large);
  EXPECT_GT(hr_large, 0.1);
}

}  // namespace
}  // namespace webcache::sim
