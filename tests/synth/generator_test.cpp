#include "synth/generator.hpp"

#include "workload/locality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace webcache::synth {
namespace {

using trace::DocumentClass;

// A small but statistically meaningful scale for generator tests.
WorkloadProfile small_dfn() { return WorkloadProfile::DFN().scaled(0.01); }

TEST(Generator, DeterministicForSameSeed) {
  GeneratorOptions opts;
  opts.seed = 11;
  const trace::Trace a = TraceGenerator(small_dfn(), opts).generate();
  const trace::Trace b = TraceGenerator(small_dfn(), opts).generate();
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); i += 997) {
    EXPECT_EQ(a.requests[i].document, b.requests[i].document);
    EXPECT_EQ(a.requests[i].document_size, b.requests[i].document_size);
    EXPECT_EQ(a.requests[i].timestamp_ms, b.requests[i].timestamp_ms);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  const trace::Trace a = TraceGenerator(small_dfn(), a_opts).generate();
  const trace::Trace b = TraceGenerator(small_dfn(), b_opts).generate();
  ASSERT_EQ(a.requests.size(), b.requests.size());
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    if (a.requests[i].document == b.requests[i].document) ++same;
  }
  EXPECT_LT(static_cast<double>(same) / a.requests.size(), 0.5);
}

TEST(Generator, TotalsMatchProfileExactly) {
  const WorkloadProfile profile = small_dfn();
  const trace::Trace t = TraceGenerator(profile, {}).generate();
  EXPECT_EQ(t.total_requests(), profile.total_requests);
  // Distinct documents match exactly: the exact-count design guarantees
  // every document is requested at least once.
  EXPECT_EQ(t.distinct_documents(), profile.distinct_documents);
}

TEST(Generator, ClassMixMatchesProfile) {
  const WorkloadProfile profile = small_dfn();
  const trace::Trace t = TraceGenerator(profile, {}).generate();
  std::array<std::uint64_t, trace::kDocumentClassCount> requests{};
  for (const auto& r : t.requests) {
    requests[static_cast<std::size_t>(r.doc_class)] += 1;
  }
  for (const auto cls : trace::kAllDocumentClasses) {
    const double expected = profile.of(cls).request_fraction;
    const double actual = static_cast<double>(
                              requests[static_cast<std::size_t>(cls)]) /
                          static_cast<double>(t.total_requests());
    EXPECT_NEAR(actual, expected, expected * 0.02 + 0.001)
        << trace::to_string(cls);
  }
}

TEST(Generator, TimestampsMonotone) {
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  for (std::size_t i = 1; i < t.requests.size(); ++i) {
    ASSERT_LE(t.requests[i - 1].timestamp_ms, t.requests[i].timestamp_ms);
  }
}

TEST(Generator, DocumentsKeepTheirClass) {
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  std::unordered_map<trace::DocumentId, DocumentClass> classes;
  for (const auto& r : t.requests) {
    const auto [it, inserted] = classes.emplace(r.document, r.doc_class);
    if (!inserted) {
      ASSERT_EQ(it->second, r.doc_class);
    }
  }
}

TEST(Generator, TransferNeverExceedsDocumentSize) {
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  for (const auto& r : t.requests) {
    ASSERT_LE(r.transfer_size, r.document_size);
    ASSERT_GE(r.transfer_size, 64u);
  }
}

TEST(Generator, InterruptionsConcentrateOnLargeDocuments) {
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  std::uint64_t small_interrupts = 0, small_total = 0;
  std::uint64_t large_interrupts = 0, large_total = 0;
  for (const auto& r : t.requests) {
    if (r.document_size < 64 * 1024) {
      ++small_total;
      if (r.interrupted()) ++small_interrupts;
    } else {
      ++large_total;
      if (r.interrupted()) ++large_interrupts;
    }
  }
  ASSERT_GT(large_total, 100u);
  const double small_rate =
      static_cast<double>(small_interrupts) / static_cast<double>(small_total);
  const double large_rate =
      static_cast<double>(large_interrupts) / static_cast<double>(large_total);
  EXPECT_GT(large_rate, small_rate * 3);
}

TEST(Generator, ModificationsPerturbSizesBelowThreshold) {
  // Track per-document size changes: whenever the document size changes
  // between successive requests, the change must be < 5% (the generator
  // models modifications, interrupts are visible only in transfer_size).
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  std::unordered_map<trace::DocumentId, std::uint64_t> last;
  std::uint64_t modifications = 0;
  for (const auto& r : t.requests) {
    const auto it = last.find(r.document);
    if (it != last.end() && it->second != r.document_size) {
      ++modifications;
      const double rel =
          std::abs(static_cast<double>(r.document_size) -
                   static_cast<double>(it->second)) /
          static_cast<double>(it->second);
      EXPECT_LT(rel, 0.051);
    }
    last[r.document] = r.document_size;
  }
  EXPECT_GT(modifications, 0u);  // HTML modification probability is 1.2%
}

TEST(Generator, EffectiveInterruptProbabilityRamp) {
  EXPECT_DOUBLE_EQ(effective_interrupt_probability(0.2, 512 * 1024), 0.2);
  EXPECT_DOUBLE_EQ(effective_interrupt_probability(0.2, 4 * 1024 * 1024), 0.2);
  EXPECT_NEAR(effective_interrupt_probability(0.2, 51 * 1024), 0.02, 0.001);
  EXPECT_LT(effective_interrupt_probability(0.2, 1024), 0.001);
}

TEST(Generator, RejectsZeroHistory) {
  GeneratorOptions opts;
  opts.history_capacity = 0;
  EXPECT_THROW(TraceGenerator(small_dfn(), opts), std::invalid_argument);
}

TEST(Generator, RtpProfileGenerates) {
  const WorkloadProfile profile = WorkloadProfile::RTP().scaled(0.005);
  const trace::Trace t = TraceGenerator(profile, {}).generate();
  EXPECT_EQ(t.total_requests(), profile.total_requests);
  EXPECT_EQ(t.distinct_documents(), profile.distinct_documents);
}

TEST(Generator, MeasuredLocalityOrderingMatchesProfile) {
  // Closing the calibration loop: the alpha/beta orderings the profile
  // plants must be recoverable from the generated stream by the same
  // estimators the paper describes (Tables 4/5 orderings).
  GeneratorOptions opts;
  opts.seed = 42;
  const trace::Trace t =
      TraceGenerator(WorkloadProfile::DFN().scaled(0.02), opts).generate();
  const workload::LocalityStats stats = workload::compute_locality(t);

  const auto& img = stats.of(DocumentClass::kImage);
  const auto& html = stats.of(DocumentClass::kHtml);
  const auto& mm = stats.of(DocumentClass::kMultiMedia);
  // alpha: images steepest.
  EXPECT_GT(img.alpha, html.alpha);
  EXPECT_GT(html.alpha, mm.alpha - 0.15);  // MM is noisy (few documents)
  // beta: inverse trend.
  EXPECT_LT(img.beta, html.beta);
  EXPECT_LT(html.beta, mm.beta);
  // And the absolute values sit near the planted ones for the big classes.
  const synth::WorkloadProfile profile = WorkloadProfile::DFN();
  EXPECT_NEAR(img.alpha, profile.of(DocumentClass::kImage).alpha, 0.15);
  EXPECT_NEAR(html.alpha, profile.of(DocumentClass::kHtml).alpha, 0.15);
}

TEST(Generator, ClientsAssignedAndSkewed) {
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  std::unordered_map<std::uint32_t, std::uint64_t> per_client;
  for (const auto& r : t.requests) {
    ASSERT_NE(r.client, 0u);  // synthetic traces always attribute clients
    ++per_client[r.client];
  }
  EXPECT_GT(per_client.size(), 10u);
  // Zipf(1.0) clients: the busiest client carries far more than its
  // uniform share.
  std::uint64_t busiest = 0;
  for (const auto& [client, count] : per_client) {
    busiest = std::max(busiest, count);
  }
  const double uniform_share = static_cast<double>(t.total_requests()) /
                               static_cast<double>(per_client.size());
  EXPECT_GT(static_cast<double>(busiest), 5.0 * uniform_share);
}

TEST(Generator, ClientCountConfigurable) {
  GeneratorOptions opts;
  opts.clients = 3;
  const trace::Trace t = TraceGenerator(small_dfn(), opts).generate();
  std::unordered_set<std::uint32_t> clients;
  for (const auto& r : t.requests) clients.insert(r.client);
  EXPECT_LE(clients.size(), 3u);
}

TEST(Generator, RequestedBytesDominatedByMmAndApp) {
  // Tables 2/3: multimedia + application carry a large share of requested
  // bytes despite their tiny request share.
  const trace::Trace t = TraceGenerator(small_dfn(), {}).generate();
  std::uint64_t mm_app_bytes = 0, total_bytes = 0;
  for (const auto& r : t.requests) {
    total_bytes += r.transfer_size;
    if (r.doc_class == DocumentClass::kMultiMedia ||
        r.doc_class == DocumentClass::kApplication) {
      mm_app_bytes += r.transfer_size;
    }
  }
  const double share =
      static_cast<double>(mm_app_bytes) / static_cast<double>(total_bytes);
  EXPECT_GT(share, 0.25);
  EXPECT_LT(share, 0.65);
}

}  // namespace
}  // namespace webcache::synth
