#include "synth/mix_shift.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "synth/generator.hpp"

namespace webcache::synth {
namespace {

using trace::DocumentClass;

std::array<double, trace::kDocumentClassCount> unit_factors() {
  std::array<double, trace::kDocumentClassCount> f;
  f.fill(1.0);
  return f;
}

TEST(MixShift, IdentityFactorsChangeNothing) {
  const WorkloadProfile base = WorkloadProfile::DFN();
  const WorkloadProfile shifted = shift_class_mix(base, unit_factors());
  for (const auto cls : trace::kAllDocumentClasses) {
    EXPECT_DOUBLE_EQ(shifted.of(cls).request_fraction,
                     base.of(cls).request_fraction);
    EXPECT_DOUBLE_EQ(shifted.of(cls).distinct_fraction,
                     base.of(cls).distinct_fraction);
  }
}

TEST(MixShift, RejectsBadFactors) {
  auto f = unit_factors();
  f[0] = 0.0;
  EXPECT_THROW(shift_class_mix(WorkloadProfile::DFN(), f),
               std::invalid_argument);
  f[0] = -2.0;
  EXPECT_THROW(shift_class_mix(WorkloadProfile::DFN(), f),
               std::invalid_argument);
}

TEST(MixShift, RejectsOverflowingBoost) {
  auto f = unit_factors();
  // Images are 72.5% of requests; x2 would exceed the whole mix.
  f[static_cast<std::size_t>(DocumentClass::kImage)] = 2.0;
  EXPECT_THROW(shift_class_mix(WorkloadProfile::DFN(), f),
               std::invalid_argument);
}

TEST(MixShift, BoostedClassScalesExactly) {
  auto f = unit_factors();
  f[static_cast<std::size_t>(DocumentClass::kMultiMedia)] = 10.0;
  const WorkloadProfile base = WorkloadProfile::DFN();
  const WorkloadProfile shifted = shift_class_mix(base, f);
  EXPECT_NEAR(shifted.of(DocumentClass::kMultiMedia).request_fraction,
              base.of(DocumentClass::kMultiMedia).request_fraction * 10.0,
              1e-12);
  EXPECT_NEAR(shifted.of(DocumentClass::kMultiMedia).distinct_fraction,
              base.of(DocumentClass::kMultiMedia).distinct_fraction * 10.0,
              1e-12);
}

TEST(MixShift, MixStillSumsToOne) {
  const WorkloadProfile shifted =
      future_workload(WorkloadProfile::DFN(), 8.0);
  double requests = 0.0, docs = 0.0;
  for (const auto cls : trace::kAllDocumentClasses) {
    requests += shifted.of(cls).request_fraction;
    docs += shifted.of(cls).distinct_fraction;
  }
  EXPECT_NEAR(requests, 1.0, 1e-9);
  EXPECT_NEAR(docs, 1.0, 1e-9);
  EXPECT_NO_THROW(shifted.validate());
}

TEST(MixShift, UnboostedClassesKeepRelativeProportions) {
  const WorkloadProfile base = WorkloadProfile::DFN();
  const WorkloadProfile shifted = future_workload(base, 5.0);
  const double base_ratio = base.of(DocumentClass::kImage).request_fraction /
                            base.of(DocumentClass::kHtml).request_fraction;
  const double shifted_ratio =
      shifted.of(DocumentClass::kImage).request_fraction /
      shifted.of(DocumentClass::kHtml).request_fraction;
  EXPECT_NEAR(shifted_ratio, base_ratio, 1e-9);
}

TEST(MixShift, FutureWorkloadGenerates) {
  const WorkloadProfile profile =
      future_workload(WorkloadProfile::DFN(), 5.0).scaled(0.002);
  GeneratorOptions gen;
  gen.seed = 9;
  const trace::Trace t = TraceGenerator(profile, gen).generate();
  EXPECT_EQ(t.total_requests(), profile.total_requests);

  // The generated stream carries the boosted multimedia share.
  std::uint64_t mm = 0;
  for (const auto& r : t.requests) {
    if (r.doc_class == trace::DocumentClass::kMultiMedia) ++mm;
  }
  const double share = static_cast<double>(mm) /
                       static_cast<double>(t.total_requests());
  EXPECT_NEAR(share, 0.0014 * 5.0, 0.002);
}

TEST(MixShift, RtpBaseWorksToo) {
  EXPECT_NO_THROW(future_workload(WorkloadProfile::RTP(), 3.0).validate());
}

TEST(MixShift, NameDocumentsTheScenario) {
  const WorkloadProfile shifted =
      future_workload(WorkloadProfile::DFN(), 2.0);
  EXPECT_NE(shifted.name.find("DFN"), std::string::npos);
  EXPECT_NE(shifted.name.find("x2"), std::string::npos);
}

}  // namespace
}  // namespace webcache::synth
