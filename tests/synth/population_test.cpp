#include "synth/population.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/fit.hpp"

namespace webcache::synth {
namespace {

TEST(ZipfCounts, ExactBudget) {
  for (const auto& [docs, reqs] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {1, 1}, {1, 100}, {10, 10}, {100, 225}, {5000, 11250}}) {
    const auto counts = zipf_reference_counts(docs, reqs, 0.8);
    ASSERT_EQ(counts.size(), docs);
    const std::uint64_t total =
        std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
    EXPECT_EQ(total, reqs) << docs << " docs, " << reqs << " reqs";
  }
}

TEST(ZipfCounts, EveryDocumentReferencedAtLeastOnce) {
  const auto counts = zipf_reference_counts(1000, 2300, 0.9);
  for (const auto c : counts) EXPECT_GE(c, 1u);
}

TEST(ZipfCounts, CountsNonIncreasing) {
  const auto counts = zipf_reference_counts(2000, 5000, 0.7);
  for (std::size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i - 1] + 1, counts[i]);  // +1: remainder distribution
  }
}

TEST(ZipfCounts, HeadSlopeMatchesAlpha) {
  const double alpha = 0.8;
  // Generous budget so the head is far above the one-timer floor.
  const auto counts = zipf_reference_counts(20000, 200000, alpha);
  std::vector<std::pair<double, double>> points;
  for (std::size_t i = 0; i < 200; ++i) {
    points.emplace_back(static_cast<double>(i + 1),
                        static_cast<double>(counts[i]));
  }
  const util::LineFit fit = util::fit_loglog(points);
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(-fit.slope, alpha, 0.1);
}

TEST(ZipfCounts, OneTimersDominateWhenBudgetTight) {
  // requests/docs = 2.25 as in the DFN trace: most documents must be
  // one-timers, matching the extreme non-uniformity observed in [1].
  const auto counts = zipf_reference_counts(10000, 22500, 0.85);
  const auto one_timers = static_cast<double>(
      std::count(counts.begin(), counts.end(), 1u));
  EXPECT_GT(one_timers / 10000.0, 0.5);
}

TEST(ZipfCounts, RejectsImpossibleBudget) {
  EXPECT_THROW(zipf_reference_counts(10, 5, 0.8), std::invalid_argument);
}

TEST(ZipfCounts, EmptyPopulation) {
  EXPECT_TRUE(zipf_reference_counts(0, 0, 0.8).empty());
}

TEST(ZipfCounts, AlphaZeroSpreadsEvenly) {
  const auto counts = zipf_reference_counts(100, 300, 0.0);
  for (const auto c : counts) {
    EXPECT_GE(c, 2u);
    EXPECT_LE(c, 4u);
  }
}

TEST(DrawSizes, RespectsFloorAndDistribution) {
  ClassProfile profile;
  profile.doc_class = trace::DocumentClass::kHtml;
  profile.size_mean_bytes = 13.0 * 1024;
  profile.size_median_bytes = 5.5 * 1024;
  util::Rng rng(3);
  const auto sizes = draw_sizes(profile, 50000, rng);
  ASSERT_EQ(sizes.size(), 50000u);
  double sum = 0.0;
  std::vector<double> v;
  v.reserve(sizes.size());
  for (const auto s : sizes) {
    EXPECT_GE(s, 64u);
    sum += static_cast<double>(s);
    v.push_back(static_cast<double>(s));
  }
  EXPECT_NEAR(sum / 50000.0, 13.0 * 1024, 13.0 * 1024 * 0.05);
  std::nth_element(v.begin(), v.begin() + 25000, v.end());
  EXPECT_NEAR(v[25000], 5.5 * 1024, 5.5 * 1024 * 0.05);
}

TEST(DrawSizes, ParetoTailRaisesVariability) {
  ClassProfile no_tail;
  no_tail.size_mean_bytes = 100 * 1024;
  no_tail.size_median_bytes = 90 * 1024;

  ClassProfile with_tail = no_tail;
  with_tail.tail_fraction = 0.05;
  with_tail.tail_shape = 1.1;
  with_tail.tail_lo_bytes = 1 << 21;
  with_tail.tail_hi_bytes = 1 << 26;

  util::Rng rng1(5), rng2(5);
  const auto plain = draw_sizes(no_tail, 20000, rng1);
  const auto heavy = draw_sizes(with_tail, 20000, rng2);
  auto cov = [](const std::vector<std::uint64_t>& xs) {
    double sum = 0, sum2 = 0;
    for (const auto x : xs) {
      sum += static_cast<double>(x);
      sum2 += static_cast<double>(x) * static_cast<double>(x);
    }
    const double mean = sum / static_cast<double>(xs.size());
    return std::sqrt(sum2 / static_cast<double>(xs.size()) - mean * mean) /
           mean;
  };
  EXPECT_GT(cov(heavy), cov(plain) * 2.0);
}

TEST(Population, DocumentIdsGloballyUnique) {
  ClassProfile img;
  img.doc_class = trace::DocumentClass::kImage;
  img.size_mean_bytes = 1000;
  img.size_median_bytes = 800;
  ClassProfile app = img;
  app.doc_class = trace::DocumentClass::kApplication;

  util::Rng rng(7);
  const ClassPopulation a = build_population(img, 100, 250, rng);
  const ClassPopulation b = build_population(app, 100, 250, rng);
  EXPECT_NE(a.document_id(0), b.document_id(0));
  EXPECT_NE(a.document_id(0), a.document_id(1));
  EXPECT_EQ(a.request_count(), 250u);
  EXPECT_EQ(a.document_count(), 100u);
  EXPECT_GT(a.total_bytes(), 0u);
}

TEST(Population, EmptyClass) {
  ClassProfile p;
  util::Rng rng(9);
  const ClassPopulation pop = build_population(p, 0, 0, rng);
  EXPECT_EQ(pop.document_count(), 0u);
  EXPECT_EQ(pop.request_count(), 0u);
}

}  // namespace
}  // namespace webcache::synth
