#include "synth/profile_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace webcache::synth {
namespace {

TEST(ProfileIo, DfnRoundTripsExactly) {
  const WorkloadProfile original = WorkloadProfile::DFN();
  std::istringstream in(profile_to_text(original));
  const WorkloadProfile loaded = profile_from_text(in);
  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.distinct_documents, original.distinct_documents);
  EXPECT_EQ(loaded.total_requests, original.total_requests);
  EXPECT_DOUBLE_EQ(loaded.mean_interarrival_ms, original.mean_interarrival_ms);
  for (const auto cls : trace::kAllDocumentClasses) {
    const ClassProfile& a = original.of(cls);
    const ClassProfile& b = loaded.of(cls);
    EXPECT_DOUBLE_EQ(b.distinct_fraction, a.distinct_fraction);
    EXPECT_DOUBLE_EQ(b.request_fraction, a.request_fraction);
    EXPECT_DOUBLE_EQ(b.size_mean_bytes, a.size_mean_bytes);
    EXPECT_DOUBLE_EQ(b.size_median_bytes, a.size_median_bytes);
    EXPECT_DOUBLE_EQ(b.tail_fraction, a.tail_fraction);
    EXPECT_DOUBLE_EQ(b.alpha, a.alpha);
    EXPECT_DOUBLE_EQ(b.beta, a.beta);
    EXPECT_DOUBLE_EQ(b.correlation_probability, a.correlation_probability);
  }
}

TEST(ProfileIo, RtpRoundTripsAndValidates) {
  std::istringstream in(profile_to_text(WorkloadProfile::RTP()));
  EXPECT_NO_THROW(profile_from_text(in).validate());
}

TEST(ProfileIo, CommentsAndWhitespaceTolerated) {
  std::string text = profile_to_text(WorkloadProfile::DFN());
  text = "# leading comment\n\n  \t\n" + text + "\n# trailing\n";
  // Inline comment on a value line.
  text.replace(text.find("alpha = "), 0, "# inline section comment\n");
  std::istringstream in(text);
  EXPECT_NO_THROW(profile_from_text(in));
}

TEST(ProfileIo, ErrorsCarryLineNumbers) {
  auto expect_error = [](const std::string& text, const char* needle) {
    std::istringstream in(text);
    try {
      profile_from_text(in);
      FAIL() << "expected an exception for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_error("nonsense line without equals", "key = value");
  expect_error("[NoSuchClass]\n", "unknown class");
  expect_error("unknown_key = 5\n", "unknown top-level key");
  expect_error("[Images]\nwrong_field = 1\n", "unknown class key");
  expect_error("distinct_documents = banana\n", "bad number");
  expect_error("[Images\n", "unterminated section");
}

TEST(ProfileIo, ValidationStillApplies) {
  // A syntactically fine profile with shares that do not sum to one must
  // be rejected by the embedded validator.
  std::string text = profile_to_text(WorkloadProfile::DFN());
  const auto pos = text.find("request_fraction = ");
  text.replace(pos, text.find('\n', pos) - pos, "request_fraction = 0.9");
  std::istringstream in(text);
  EXPECT_THROW(profile_from_text(in), std::invalid_argument);
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/webcache_profile_test.ini";
  save_profile_file(path, WorkloadProfile::RTP());
  const WorkloadProfile loaded = load_profile_file(path);
  EXPECT_EQ(loaded.name, "RTP");
  EXPECT_EQ(loaded.total_requests, WorkloadProfile::RTP().total_requests);
  std::remove(path.c_str());
}

TEST(ProfileIo, MissingFileThrows) {
  EXPECT_THROW(load_profile_file("/nonexistent/profile.ini"),
               std::runtime_error);
}

TEST(ProfileIo, EditedProfileDrivesGenerator) {
  // The workflow the format exists for: dump a preset, tweak one knob,
  // load, generate.
  std::string text = profile_to_text(WorkloadProfile::DFN().scaled(0.002));
  std::istringstream in(text);
  WorkloadProfile profile = profile_from_text(in);
  profile.of(trace::DocumentClass::kHtml).alpha = 0.9;
  EXPECT_NO_THROW(profile.validate());
}

}  // namespace
}  // namespace webcache::synth
