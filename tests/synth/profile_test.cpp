#include "synth/profile.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::synth {
namespace {

using trace::DocumentClass;

TEST(Profile, PresetsValidate) {
  EXPECT_NO_THROW(WorkloadProfile::DFN().validate());
  EXPECT_NO_THROW(WorkloadProfile::RTP().validate());
}

TEST(Profile, DfnMatchesPaperTable1) {
  const WorkloadProfile p = WorkloadProfile::DFN();
  EXPECT_EQ(p.distinct_documents, 2'987'565u);
  EXPECT_EQ(p.total_requests, 6'718'210u);
  EXPECT_EQ(p.name, "DFN");
}

TEST(Profile, RtpMatchesPaperTable1) {
  const WorkloadProfile p = WorkloadProfile::RTP();
  EXPECT_EQ(p.distinct_documents, 2'227'339u);
  EXPECT_EQ(p.total_requests, 4'144'900u);
}

TEST(Profile, DfnPaperProseConstraints) {
  const WorkloadProfile p = WorkloadProfile::DFN();
  // "HTML and image documents account for about 95% of documents seen and
  //  of requests received".
  const double html_img_docs = p.of(DocumentClass::kImage).distinct_fraction +
                               p.of(DocumentClass::kHtml).distinct_fraction;
  const double html_img_reqs = p.of(DocumentClass::kImage).request_fraction +
                               p.of(DocumentClass::kHtml).request_fraction;
  EXPECT_NEAR(html_img_docs, 0.95, 0.02);
  EXPECT_NEAR(html_img_reqs, 0.95, 0.02);
  // Section 4.4: multimedia distinct 0.23%, requests 0.14%; HTML 21.2%.
  EXPECT_NEAR(p.of(DocumentClass::kMultiMedia).distinct_fraction, 0.0023, 1e-6);
  EXPECT_NEAR(p.of(DocumentClass::kMultiMedia).request_fraction, 0.0014, 1e-6);
  EXPECT_NEAR(p.of(DocumentClass::kHtml).request_fraction, 0.212, 1e-6);
}

TEST(Profile, RtpPaperProseConstraints) {
  const WorkloadProfile p = WorkloadProfile::RTP();
  EXPECT_NEAR(p.of(DocumentClass::kMultiMedia).distinct_fraction, 0.0041, 1e-6);
  EXPECT_NEAR(p.of(DocumentClass::kMultiMedia).request_fraction, 0.0033, 1e-6);
  EXPECT_NEAR(p.of(DocumentClass::kHtml).request_fraction, 0.442, 1e-6);
}

TEST(Profile, AlphaBetaOrderingMatchesProse) {
  // "Large values of alpha show that there are some extremely popular image
  //  documents ... requests are ... most evenly [distributed] among multi
  //  media and application documents. The slope beta ... shows the inverse
  //  trend."
  for (const WorkloadProfile& p :
       {WorkloadProfile::DFN(), WorkloadProfile::RTP()}) {
    const auto& img = p.of(DocumentClass::kImage);
    const auto& html = p.of(DocumentClass::kHtml);
    const auto& mm = p.of(DocumentClass::kMultiMedia);
    const auto& app = p.of(DocumentClass::kApplication);
    EXPECT_GT(img.alpha, html.alpha) << p.name;
    EXPECT_GT(html.alpha, mm.alpha) << p.name;
    EXPECT_GT(html.alpha, app.alpha) << p.name;
    EXPECT_LT(img.beta, html.beta) << p.name;
    EXPECT_LT(html.beta, mm.beta) << p.name;
    EXPECT_LT(img.beta, app.beta) << p.name;
  }
}

TEST(Profile, RtpDiffersFromDfnAsDescribed) {
  const WorkloadProfile dfn = WorkloadProfile::DFN();
  const WorkloadProfile rtp = WorkloadProfile::RTP();
  // More multimedia, more HTML requests, smaller alphas, larger betas.
  EXPECT_GT(rtp.of(DocumentClass::kMultiMedia).distinct_fraction,
            dfn.of(DocumentClass::kMultiMedia).distinct_fraction);
  EXPECT_GT(rtp.of(DocumentClass::kHtml).request_fraction,
            dfn.of(DocumentClass::kHtml).request_fraction);
  for (const auto cls : trace::kAllDocumentClasses) {
    EXPECT_LE(rtp.of(cls).alpha, dfn.of(cls).alpha)
        << trace::to_string(cls);
  }
  EXPECT_GT(rtp.of(DocumentClass::kHtml).beta,
            dfn.of(DocumentClass::kHtml).beta);
  EXPECT_GT(rtp.of(DocumentClass::kMultiMedia).beta,
            dfn.of(DocumentClass::kMultiMedia).beta);
}

TEST(Profile, ApplicationSizesLargeMeanSmallMedian) {
  // Tables 4/5 prose: "the class of application documents shows quite large
  // mean values for document and transfer sizes, while median sizes are
  // very small".
  for (const WorkloadProfile& p :
       {WorkloadProfile::DFN(), WorkloadProfile::RTP()}) {
    const auto& app = p.of(DocumentClass::kApplication);
    EXPECT_GT(app.size_mean_bytes / app.size_median_bytes, 10.0) << p.name;
    // Multimedia: largest mean and median sizes of all classes.
    const auto& mm = p.of(DocumentClass::kMultiMedia);
    for (const auto cls : trace::kAllDocumentClasses) {
      if (cls == DocumentClass::kMultiMedia) continue;
      EXPECT_GE(mm.size_mean_bytes, p.of(cls).size_mean_bytes) << p.name;
      EXPECT_GE(mm.size_median_bytes, p.of(cls).size_median_bytes) << p.name;
    }
  }
}

TEST(Profile, ScaledPreservesMixAndRatios) {
  const WorkloadProfile full = WorkloadProfile::DFN();
  const WorkloadProfile half = full.scaled(0.5);
  EXPECT_NEAR(static_cast<double>(half.distinct_documents),
              static_cast<double>(full.distinct_documents) * 0.5, 1.0);
  EXPECT_NEAR(static_cast<double>(half.total_requests),
              static_cast<double>(full.total_requests) * 0.5, 1.0);
  for (const auto cls : trace::kAllDocumentClasses) {
    EXPECT_EQ(half.of(cls).request_fraction, full.of(cls).request_fraction);
  }
  EXPECT_NO_THROW(half.validate());
}

TEST(Profile, ScaledRejectsNonPositive) {
  EXPECT_THROW(WorkloadProfile::DFN().scaled(0.0), std::invalid_argument);
  EXPECT_THROW(WorkloadProfile::DFN().scaled(-1.0), std::invalid_argument);
}

TEST(Profile, ValidateCatchesBadFractions) {
  WorkloadProfile p = WorkloadProfile::DFN();
  p.of(DocumentClass::kImage).request_fraction += 0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Profile, ValidateCatchesMeanBelowMedian) {
  WorkloadProfile p = WorkloadProfile::DFN();
  p.of(DocumentClass::kHtml).size_mean_bytes =
      p.of(DocumentClass::kHtml).size_median_bytes / 2;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Profile, ValidateCatchesRequestStarvation) {
  WorkloadProfile p = WorkloadProfile::DFN();
  // More documents than requests in a class is impossible for the
  // exact-count generator.
  p.of(DocumentClass::kMultiMedia).request_fraction = 0.0001;
  p.of(DocumentClass::kOther).request_fraction += 0.0013;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace webcache::synth
