// TraceGenerator::stream(): the bounded-memory generation mode. The stream
// must be deterministic in (profile, seed), invariant to chunk size, honor
// the profile's exact per-class budgets like generate() does, and replay
// identically after reset(). generate() itself must be untouched — golden
// fixtures pin its bytes — so the stream is a different (equally valid)
// interleaving, not a re-spelling of the shuffle.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/request.hpp"
#include "trace/request_stream.hpp"

namespace webcache::synth {
namespace {

std::vector<trace::Request> drain(trace::RequestStream& stream) {
  std::vector<trace::Request> out;
  for (auto chunk = stream.next_chunk(); !chunk.empty();
       chunk = stream.next_chunk()) {
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

void expect_equal_requests(const trace::Request& a, const trace::Request& b,
                           std::size_t i) {
  EXPECT_EQ(a.timestamp_ms, b.timestamp_ms) << "request " << i;
  EXPECT_EQ(a.document, b.document) << "request " << i;
  EXPECT_EQ(a.client, b.client) << "request " << i;
  EXPECT_EQ(a.doc_class, b.doc_class) << "request " << i;
  EXPECT_EQ(a.status, b.status) << "request " << i;
  EXPECT_EQ(a.document_size, b.document_size) << "request " << i;
  EXPECT_EQ(a.transfer_size, b.transfer_size) << "request " << i;
}

TEST(StreamGenerator, ChunkSizeNeverChangesTheStream) {
  TraceGenerator generator(WorkloadProfile::DFN().scaled(0.002));
  const std::vector<trace::Request> baseline =
      drain(*generator.stream(/*chunk_records=*/0));

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{4096}}) {
    const std::vector<trace::Request> chunked = drain(*generator.stream(chunk));
    ASSERT_EQ(chunked.size(), baseline.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      expect_equal_requests(baseline[i], chunked[i], i);
    }
  }
}

TEST(StreamGenerator, TotalsMatchGenerateExactly) {
  const WorkloadProfile profile = WorkloadProfile::DFN().scaled(0.002);
  TraceGenerator generator(profile);
  const trace::Trace materialized = generator.generate();

  auto stream = generator.stream(1024);
  EXPECT_EQ(stream->total_requests(), materialized.total_requests());
  const std::vector<trace::Request> streamed = drain(*stream);
  EXPECT_EQ(streamed.size(), stream->total_requests());

  // Same exact per-class request budgets: both modes spend the same
  // profile-derived counts, only the interleaving differs.
  std::array<std::uint64_t, trace::kDocumentClassCount> mat_counts{},
      str_counts{};
  for (const trace::Request& r : materialized.requests) {
    ++mat_counts[static_cast<std::size_t>(r.doc_class)];
  }
  for (const trace::Request& r : streamed) {
    ++str_counts[static_cast<std::size_t>(r.doc_class)];
  }
  for (std::size_t c = 0; c < trace::kDocumentClassCount; ++c) {
    EXPECT_EQ(mat_counts[c], str_counts[c]) << "class " << c;
  }
}

TEST(StreamGenerator, DeterministicInSeedAndResettable) {
  GeneratorOptions options;
  options.seed = 1234;
  TraceGenerator generator(WorkloadProfile::RTP().scaled(0.002), options);

  const std::vector<trace::Request> a = drain(*generator.stream(512));
  const std::vector<trace::Request> b = drain(*generator.stream(512));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_equal_requests(a[i], b[i], i);
  }

  // reset() replays the identical stream, even mid-drain.
  auto stream = generator.stream(512);
  (void)stream->next_chunk();
  (void)stream->next_chunk();
  stream->reset();
  const std::vector<trace::Request> c = drain(*stream);
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_equal_requests(a[i], c[i], i);
  }

  // A different seed produces a different stream (sanity, not a fixture).
  GeneratorOptions other;
  other.seed = 4321;
  TraceGenerator generator2(WorkloadProfile::RTP().scaled(0.002), other);
  const std::vector<trace::Request> d = drain(*generator2.stream(512));
  ASSERT_EQ(a.size(), d.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].document != d[i].document ||
               a[i].timestamp_ms != d[i].timestamp_ms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(StreamGenerator, TimestampsAreMonotoneAndSizesSane) {
  TraceGenerator generator(WorkloadProfile::DFN().scaled(0.001));
  const std::vector<trace::Request> requests = drain(*generator.stream(256));
  ASSERT_FALSE(requests.empty());
  std::uint64_t last_ts = 0;
  for (const trace::Request& r : requests) {
    EXPECT_GE(r.timestamp_ms, last_ts);
    last_ts = r.timestamp_ms;
    EXPECT_GT(r.document_size, 0u);
    EXPECT_GT(r.transfer_size, 0u);
    EXPECT_LE(r.transfer_size, r.document_size);
    EXPECT_EQ(r.status, 200);
  }
}

}  // namespace
}  // namespace webcache::synth
