#include "trace/binary_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace webcache::trace {
namespace {

Trace sample_trace() {
  Trace t;
  Request r1;
  r1.timestamp_ms = 100;
  r1.document = 0xDEADBEEF;
  r1.doc_class = DocumentClass::kImage;
  r1.status = 200;
  r1.document_size = 5000;
  r1.transfer_size = 5000;
  Request r2;
  r2.timestamp_ms = 250;
  r2.document = 0xCAFE;
  r2.doc_class = DocumentClass::kMultiMedia;
  r2.status = 206;
  r2.document_size = 1000000;
  r2.transfer_size = 400000;
  t.requests = {r1, r2};
  return t;
}

TEST(BinaryTrace, RoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary_trace(buf, original);
  const Trace loaded = read_binary_trace(buf);
  ASSERT_EQ(loaded.requests.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded.requests[i].timestamp_ms, original.requests[i].timestamp_ms);
    EXPECT_EQ(loaded.requests[i].document, original.requests[i].document);
    EXPECT_EQ(loaded.requests[i].doc_class, original.requests[i].doc_class);
    EXPECT_EQ(loaded.requests[i].status, original.requests[i].status);
    EXPECT_EQ(loaded.requests[i].document_size,
              original.requests[i].document_size);
    EXPECT_EQ(loaded.requests[i].transfer_size,
              original.requests[i].transfer_size);
  }
}

TEST(BinaryTrace, EmptyTraceRoundTrip) {
  std::stringstream buf;
  write_binary_trace(buf, Trace{});
  EXPECT_TRUE(read_binary_trace(buf).requests.empty());
}

TEST(BinaryTrace, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOPE-this-is-not-a-trace";
  EXPECT_THROW(read_binary_trace(buf), std::runtime_error);
}

TEST(BinaryTrace, TruncationDetected) {
  std::stringstream buf;
  write_binary_trace(buf, sample_trace());
  std::string data = buf.str();
  data.resize(data.size() - 12);
  std::stringstream cut(data);
  EXPECT_THROW(read_binary_trace(cut), std::runtime_error);
}

TEST(BinaryTrace, CorruptionDetectedByChecksum) {
  std::stringstream buf;
  write_binary_trace(buf, sample_trace());
  std::string data = buf.str();
  data[20] ^= 0x01;  // flip one record bit
  std::stringstream corrupted(data);
  EXPECT_THROW(read_binary_trace(corrupted), std::runtime_error);
}

std::string diagnostic_for(const std::string& data) {
  std::stringstream in(data);
  try {
    read_binary_trace(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return std::string();
}

TEST(BinaryTrace, DiagnosticsNameRecordIndexAndByteOffset) {
  // Regression for the load diagnostics: each corruption mode must name
  // where the file went bad, so multi-gigabyte traces can be triaged with a
  // hex dump instead of a bisection. sample_trace() has two 39-byte v2
  // records after the 16-byte header.
  std::stringstream buf;
  write_binary_trace(buf, sample_trace());
  const std::string good = buf.str();

  // Truncation inside record 1.
  std::string cut = good.substr(0, 16 + 39 + 10);
  std::string what = diagnostic_for(cut);
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  EXPECT_NE(what.find("record 1 of 2"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 55"), std::string::npos) << what;

  // Invalid document class in record 1 (class byte at +20 into the record).
  std::string bad_class = good;
  bad_class[16 + 39 + 20] = 42;
  what = diagnostic_for(bad_class);
  EXPECT_NE(what.find("invalid document class 42"), std::string::npos) << what;
  EXPECT_NE(what.find("record 1 of 2"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 55"), std::string::npos) << what;

  // Checksum mismatch: flipped payload bit, offset of the trailer named.
  std::string flipped = good;
  flipped[16 + 5] ^= 0x01;
  what = diagnostic_for(flipped);
  EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 94"), std::string::npos) << what;

  // Missing checksum trailer.
  std::string no_trailer = good.substr(0, good.size() - 8);
  what = diagnostic_for(no_trailer);
  EXPECT_NE(what.find("truncated checksum trailer"), std::string::npos)
      << what;
  EXPECT_NE(what.find("byte offset 94"), std::string::npos) << what;

  // Unsupported version names the version it saw.
  std::string future = good;
  future[4] = 9;
  what = diagnostic_for(future);
  EXPECT_NE(what.find("unsupported version 9"), std::string::npos) << what;
}

TEST(BinaryTrace, InvalidClassRejected) {
  std::stringstream buf;
  Trace t = sample_trace();
  write_binary_trace(buf, t);
  std::string data = buf.str();
  // The class byte of record 0 sits after the 16-byte header plus the
  // timestamp (8), document (8) and client (4) fields.
  data[16 + 20] = 17;
  std::stringstream corrupted(data);
  EXPECT_THROW(read_binary_trace(corrupted), std::runtime_error);
}

TEST(BinaryTrace, ClientRoundTrips) {
  Trace t = sample_trace();
  t.requests[0].client = 0xDEAD;
  t.requests[1].client = 7;
  std::stringstream buf;
  write_binary_trace(buf, t);
  const Trace loaded = read_binary_trace(buf);
  EXPECT_EQ(loaded.requests[0].client, 0xDEADu);
  EXPECT_EQ(loaded.requests[1].client, 7u);
}

TEST(BinaryTrace, ReadsVersionOneFiles) {
  // Hand-craft a version-1 file (records without the client field) and
  // verify the reader still accepts it, defaulting client to 0.
  std::string data;
  auto append = [&](const void* p, std::size_t n) {
    data.append(static_cast<const char*>(p), n);
  };
  data.append("WCT1", 4);
  const std::uint32_t version = 1;
  append(&version, 4);
  const std::uint64_t count = 1;
  append(&count, 8);

  std::string record;
  auto rec = [&](const void* p, std::size_t n) {
    record.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t ts = 123, doc = 456, doc_size = 1000, transfer = 900;
  const std::uint8_t cls = 1;  // HTML
  const std::uint16_t status = 200;
  rec(&ts, 8);
  rec(&doc, 8);
  rec(&cls, 1);
  rec(&status, 2);
  rec(&doc_size, 8);
  rec(&transfer, 8);
  data += record;

  // FNV-1a over the record bytes, as the writer computes it.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : record) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  append(&h, 8);

  std::stringstream in(data);
  const Trace loaded = read_binary_trace(in);
  ASSERT_EQ(loaded.requests.size(), 1u);
  EXPECT_EQ(loaded.requests[0].timestamp_ms, 123u);
  EXPECT_EQ(loaded.requests[0].document, 456u);
  EXPECT_EQ(loaded.requests[0].client, 0u);
  EXPECT_EQ(loaded.requests[0].doc_class, DocumentClass::kHtml);
  EXPECT_EQ(loaded.requests[0].transfer_size, 900u);
}

TEST(BinaryTrace, UnknownFutureVersionRejected) {
  std::stringstream buf;
  write_binary_trace(buf, sample_trace());
  std::string data = buf.str();
  data[4] = 9;  // version byte
  std::stringstream in(data);
  EXPECT_THROW(read_binary_trace(in), std::runtime_error);
}

TEST(BinaryTrace, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/webcache_trace_test.bin";
  write_binary_trace_file(path, sample_trace());
  const Trace loaded = read_binary_trace_file(path);
  EXPECT_EQ(loaded.requests.size(), 2u);
  std::remove(path.c_str());
}

TEST(BinaryTrace, FileAndStreamLoadersAgree) {
  // The mmap/buffered file loader and the per-record stream decoder must
  // produce identical traces from the same bytes.
  Trace t = sample_trace();
  t.requests[0].client = 99;
  const std::string path = testing::TempDir() + "/webcache_trace_agree.bin";
  write_binary_trace_file(path, t);
  const Trace from_file = read_binary_trace_file(path);
  std::ifstream in(path, std::ios::binary);
  const Trace from_stream = read_binary_trace(in);
  std::remove(path.c_str());
  ASSERT_EQ(from_file.requests.size(), from_stream.requests.size());
  for (std::size_t i = 0; i < from_file.requests.size(); ++i) {
    EXPECT_EQ(from_file.requests[i].timestamp_ms,
              from_stream.requests[i].timestamp_ms);
    EXPECT_EQ(from_file.requests[i].document, from_stream.requests[i].document);
    EXPECT_EQ(from_file.requests[i].client, from_stream.requests[i].client);
    EXPECT_EQ(from_file.requests[i].doc_class,
              from_stream.requests[i].doc_class);
    EXPECT_EQ(from_file.requests[i].transfer_size,
              from_stream.requests[i].transfer_size);
  }
}

std::string file_diagnostic_for(const std::string& data) {
  const std::string path = testing::TempDir() + "/webcache_trace_diag.bin";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }
  std::string what;
  try {
    read_binary_trace_file(path);
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  std::remove(path.c_str());
  return what;
}

TEST(BinaryTrace, FileLoaderPreservesCorruptionDiagnostics) {
  // The buffered loader decodes from a flat image, but the triage story is
  // unchanged: the same corruption modes must name the same record indices
  // and byte offsets as the streaming reader.
  std::stringstream buf;
  write_binary_trace(buf, sample_trace());
  const std::string good = buf.str();

  std::string what = file_diagnostic_for(good.substr(0, 16 + 39 + 10));
  EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  EXPECT_NE(what.find("record 1 of 2"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 55"), std::string::npos) << what;

  std::string bad_class = good;
  bad_class[16 + 39 + 20] = 42;
  what = file_diagnostic_for(bad_class);
  EXPECT_NE(what.find("invalid document class 42"), std::string::npos) << what;
  EXPECT_NE(what.find("record 1 of 2"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 55"), std::string::npos) << what;

  std::string flipped = good;
  flipped[16 + 5] ^= 0x01;
  what = file_diagnostic_for(flipped);
  EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
  EXPECT_NE(what.find("byte offset 94"), std::string::npos) << what;

  what = file_diagnostic_for(good.substr(0, good.size() - 8));
  EXPECT_NE(what.find("truncated checksum trailer"), std::string::npos)
      << what;
  EXPECT_NE(what.find("byte offset 94"), std::string::npos) << what;

  std::string future = good;
  future[4] = 9;
  what = file_diagnostic_for(future);
  EXPECT_NE(what.find("unsupported version 9"), std::string::npos) << what;

  what = file_diagnostic_for("NOPE-this-is-not-a-trace");
  EXPECT_NE(what.find("bad magic"), std::string::npos) << what;
}

TEST(BinaryTrace, MissingFileThrows) {
  EXPECT_THROW(read_binary_trace_file("/nonexistent/path/x.bin"),
               std::runtime_error);
}

TEST(TraceAggregates, RequestedBytesSumsTransfers) {
  EXPECT_EQ(sample_trace().requested_bytes(), 405000u);
}

TEST(TraceAggregates, DistinctDocuments) {
  Trace t = sample_trace();
  EXPECT_EQ(t.distinct_documents(), 2u);
  t.requests.push_back(t.requests[0]);
  EXPECT_EQ(t.distinct_documents(), 2u);
}

TEST(TraceAggregates, OverallSizeUsesLastDocumentSize) {
  Trace t = sample_trace();
  // Re-request document 1 with a modified size; the overall size must use
  // the most recent document size.
  Request again = t.requests[0];
  again.document_size = 6000;
  again.transfer_size = 6000;
  t.requests.push_back(again);
  EXPECT_EQ(t.overall_size_bytes(), 6000u + 1000000u);
}

}  // namespace
}  // namespace webcache::trace
