#include "trace/cacheability.hpp"

#include <gtest/gtest.h>

namespace webcache::trace {
namespace {

TEST(Status, PaperCacheableSet) {
  // "HTTP status codes 200, 203, 206, 300, 301, 302, and 304" (Section 2).
  for (std::uint16_t code : {200, 203, 206, 300, 301, 302, 304}) {
    EXPECT_TRUE(is_cacheable_status(code)) << code;
  }
}

TEST(Status, EverythingElseUncacheable) {
  for (std::uint16_t code : {100, 201, 204, 303, 307, 400, 401, 403, 404, 500,
                             502, 503}) {
    EXPECT_FALSE(is_cacheable_status(code)) << code;
  }
}

TEST(DynamicUrl, QueryMarker) {
  EXPECT_TRUE(is_dynamic_url("http://a/b?x=1"));
  EXPECT_TRUE(is_dynamic_url("http://a/b?"));
  EXPECT_FALSE(is_dynamic_url("http://a/b.html"));
}

TEST(DynamicUrl, CgiSubstring) {
  EXPECT_TRUE(is_dynamic_url("http://a/cgi-bin/script"));
  EXPECT_TRUE(is_dynamic_url("http://a/script.cgi"));
  EXPECT_TRUE(is_dynamic_url("http://a/CGI-BIN/x"));  // case-insensitive
  EXPECT_TRUE(is_dynamic_url("http://a/mycgiapp/x"));  // substring, as paper
}

TEST(DynamicUrl, PathParameter) {
  EXPECT_TRUE(is_dynamic_url("http://a/b;jsessionid=1"));
}

TEST(DynamicUrl, StaticUrls) {
  EXPECT_FALSE(is_dynamic_url("http://www.example.com/images/logo.gif"));
  EXPECT_FALSE(is_dynamic_url(""));
  EXPECT_FALSE(is_dynamic_url("http://a/cg"));  // shorter than "cgi"
}

TEST(Method, OnlyGetCacheable) {
  EXPECT_TRUE(is_cacheable_method("GET"));
  EXPECT_TRUE(is_cacheable_method("get"));
  EXPECT_FALSE(is_cacheable_method("POST"));
  EXPECT_FALSE(is_cacheable_method("HEAD"));
  EXPECT_FALSE(is_cacheable_method("PUT"));
  EXPECT_FALSE(is_cacheable_method("DELETE"));
  EXPECT_FALSE(is_cacheable_method(""));
}

TEST(Combined, AllFiltersApplied) {
  EXPECT_TRUE(is_cacheable("GET", "http://a/b.gif", 200));
  EXPECT_FALSE(is_cacheable("POST", "http://a/b.gif", 200));
  EXPECT_FALSE(is_cacheable("GET", "http://a/b.gif?x", 200));
  EXPECT_FALSE(is_cacheable("GET", "http://a/b.gif", 404));
  EXPECT_TRUE(is_cacheable("GET", "http://a/b.gif", 304));
}

}  // namespace
}  // namespace webcache::trace
