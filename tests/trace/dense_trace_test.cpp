#include "trace/dense_trace.hpp"

#include <gtest/gtest.h>

#include "synth/generator.hpp"
#include "synth/profile.hpp"

namespace webcache::trace {
namespace {

Trace tiny_trace() {
  Trace t;
  auto req = [](DocumentId doc, std::uint64_t size) {
    Request r;
    r.document = doc;
    r.document_size = size;
    r.transfer_size = size;
    return r;
  };
  t.requests = {req(900, 10), req(77, 20), req(900, 10), req(5, 30),
                req(77, 20)};
  return t;
}

TEST(DenseTrace, RenumbersInFirstAppearanceOrder) {
  const DenseTrace dense = densify(tiny_trace());
  ASSERT_EQ(dense.document_count(), 3u);
  EXPECT_EQ(dense.trace.requests[0].document, 0u);
  EXPECT_EQ(dense.trace.requests[1].document, 1u);
  EXPECT_EQ(dense.trace.requests[2].document, 0u);
  EXPECT_EQ(dense.trace.requests[3].document, 2u);
  EXPECT_EQ(dense.trace.requests[4].document, 1u);
  EXPECT_EQ(dense.original_id(0), 900u);
  EXPECT_EQ(dense.original_id(1), 77u);
  EXPECT_EQ(dense.original_id(2), 5u);
}

TEST(DenseTrace, PreservesEveryOtherRequestField) {
  const Trace source = tiny_trace();
  const DenseTrace dense = densify(source);
  ASSERT_EQ(dense.trace.requests.size(), source.requests.size());
  for (std::size_t i = 0; i < source.requests.size(); ++i) {
    const Request& a = source.requests[i];
    const Request& b = dense.trace.requests[i];
    EXPECT_EQ(dense.original_id(b.document), a.document);
    EXPECT_EQ(b.timestamp_ms, a.timestamp_ms);
    EXPECT_EQ(b.client, a.client);
    EXPECT_EQ(b.doc_class, a.doc_class);
    EXPECT_EQ(b.status, a.status);
    EXPECT_EQ(b.document_size, a.document_size);
    EXPECT_EQ(b.transfer_size, a.transfer_size);
  }
}

TEST(DenseTrace, MoveOverloadMatchesCopyOverload) {
  Trace source = tiny_trace();
  const DenseTrace copied = densify(source);
  const DenseTrace moved = densify(std::move(source));
  ASSERT_EQ(copied.document_count(), moved.document_count());
  ASSERT_EQ(copied.trace.requests.size(), moved.trace.requests.size());
  for (std::size_t i = 0; i < copied.trace.requests.size(); ++i) {
    EXPECT_EQ(copied.trace.requests[i].document,
              moved.trace.requests[i].document);
  }
}

TEST(DenseTrace, SyntheticTraceIdsStayInBounds) {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  const DenseTrace dense = densify(generator.generate());
  EXPECT_GT(dense.document_count(), 0u);
  for (const Request& r : dense.trace.requests) {
    ASSERT_LT(r.document, dense.document_count());
  }
  // Aggregate trace properties are invariant under renumbering.
  const Trace original =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002))
          .generate();
  EXPECT_EQ(dense.trace.distinct_documents(), original.distinct_documents());
  EXPECT_EQ(dense.trace.requested_bytes(), original.requested_bytes());
  EXPECT_EQ(dense.trace.overall_size_bytes(), original.overall_size_bytes());
}

TEST(DenseTrace, EmptyTrace) {
  const DenseTrace dense = densify(Trace{});
  EXPECT_EQ(dense.document_count(), 0u);
  EXPECT_TRUE(dense.trace.requests.empty());
}

}  // namespace
}  // namespace webcache::trace
