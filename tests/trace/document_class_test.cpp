#include "trace/document_class.hpp"

#include <gtest/gtest.h>

namespace webcache::trace {
namespace {

TEST(DocumentClass, Names) {
  EXPECT_EQ(to_string(DocumentClass::kImage), "Images");
  EXPECT_EQ(to_string(DocumentClass::kHtml), "HTML");
  EXPECT_EQ(to_string(DocumentClass::kMultiMedia), "Multi Media");
  EXPECT_EQ(to_string(DocumentClass::kApplication), "Application");
  EXPECT_EQ(to_string(DocumentClass::kOther), "Other");
}

TEST(ContentType, ImageMimes) {
  EXPECT_EQ(classify_content_type("image/gif"), DocumentClass::kImage);
  EXPECT_EQ(classify_content_type("image/jpeg"), DocumentClass::kImage);
  EXPECT_EQ(classify_content_type("image/png"), DocumentClass::kImage);
}

TEST(ContentType, TextMimesAreHtml) {
  EXPECT_EQ(classify_content_type("text/html"), DocumentClass::kHtml);
  EXPECT_EQ(classify_content_type("text/plain"), DocumentClass::kHtml);
  EXPECT_EQ(classify_content_type("text/css"), DocumentClass::kHtml);
}

TEST(ContentType, MultimediaMimes) {
  EXPECT_EQ(classify_content_type("audio/mpeg"), DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_content_type("video/mpeg"), DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_content_type("video/quicktime"),
            DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_content_type("application/ogg"),
            DocumentClass::kMultiMedia);
}

TEST(ContentType, ApplicationMimes) {
  EXPECT_EQ(classify_content_type("application/pdf"),
            DocumentClass::kApplication);
  EXPECT_EQ(classify_content_type("application/postscript"),
            DocumentClass::kApplication);
  EXPECT_EQ(classify_content_type("application/zip"),
            DocumentClass::kApplication);
}

TEST(ContentType, ApplicationMarkupIsHtml) {
  EXPECT_EQ(classify_content_type("application/xhtml+xml"),
            DocumentClass::kHtml);
  EXPECT_EQ(classify_content_type("application/xml"), DocumentClass::kHtml);
}

TEST(ContentType, ParametersStripped) {
  EXPECT_EQ(classify_content_type("text/html; charset=iso-8859-1"),
            DocumentClass::kHtml);
  EXPECT_EQ(classify_content_type("IMAGE/GIF"), DocumentClass::kImage);
}

TEST(ContentType, UnknownAndEmptyAreOther) {
  EXPECT_EQ(classify_content_type(""), DocumentClass::kOther);
  EXPECT_EQ(classify_content_type("x-custom/whatever"), DocumentClass::kOther);
  EXPECT_EQ(classify_content_type("multipart/mixed"), DocumentClass::kOther);
}

TEST(Extension, PaperExamples) {
  // Exactly the examples listed in Section 2 of the paper.
  EXPECT_EQ(classify_extension("http://a/b.html"), DocumentClass::kHtml);
  EXPECT_EQ(classify_extension("http://a/b.htm"), DocumentClass::kHtml);
  EXPECT_EQ(classify_extension("http://a/b.gif"), DocumentClass::kImage);
  EXPECT_EQ(classify_extension("http://a/b.jpeg"), DocumentClass::kImage);
  EXPECT_EQ(classify_extension("http://a/b.mp3"), DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_extension("http://a/b.ram"), DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_extension("http://a/b.mpeg"), DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_extension("http://a/b.mov"), DocumentClass::kMultiMedia);
  EXPECT_EQ(classify_extension("http://a/b.ps"), DocumentClass::kApplication);
  EXPECT_EQ(classify_extension("http://a/b.pdf"), DocumentClass::kApplication);
  EXPECT_EQ(classify_extension("http://a/b.zip"), DocumentClass::kApplication);
  // "Text files (e.g. .tex, .java) are added to the class of HTML documents."
  EXPECT_EQ(classify_extension("http://a/b.tex"), DocumentClass::kHtml);
  EXPECT_EQ(classify_extension("http://a/b.java"), DocumentClass::kHtml);
}

TEST(Extension, CaseInsensitive) {
  EXPECT_EQ(classify_extension("http://a/B.GIF"), DocumentClass::kImage);
  EXPECT_EQ(classify_extension("http://a/B.PdF"), DocumentClass::kApplication);
}

TEST(Extension, QueryAndFragmentIgnored) {
  EXPECT_EQ(classify_extension("http://a/b.gif?x=1"), DocumentClass::kImage);
  EXPECT_EQ(classify_extension("http://a/b.mp3#t=30"),
            DocumentClass::kMultiMedia);
}

TEST(Extension, NoExtensionIsOther) {
  EXPECT_EQ(classify_extension("http://a/directory/"), DocumentClass::kOther);
  EXPECT_EQ(classify_extension("http://a/file"), DocumentClass::kOther);
  EXPECT_EQ(classify_extension(""), DocumentClass::kOther);
  EXPECT_EQ(classify_extension("http://a/ends-with-dot."),
            DocumentClass::kOther);
}

TEST(Extension, DotsInPathDoNotConfuse) {
  EXPECT_EQ(classify_extension("http://a.com/v1.2/file.pdf"),
            DocumentClass::kApplication);
  EXPECT_EQ(classify_extension("http://a.com/v1.2/file"),
            DocumentClass::kOther);
}

TEST(Classify, ContentTypeWins) {
  EXPECT_EQ(classify("image/gif", "http://a/b.pdf"), DocumentClass::kImage);
}

TEST(Classify, ExtensionFallback) {
  // "If no content type entry is specified, we guess the document type
  //  using the file extension."
  EXPECT_EQ(classify("", "http://a/b.pdf"), DocumentClass::kApplication);
  EXPECT_EQ(classify("x-unknown/x", "http://a/b.gif"), DocumentClass::kImage);
}

TEST(Classify, BothUnknownIsOther) {
  EXPECT_EQ(classify("", "http://a/b"), DocumentClass::kOther);
}

}  // namespace
}  // namespace webcache::trace
