#include "trace/filters.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "synth/generator.hpp"

namespace webcache::trace {
namespace {

Request req(DocumentId doc, DocumentClass cls, std::uint64_t ts) {
  Request r;
  r.document = doc;
  r.doc_class = cls;
  r.timestamp_ms = ts;
  r.document_size = 100;
  r.transfer_size = 100;
  return r;
}

Trace small_trace() {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kImage, 10), req(2, DocumentClass::kHtml, 20),
      req(3, DocumentClass::kImage, 30), req(4, DocumentClass::kMultiMedia, 40),
      req(1, DocumentClass::kImage, 50),
  };
  return t;
}

TEST(Filters, FilterByPredicate) {
  const Trace out = filter_requests(
      small_trace(), [](const Request& r) { return r.timestamp_ms >= 30; });
  ASSERT_EQ(out.requests.size(), 3u);
  EXPECT_EQ(out.requests.front().document, 3u);
}

TEST(Filters, FilterByClass) {
  const Trace images = filter_by_class(small_trace(), DocumentClass::kImage);
  ASSERT_EQ(images.requests.size(), 3u);
  for (const auto& r : images.requests) {
    EXPECT_EQ(r.doc_class, DocumentClass::kImage);
  }
  EXPECT_TRUE(
      filter_by_class(small_trace(), DocumentClass::kOther).requests.empty());
}

TEST(Filters, SampleEveryNth) {
  EXPECT_THROW(sample_every_nth(small_trace(), 0), std::invalid_argument);
  const Trace half = sample_every_nth(small_trace(), 2);
  ASSERT_EQ(half.requests.size(), 3u);  // indices 0, 2, 4
  EXPECT_EQ(half.requests[0].document, 1u);
  EXPECT_EQ(half.requests[1].document, 3u);
  EXPECT_EQ(half.requests[2].document, 1u);
  EXPECT_EQ(sample_every_nth(small_trace(), 1).requests.size(), 5u);
  EXPECT_EQ(sample_every_nth(small_trace(), 100).requests.size(), 1u);
}

TEST(Filters, Truncate) {
  EXPECT_EQ(truncate(small_trace(), 3).requests.size(), 3u);
  EXPECT_EQ(truncate(small_trace(), 0).requests.size(), 0u);
  EXPECT_EQ(truncate(small_trace(), 99).requests.size(), 5u);
}

TEST(Filters, MergePreservesTimestampOrder) {
  Trace a, b;
  a.requests = {req(1, DocumentClass::kImage, 10),
                req(2, DocumentClass::kImage, 30)};
  b.requests = {req(1, DocumentClass::kHtml, 20),
                req(2, DocumentClass::kHtml, 40)};
  const Trace merged = merge_traces(a, b);
  ASSERT_EQ(merged.requests.size(), 4u);
  for (std::size_t i = 1; i < merged.requests.size(); ++i) {
    EXPECT_LE(merged.requests[i - 1].timestamp_ms,
              merged.requests[i].timestamp_ms);
  }
}

TEST(Filters, MergeKeepsPopulationsDisjoint) {
  Trace a, b;
  a.requests = {req(7, DocumentClass::kImage, 10)};
  b.requests = {req(7, DocumentClass::kHtml, 20)};
  const Trace merged = merge_traces(a, b);
  EXPECT_EQ(merged.distinct_documents(), 2u);
  // Merging a trace with itself doubles requests, not documents-per-id.
  const Trace doubled = merge_traces(a, a);
  EXPECT_EQ(doubled.requests.size(), 2u);
  EXPECT_EQ(doubled.distinct_documents(), 2u);
}

TEST(Filters, MergeTieBreaksStableToA) {
  Trace a, b;
  a.requests = {req(1, DocumentClass::kImage, 10)};
  b.requests = {req(2, DocumentClass::kHtml, 10)};
  const Trace merged = merge_traces(a, b);
  EXPECT_EQ(merged.requests[0].doc_class, DocumentClass::kImage);
}

TEST(Filters, MergePreservesBStructure) {
  // b's re-reference pattern must survive the id remap exactly.
  Trace a;
  synth::GeneratorOptions gen;
  gen.seed = 4;
  const Trace b =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.0005), gen)
          .generate();
  const Trace merged = merge_traces(a, b);
  ASSERT_EQ(merged.requests.size(), b.requests.size());
  EXPECT_EQ(merged.distinct_documents(), b.distinct_documents());
  EXPECT_EQ(merged.requested_bytes(), b.requested_bytes());
}

TEST(Filters, MergedCommunitiesShareNothing) {
  synth::GeneratorOptions g1, g2;
  g1.seed = 1;
  g2.seed = 2;
  const Trace a =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.0005), g1)
          .generate();
  const Trace b =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.0005), g2)
          .generate();
  const Trace merged = merge_traces(a, b);
  EXPECT_EQ(merged.distinct_documents(),
            a.distinct_documents() + b.distinct_documents());
  EXPECT_EQ(merged.total_requests(), a.total_requests() + b.total_requests());
}

}  // namespace
}  // namespace webcache::trace
