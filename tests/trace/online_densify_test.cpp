// The bounded online densifier must be a drop-in for trace::densify():
// same dense id for every request, in first-appearance order, no matter how
// small the hot tier is forced — and the no-aliasing guard-rail: two
// distinct original ids can never share a dense id, even across spills.
#include "trace/online_densify.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "synth/generator.hpp"
#include "synth/profile.hpp"
#include "trace/dense_trace.hpp"
#include "util/rng.hpp"

namespace webcache::trace {
namespace {

Trace recorded_trace() {
  synth::TraceGenerator generator(synth::WorkloadProfile::DFN().scaled(0.002));
  return generator.generate();
}

TEST(OnlineDensify, MatchesBatchDensifyAtEveryHotCapacity) {
  const Trace t = recorded_trace();
  const DenseTrace batch = densify(t);

  // From pathological (capacity 2: nearly every lookup spills or cold-hits)
  // to larger than the universe (never spills).
  for (const std::size_t hot : {std::size_t{2}, std::size_t{3},
                                std::size_t{64}, std::size_t{1} << 20}) {
    OnlineDensifier::Options options;
    options.hot_capacity = hot;
    OnlineDensifier densifier(options);
    for (std::size_t i = 0; i < t.requests.size(); ++i) {
      const DocumentId dense = densifier.densify(t.requests[i].document);
      ASSERT_EQ(dense, batch.trace.requests[i].document)
          << "hot=" << hot << " request " << i;
    }
    EXPECT_EQ(densifier.document_count(), batch.document_count())
        << "hot=" << hot;
    if (hot == 2) {
      EXPECT_GT(densifier.spills(), 0u);
      EXPECT_GT(densifier.cold_hits(), 0u);
    }
    if (hot == std::size_t{1} << 20) {
      EXPECT_EQ(densifier.spills(), 0u);
    }
    EXPECT_LE(densifier.hot_size(), hot);
  }
}

TEST(OnlineDensify, FirstAppearanceOrderAndStability) {
  OnlineDensifier densifier(OnlineDensifier::Options{4});
  const std::vector<DocumentId> sequence = {900, 17, 900, 42, 17, 7, 7, 900};
  const std::vector<DocumentId> expected = {0, 1, 0, 2, 1, 3, 3, 0};
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(densifier.densify(sequence[i]), expected[i]) << "step " << i;
  }
  EXPECT_EQ(densifier.document_count(), 4u);
  // Asking again (any order) returns the same ids forever.
  EXPECT_EQ(densifier.densify(7), 3u);
  EXPECT_EQ(densifier.densify(900), 0u);
  EXPECT_EQ(densifier.densify(17), 1u);
}

TEST(OnlineDensify, SpillFuzzNeverAliasesAndNeverForgets) {
  // Adversarial mix for the spill machinery: a small hot set revisited
  // constantly (stays hot), a long sparse tail (churns through the hot tier
  // and spills), and periodic re-references to long-evicted documents
  // (cold-tier lookups across many merged runs).
  util::Rng rng(20260809);
  OnlineDensifier::Options options;
  options.hot_capacity = 8;  // force heavy spilling through the 4096 buffer
  OnlineDensifier densifier(options);
  std::unordered_map<DocumentId, DocumentId> reference;
  std::unordered_set<DocumentId> dense_seen;

  const std::size_t kSteps = 200000;
  for (std::size_t i = 0; i < kSteps; ++i) {
    DocumentId original;
    const double u = rng.uniform();
    if (u < 0.3) {
      original = 1000 + rng.below(8);  // hot set
    } else if (u < 0.6 && !reference.empty()) {
      // Revisit any previously seen document, however long ago.
      original = 2000000 + rng.below(reference.size());
      if (!reference.count(original)) original = 2000000 + i;  // miss -> new
    } else {
      original = 2000000 + i;  // fresh tail document
    }

    const DocumentId dense = densifier.densify(original);
    const auto it = reference.find(original);
    if (it != reference.end()) {
      // Never forgets: the id assigned at first sight, forever.
      ASSERT_EQ(dense, it->second) << "step " << i;
    } else {
      // Never aliases: a fresh document gets a fresh dense id.
      ASSERT_TRUE(dense_seen.insert(dense).second)
          << "dense id " << dense << " aliased at step " << i;
      ASSERT_EQ(dense, reference.size());  // first-appearance order
      reference.emplace(original, dense);
    }
    ASSERT_LE(densifier.hot_size(), options.hot_capacity);
  }
  EXPECT_EQ(densifier.document_count(), reference.size());
  EXPECT_GT(densifier.spills(), 0u);
  EXPECT_GT(densifier.cold_hits(), 0u);
}

TEST(OnlineDensify, DefaultOptionsHandleBackToBackDuplicates) {
  OnlineDensifier densifier;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(densifier.densify(5), 0u);
  }
  EXPECT_EQ(densifier.document_count(), 1u);
  EXPECT_EQ(densifier.spills(), 0u);
}

}  // namespace
}  // namespace webcache::trace
