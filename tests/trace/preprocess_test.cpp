#include "trace/preprocess.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace webcache::trace {
namespace {

LogEntry entry(const std::string& method, const std::string& url,
               std::uint16_t status, std::uint64_t size = 100,
               std::uint64_t timestamp_ms = 1000,
               const std::string& content_type = "") {
  LogEntry e;
  e.timestamp_ms = timestamp_ms;
  e.method = method;
  e.url = url;
  e.status = status;
  e.size = size;
  e.content_type = content_type;
  return e;
}

TEST(Preprocessor, AcceptsCacheableGet) {
  Preprocessor pre;
  const auto r = pre.process(entry("GET", "http://a/b.gif", 200, 4316));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->doc_class, DocumentClass::kImage);
  EXPECT_EQ(r->status, 200);
  EXPECT_EQ(r->document_size, 4316u);
  EXPECT_EQ(r->transfer_size, 4316u);
  EXPECT_EQ(pre.stats().accepted, 1u);
}

TEST(Preprocessor, RejectsByMethod) {
  Preprocessor pre;
  EXPECT_FALSE(pre.process(entry("POST", "http://a/b.gif", 200)));
  EXPECT_EQ(pre.stats().rejected_method, 1u);
  EXPECT_EQ(pre.stats().accepted, 0u);
}

TEST(Preprocessor, RejectsDynamicUrl) {
  Preprocessor pre;
  EXPECT_FALSE(pre.process(entry("GET", "http://a/cgi-bin/x", 200)));
  EXPECT_FALSE(pre.process(entry("GET", "http://a/b?x=1", 200)));
  EXPECT_EQ(pre.stats().rejected_dynamic_url, 2u);
}

TEST(Preprocessor, RejectsByStatus) {
  Preprocessor pre;
  EXPECT_FALSE(pre.process(entry("GET", "http://a/b.gif", 404)));
  EXPECT_EQ(pre.stats().rejected_status, 1u);
}

TEST(Preprocessor, FilterOrderMethodFirst) {
  // A POST to a dynamic URL counts as a method rejection (filters apply in
  // the documented order), so the stats attribute each drop once.
  Preprocessor pre;
  EXPECT_FALSE(pre.process(entry("POST", "http://a/cgi-bin/x", 404)));
  EXPECT_EQ(pre.stats().rejected_method, 1u);
  EXPECT_EQ(pre.stats().rejected_dynamic_url, 0u);
  EXPECT_EQ(pre.stats().rejected_status, 0u);
}

TEST(Preprocessor, TimestampsRebasedToFirstAccepted) {
  Preprocessor pre;
  // First entry is rejected; the base must come from the first *accepted*.
  pre.process(entry("POST", "http://a/x", 200, 1, 500));
  const auto r1 = pre.process(entry("GET", "http://a/b.gif", 200, 1, 2000));
  const auto r2 = pre.process(entry("GET", "http://a/c.gif", 200, 1, 2500));
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->timestamp_ms, 0u);
  EXPECT_EQ(r2->timestamp_ms, 500u);
}

TEST(Preprocessor, OutOfOrderTimestampClampedToZero) {
  Preprocessor pre;
  pre.process(entry("GET", "http://a/b.gif", 200, 1, 2000));
  const auto r = pre.process(entry("GET", "http://a/c.gif", 200, 1, 1000));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->timestamp_ms, 0u);
}

TEST(Preprocessor, SameUrlSameDocument) {
  Preprocessor pre;
  const auto r1 = pre.process(entry("GET", "http://a/b.gif", 200));
  const auto r2 = pre.process(entry("GET", "http://a/b.gif", 200));
  const auto r3 = pre.process(entry("GET", "http://a/c.gif", 200));
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->document, r2->document);
  EXPECT_NE(r1->document, r3->document);
}

TEST(Preprocessor, ClientHashedStableAndNonZero) {
  Preprocessor pre;
  LogEntry e1 = entry("GET", "http://a/b.gif", 200);
  e1.client = "10.0.0.1";
  LogEntry e2 = entry("GET", "http://a/c.gif", 200);
  e2.client = "10.0.0.1";
  LogEntry e3 = entry("GET", "http://a/d.gif", 200);
  e3.client = "10.0.0.2";
  const auto r1 = pre.process(e1);
  const auto r2 = pre.process(e2);
  const auto r3 = pre.process(e3);
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_NE(r1->client, 0u);
  EXPECT_EQ(r1->client, r2->client);   // same address, same partition
  EXPECT_NE(r1->client, r3->client);   // different address
}

TEST(Preprocessor, MissingClientIsZero) {
  Preprocessor pre;
  LogEntry e = entry("GET", "http://a/b.gif", 200);
  e.client = "-";
  const auto r = pre.process(e);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->client, 0u);
}

TEST(Preprocessor, ContentTypeDrivesClassification) {
  Preprocessor pre;
  const auto r = pre.process(
      entry("GET", "http://a/file.bin", 200, 10, 0, "video/mpeg"));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->doc_class, DocumentClass::kMultiMedia);
}

TEST(PreprocessSquidLog, EndToEnd) {
  const std::string log =
      // kept: cacheable image
      "100.0 1 c TCP_MISS/200 4316 GET http://a/logo.gif - D/x image/gif\n"
      // dropped: query string
      "101.0 1 c TCP_MISS/200 99 GET http://a/s?q=1 - D/x text/html\n"
      // dropped: POST
      "102.0 1 c TCP_MISS/200 99 POST http://a/form - D/x text/html\n"
      // kept: 304 revalidation
      "103.0 1 c TCP_REFRESH_HIT/304 219 GET http://a/logo.gif - D/x -\n"
      // dropped: 404
      "104.0 1 c TCP_MISS/404 120 GET http://a/missing.html - D/x -\n"
      // kept: pdf
      "105.0 1 c TCP_MISS/200 50000 GET http://a/paper.pdf - D/x application/pdf\n";
  std::istringstream in(log);
  PreprocessStats stats;
  const Trace trace = preprocess_squid_log(in, &stats);
  ASSERT_EQ(trace.requests.size(), 3u);
  EXPECT_EQ(stats.total_entries, 6u);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected_dynamic_url, 1u);
  EXPECT_EQ(stats.rejected_method, 1u);
  EXPECT_EQ(stats.rejected_status, 1u);
  EXPECT_EQ(trace.requests[0].doc_class, DocumentClass::kImage);
  EXPECT_EQ(trace.requests[1].status, 304);
  EXPECT_EQ(trace.requests[2].doc_class, DocumentClass::kApplication);
  EXPECT_EQ(trace.requests[0].timestamp_ms, 0u);
  EXPECT_EQ(trace.requests[2].timestamp_ms, 5000u);
  // Same URL twice -> one distinct document.
  EXPECT_EQ(trace.distinct_documents(), 2u);
}

}  // namespace
}  // namespace webcache::trace
