#include "trace/squid_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace webcache::trace {
namespace {

constexpr const char* kLine =
    "981173030.531 120 10.0.0.1 TCP_MISS/200 4316 GET "
    "http://www.example.com/logo.gif - DIRECT/1.2.3.4 image/gif";

TEST(ParseLine, ParsesAllFields) {
  const auto entry = parse_squid_line(kLine);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->timestamp_ms, 981173030531ULL);
  EXPECT_EQ(entry->elapsed_ms, 120u);
  EXPECT_EQ(entry->client, "10.0.0.1");
  EXPECT_EQ(entry->action, "TCP_MISS");
  EXPECT_EQ(entry->status, 200);
  EXPECT_EQ(entry->size, 4316u);
  EXPECT_EQ(entry->method, "GET");
  EXPECT_EQ(entry->url, "http://www.example.com/logo.gif");
  EXPECT_EQ(entry->content_type, "image/gif");
}

TEST(ParseLine, DashContentTypeIsEmpty) {
  const auto entry = parse_squid_line(
      "1.0 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->content_type, "");
}

TEST(ParseLine, NineFieldLogAccepted) {
  const auto entry = parse_squid_line(
      "1.0 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->content_type, "");
}

TEST(ParseLine, FractionalTimestampPadding) {
  // ".5" means 500 ms, not 5 ms.
  auto entry = parse_squid_line("10.5 0 c TCP_HIT/200 1 GET u - p/x -");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->timestamp_ms, 10500u);
  // No fractional part at all.
  entry = parse_squid_line("10 0 c TCP_HIT/200 1 GET u - p/x -");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->timestamp_ms, 10000u);
  // Micro-second logs are truncated to milliseconds.
  entry = parse_squid_line("10.123456 0 c TCP_HIT/200 1 GET u - p/x -");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->timestamp_ms, 10123u);
}

TEST(ParseLine, MalformedLinesRejected) {
  EXPECT_FALSE(parse_squid_line(""));
  EXPECT_FALSE(parse_squid_line("too few fields"));
  EXPECT_FALSE(parse_squid_line(
      "notanumber 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -"));
  EXPECT_FALSE(parse_squid_line(
      "1.0 5 c TCP_HIT_NO_SLASH 10 GET http://a/b - DIRECT/x -"));
  EXPECT_FALSE(parse_squid_line(
      "1.0 5 c TCP_HIT/20000 10 GET http://a/b - DIRECT/x -"));
  EXPECT_FALSE(parse_squid_line(
      "1.0 5 c TCP_HIT/200 notasize GET http://a/b - DIRECT/x -"));
}

TEST(ParseLine, TabsAndRepeatedSpacesTolerated) {
  const auto entry = parse_squid_line(
      "1.0   5\tc  TCP_HIT/200  10 GET http://a/b - DIRECT/x image/png");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 200);
  EXPECT_EQ(entry->content_type, "image/png");
}

TEST(Parser, StreamsAndCountsRejects) {
  std::istringstream in(std::string(kLine) + "\n" + "garbage line\n" + kLine +
                        "\n\n");
  SquidLogParser parser(in);
  int parsed = 0;
  while (parser.next()) ++parsed;
  EXPECT_EQ(parsed, 2);
  EXPECT_EQ(parser.lines_read(), 4u);
  EXPECT_EQ(parser.lines_rejected(), 2u);
}

TEST(ParseLine, RejectReasonClassifiesTheFailure) {
  ParseRejectReason reason = ParseRejectReason::kEmpty;
  EXPECT_FALSE(parse_squid_line("", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kEmpty);
  EXPECT_FALSE(parse_squid_line("too few fields", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kFieldCount);
  EXPECT_FALSE(parse_squid_line(
      "notanumber 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kBadTimestamp);
  EXPECT_FALSE(parse_squid_line(
      "1.0 -5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kBadElapsed);
  EXPECT_FALSE(parse_squid_line(
      "1.0 5 c TCP_HIT_NO_SLASH 10 GET http://a/b - DIRECT/x -", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kBadAction);
  EXPECT_FALSE(parse_squid_line(
      "1.0 5 c TCP_HIT/20000 10 GET http://a/b - DIRECT/x -", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kBadStatus);
  EXPECT_FALSE(parse_squid_line(
      "1.0 5 c TCP_HIT/200 notasize GET http://a/b - DIRECT/x -", &reason));
  EXPECT_EQ(reason, ParseRejectReason::kBadSize);
}

TEST(Parser, ReportClassifiesAndSummarizes) {
  std::istringstream in(
      std::string(kLine) + "\n" +
      "garbage line\n" +                                          // field count
      "nan 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -\n" +    // timestamp
      "nan2 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -\n" +   // timestamp
      "\n");                                                      // empty
  SquidLogParser parser(in);
  while (parser.next()) {
  }
  const ParseReport& report = parser.report();
  EXPECT_EQ(report.lines_read, 5u);
  EXPECT_EQ(report.accepted, 1u);
  EXPECT_EQ(report.total_rejected(), 4u);
  EXPECT_EQ(report.accepted + report.total_rejected(), report.lines_read);
  EXPECT_EQ(report.rejected_for(ParseRejectReason::kFieldCount), 1u);
  EXPECT_EQ(report.rejected_for(ParseRejectReason::kBadTimestamp), 2u);
  EXPECT_EQ(report.rejected_for(ParseRejectReason::kEmpty), 1u);
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("4 lines rejected"), std::string::npos) << summary;
  EXPECT_NE(summary.find("2 bad timestamp"), std::string::npos) << summary;
  EXPECT_NE(summary.find("1 field count"), std::string::npos) << summary;
}

TEST(Parser, CleanLogHasEmptySummary) {
  std::istringstream in(std::string(kLine) + "\n");
  SquidLogParser parser(in);
  while (parser.next()) {
  }
  EXPECT_TRUE(parser.report().summary().empty());
}

TEST(Parser, StrictModeNamesLineAndReason) {
  std::istringstream in(std::string(kLine) + "\n" + kLine + "\n" +
                        "nan 5 c TCP_HIT/200 10 GET http://a/b - DIRECT/x -\n");
  SquidLogParser parser(in, /*strict=*/true);
  EXPECT_TRUE(parser.next());
  EXPECT_TRUE(parser.next());
  try {
    parser.next();
    FAIL() << "strict parser accepted a malformed line";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("bad timestamp"), std::string::npos) << what;
  }
}

TEST(Parser, StrictModeAcceptsCleanLog) {
  std::istringstream in(std::string(kLine) + "\n" + kLine + "\n");
  SquidLogParser parser(in, /*strict=*/true);
  int parsed = 0;
  while (parser.next()) ++parsed;
  EXPECT_EQ(parsed, 2);
  EXPECT_EQ(parser.report().total_rejected(), 0u);
}

TEST(ParseLine, FuzzRandomBytesNeverCrash) {
  // The parser fronts multi-month production logs: arbitrary garbage must
  // be rejected or parsed, never crash or throw.
  util::Rng rng(2027);
  for (int round = 0; round < 2000; ++round) {
    std::string line;
    const auto len = rng.below(200);
    for (std::uint64_t i = 0; i < len; ++i) {
      line += static_cast<char>(rng.below(96) + 32);  // printable ASCII
    }
    EXPECT_NO_THROW({ auto r = parse_squid_line(line); (void)r; });
  }
}

TEST(ParseLine, FuzzMutatedValidLines) {
  // Single-character mutations of a valid line: each either parses to a
  // well-formed entry or is rejected; no crashes, no partial garbage like
  // status > 999.
  util::Rng rng(2028);
  const std::string base = kLine;
  for (int round = 0; round < 2000; ++round) {
    std::string line = base;
    const auto pos = rng.below(line.size());
    line[pos] = static_cast<char>(rng.below(96) + 32);
    const auto entry = parse_squid_line(line);
    if (entry) {
      EXPECT_LE(entry->status, 999);
      EXPECT_FALSE(entry->method.empty());
      EXPECT_FALSE(entry->url.empty());
    }
  }
}

TEST(UrlHash, StableAndDistinct) {
  const auto a = url_to_document_id("http://a/1");
  EXPECT_EQ(a, url_to_document_id("http://a/1"));
  EXPECT_NE(a, url_to_document_id("http://a/2"));
  EXPECT_NE(url_to_document_id(""), url_to_document_id("x"));
}

}  // namespace
}  // namespace webcache::trace
