#include "trace/squid_log_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "synth/generator.hpp"
#include "trace/preprocess.hpp"
#include "trace/squid_log.hpp"

namespace webcache::trace {
namespace {

Request sample_request() {
  Request r;
  r.timestamp_ms = 12345;
  r.document = 0xAB;
  r.doc_class = DocumentClass::kImage;
  r.status = 200;
  r.document_size = 4316;
  r.transfer_size = 4316;
  return r;
}

TEST(Writer, LineParsesBack) {
  const std::string line = to_squid_line(sample_request());
  const auto entry = parse_squid_line(line);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->status, 200);
  EXPECT_EQ(entry->size, 4316u);
  EXPECT_EQ(entry->method, "GET");
  EXPECT_EQ(entry->content_type, "image/gif");
  // Epoch offset + trace-relative milliseconds.
  EXPECT_EQ(entry->timestamp_ms, 981000000ULL * 1000 + 12345);
}

TEST(Writer, SubSecondTimestampsZeroPadded) {
  Request r = sample_request();
  r.timestamp_ms = 1005;  // ".005" must not become ".5"
  const auto entry = parse_squid_line(to_squid_line(r));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->timestamp_ms % 1000, 5u);
}

TEST(Writer, UrlsAreStablePerDocument) {
  EXPECT_EQ(synthetic_url(1, DocumentClass::kHtml, "h"),
            synthetic_url(1, DocumentClass::kHtml, "h"));
  EXPECT_NE(synthetic_url(1, DocumentClass::kHtml, "h"),
            synthetic_url(2, DocumentClass::kHtml, "h"));
}

TEST(Writer, ExtensionMatchesClass) {
  for (const auto cls :
       {DocumentClass::kImage, DocumentClass::kHtml, DocumentClass::kMultiMedia,
        DocumentClass::kApplication}) {
    const std::string url = synthetic_url(7, cls, "host");
    EXPECT_EQ(classify_extension(url), cls) << url;
  }
}

TEST(Writer, OtherClassEmitsDashMime) {
  Request r = sample_request();
  r.doc_class = DocumentClass::kOther;
  const std::string line = to_squid_line(r);
  EXPECT_EQ(line.substr(line.size() - 2), " -");
}

TEST(Writer, FullRoundTripThroughPreprocessor) {
  // Generate -> write access.log -> parse + preprocess -> the same stream.
  synth::GeneratorOptions gen;
  gen.seed = 31;
  const Trace original =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.0005), gen)
          .generate();

  std::stringstream log;
  const std::uint64_t lines = write_squid_log(log, original);
  EXPECT_EQ(lines, original.requests.size());

  PreprocessStats stats;
  const Trace parsed = preprocess_squid_log(log, &stats);
  ASSERT_EQ(parsed.requests.size(), original.requests.size());
  EXPECT_EQ(stats.accepted, original.requests.size());
  EXPECT_EQ(parsed.distinct_documents(), original.distinct_documents());
  EXPECT_EQ(parsed.requested_bytes(), original.requested_bytes());
  // The preprocessor rebases timestamps to the first accepted entry.
  const std::uint64_t base = original.requests[0].timestamp_ms;
  for (std::size_t i = 0; i < parsed.requests.size(); i += 101) {
    EXPECT_EQ(parsed.requests[i].doc_class, original.requests[i].doc_class);
    EXPECT_EQ(parsed.requests[i].transfer_size,
              original.requests[i].transfer_size);
    EXPECT_EQ(parsed.requests[i].timestamp_ms,
              original.requests[i].timestamp_ms - base);
  }
  // Document identity is preserved *as a partition*: same requests map to
  // same ids.
  EXPECT_EQ(parsed.requests[0].document,
            url_to_document_id(synthetic_url(original.requests[0].document,
                                             original.requests[0].doc_class,
                                             "synth.example")));
}

}  // namespace
}  // namespace webcache::trace
