// StreamingTraceReader must be indistinguishable from the materialized
// loaders: identical requests for every chunking, and — the triage
// guarantee — *string-identical* diagnostics for every corruption mode, so
// a truncated multi-GB file names the same record index and byte offset
// whichever loader touches it.
#include "trace/streaming_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "trace/binary_trace.hpp"

namespace webcache::trace {
namespace {

Trace sample_trace(std::size_t n = 100) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    Request r;
    r.timestamp_ms = 100 + 37 * i;
    r.document = 0xBEEF0000 + (i * 7) % 23;
    r.client = static_cast<std::uint32_t>(i % 5);
    r.doc_class = static_cast<DocumentClass>(i % kDocumentClassCount);
    r.status = i % 9 == 0 ? 206 : 200;
    r.document_size = 500 + 131 * i;
    r.transfer_size = i % 9 == 0 ? r.document_size / 2 : r.document_size;
    t.requests.push_back(r);
  }
  return t;
}

std::string write_temp(const std::string& data, const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return path;
}

void expect_equal_requests(const Request& a, const Request& b,
                           std::size_t i) {
  EXPECT_EQ(a.timestamp_ms, b.timestamp_ms) << "record " << i;
  EXPECT_EQ(a.document, b.document) << "record " << i;
  EXPECT_EQ(a.client, b.client) << "record " << i;
  EXPECT_EQ(a.doc_class, b.doc_class) << "record " << i;
  EXPECT_EQ(a.status, b.status) << "record " << i;
  EXPECT_EQ(a.document_size, b.document_size) << "record " << i;
  EXPECT_EQ(a.transfer_size, b.transfer_size) << "record " << i;
}

TEST(StreamingTrace, RoundTripMatchesFileLoaderForEveryChunking) {
  const Trace t = sample_trace();
  const std::string path = testing::TempDir() + "/streaming_roundtrip.wct";
  write_binary_trace_file(path, t);
  const Trace loaded = read_binary_trace_file(path);

  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{3}, std::size_t{64}, std::size_t{1024}}) {
    StreamingTraceReader reader(path, chunk);
    EXPECT_EQ(reader.total_requests(), t.requests.size());
    EXPECT_EQ(reader.version(), 2u);
    std::vector<Request> streamed;
    for (auto span = reader.next_chunk(); !span.empty();
         span = reader.next_chunk()) {
      EXPECT_LE(span.size(), chunk);
      streamed.insert(streamed.end(), span.begin(), span.end());
    }
    ASSERT_EQ(streamed.size(), loaded.requests.size()) << "chunk " << chunk;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      expect_equal_requests(streamed[i], loaded.requests[i], i);
    }
  }
  std::remove(path.c_str());
}

TEST(StreamingTrace, ResetReplaysIdentically) {
  const Trace t = sample_trace(50);
  const std::string path = testing::TempDir() + "/streaming_reset.wct";
  write_binary_trace_file(path, t);

  StreamingTraceReader reader(path, 7);
  std::vector<Request> first;
  for (auto span = reader.next_chunk(); !span.empty();
       span = reader.next_chunk()) {
    first.insert(first.end(), span.begin(), span.end());
  }
  reader.reset();
  std::vector<Request> second;
  for (auto span = reader.next_chunk(); !span.empty();
       span = reader.next_chunk()) {
    second.insert(second.end(), span.begin(), span.end());
  }
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_equal_requests(first[i], second[i], i);
  }

  // Mid-stream reset: consume a bit, rewind, and the full replay is intact.
  reader.reset();
  (void)reader.next_chunk();
  reader.reset();
  std::vector<Request> third;
  for (auto span = reader.next_chunk(); !span.empty();
       span = reader.next_chunk()) {
    third.insert(third.end(), span.begin(), span.end());
  }
  ASSERT_EQ(first.size(), third.size());
  std::remove(path.c_str());
}

TEST(StreamingTrace, EmptyTraceYieldsNoChunks) {
  const std::string path = testing::TempDir() + "/streaming_empty.wct";
  write_binary_trace_file(path, Trace{});
  StreamingTraceReader reader(path, 16);
  EXPECT_EQ(reader.total_requests(), 0u);
  EXPECT_TRUE(reader.next_chunk().empty());
  EXPECT_TRUE(reader.next_chunk().empty());  // idempotent at EOS
  std::remove(path.c_str());
}

// ---- diagnostics: string-identical to the materialized file loader ----

std::string stream_diagnostic_for(const std::string& data,
                                  std::size_t chunk) {
  const std::string path = write_temp(data, "streaming_diag.bin");
  std::string what;
  try {
    StreamingTraceReader reader(path, chunk);
    while (!reader.next_chunk().empty()) {
    }
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  std::remove(path.c_str());
  return what;
}

std::string file_diagnostic_for(const std::string& data) {
  const std::string path = write_temp(data, "streaming_diag_ref.bin");
  std::string what;
  try {
    read_binary_trace_file(path);
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  std::remove(path.c_str());
  return what;
}

TEST(StreamingTrace, CorruptionDiagnosticsMatchFileLoaderVerbatim) {
  // sample_trace(2)-equivalent layout: two 39-byte v2 records after the
  // 16-byte header, then the 8-byte FNV trailer.
  std::stringstream buf;
  write_binary_trace(buf, sample_trace(2));
  const std::string good = buf.str();
  ASSERT_EQ(good.size(), 16u + 2 * 39 + 8);

  struct Case {
    const char* label;
    std::string data;
  };
  const std::vector<Case> cases = {
      {"truncated mid record 1", good.substr(0, 16 + 39 + 10)},
      {"truncated mid record 0", good.substr(0, 16 + 5)},
      {"missing trailer", good.substr(0, good.size() - 8)},
      {"short trailer", good.substr(0, good.size() - 3)},
      {"bad magic", std::string("NOPE-this-is-not-a-trace")},
      {"truncated header", good.substr(0, 7)},
      {"future version", [&] {
         std::string d = good;
         d[4] = 9;
         return d;
       }()},
      {"invalid class", [&] {
         std::string d = good;
         d[16 + 39 + 20] = 42;
         return d;
       }()},
      {"checksum flip", [&] {
         std::string d = good;
         d[16 + 5] ^= 0x01;
         return d;
       }()},
  };

  for (const Case& c : cases) {
    const std::string expected = file_diagnostic_for(c.data);
    ASSERT_FALSE(expected.empty()) << c.label;
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                    std::size_t{1024}}) {
      const std::string got = stream_diagnostic_for(c.data, chunk);
      EXPECT_EQ(expected, got)
          << c.label << " at chunk " << chunk
          << ": streamed diagnostic diverged from the file loader";
    }
  }
}

TEST(StreamingTrace, MissingFileThrows) {
  EXPECT_THROW(StreamingTraceReader("/nonexistent/path/x.wct", 16),
               std::runtime_error);
}

TEST(StreamingTrace, ReadsVersionOneFiles) {
  // Same hand-crafted v1 image the materialized-loader test uses: one
  // 35-byte record without the client field.
  std::string data;
  auto append = [&](const void* p, std::size_t n) {
    data.append(static_cast<const char*>(p), n);
  };
  data.append("WCT1", 4);
  const std::uint32_t version = 1;
  append(&version, 4);
  const std::uint64_t count = 1;
  append(&count, 8);

  std::string record;
  auto rec = [&](const void* p, std::size_t n) {
    record.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t ts = 123, doc = 456, doc_size = 1000, transfer = 900;
  const std::uint8_t cls = 1;  // HTML
  const std::uint16_t status = 200;
  rec(&ts, 8);
  rec(&doc, 8);
  rec(&cls, 1);
  rec(&status, 2);
  rec(&doc_size, 8);
  rec(&transfer, 8);
  data += record;

  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : record) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  append(&h, 8);

  const std::string path = write_temp(data, "streaming_v1.bin");
  StreamingTraceReader reader(path, 4);
  EXPECT_EQ(reader.version(), 1u);
  const auto span = reader.next_chunk();
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].timestamp_ms, 123u);
  EXPECT_EQ(span[0].document, 456u);
  EXPECT_EQ(span[0].client, 0u);
  EXPECT_EQ(span[0].doc_class, DocumentClass::kHtml);
  EXPECT_EQ(span[0].document_size, 1000u);
  EXPECT_EQ(span[0].transfer_size, 900u);
  EXPECT_TRUE(reader.next_chunk().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webcache::trace
