// The permissive WCT1 loader (--recover): damaged records are skipped and a
// truncated tail dropped, with every incident reported by record index and
// byte offset; a clean file must load exactly like the strict reader, and
// an unrecoverable header (no magic, wrong version) must still throw.
#include "trace/binary_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace webcache::trace {
namespace {

Trace sample_trace(std::size_t count) {
  Trace t;
  for (std::size_t i = 0; i < count; ++i) {
    Request r;
    r.timestamp_ms = 100 + 10 * i;
    r.document = 0x1000 + i;
    r.client = static_cast<std::uint32_t>(i % 7);
    r.doc_class = static_cast<DocumentClass>(i % kDocumentClassCount);
    r.status = 200;
    r.document_size = 1000 + i;
    r.transfer_size = 1000 + i;
    t.requests.push_back(r);
  }
  return t;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// v2 record layout: u64 ts | u64 doc | u32 client | u8 class | u16 status |
// u64 doc_size | u64 transfer_size = 39 bytes, after the 16-byte header.
constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 39;
constexpr std::size_t kClassOffsetInRecord = 20;

TEST(TraceRecovery, CleanFileMatchesStrictLoader) {
  const std::string path = temp_path("recovery_clean.wct");
  write_binary_trace_file(path, sample_trace(50));

  RecoveryReport report;
  const Trace recovered = read_binary_trace_file_recovering(path, report);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.recovered, 50u);
  EXPECT_TRUE(report.first_errors.empty());

  const Trace strict = read_binary_trace_file(path);
  ASSERT_EQ(recovered.requests.size(), strict.requests.size());
  for (std::size_t i = 0; i < strict.requests.size(); ++i) {
    EXPECT_EQ(recovered.requests[i].document, strict.requests[i].document);
    EXPECT_EQ(recovered.requests[i].doc_class, strict.requests[i].doc_class);
  }
  std::remove(path.c_str());
}

TEST(TraceRecovery, InvalidClassByteSkippedWithIndexAndOffset) {
  const std::string path = temp_path("recovery_class.wct");
  write_binary_trace_file(path, sample_trace(50));

  std::vector<char> bytes = file_bytes(path);
  const std::size_t rec = 7;
  // Diagnostics point at the start of the damaged record.
  const std::size_t offset = kHeaderBytes + rec * kRecordBytes;
  bytes[offset + kClassOffsetInRecord] = static_cast<char>(0xFF);
  write_bytes(path, bytes);

  // Strict loader refuses the whole file.
  EXPECT_THROW(read_binary_trace_file(path), std::runtime_error);

  RecoveryReport report;
  const Trace recovered = read_binary_trace_file_recovering(path, report);
  EXPECT_EQ(recovered.requests.size(), 49u);
  EXPECT_EQ(report.recovered, 49u);
  EXPECT_EQ(report.skipped, 1u);
  EXPECT_EQ(report.truncated_records, 0u);
  // The payload changed, so the trailer no longer matches — reported, not
  // thrown.
  EXPECT_TRUE(report.checksum_mismatch);
  EXPECT_FALSE(report.clean());
  ASSERT_FALSE(report.first_errors.empty());
  EXPECT_NE(report.first_errors[0].find("record 7"), std::string::npos)
      << report.first_errors[0];
  EXPECT_NE(report.first_errors[0].find(std::to_string(offset)),
            std::string::npos)
      << report.first_errors[0];
  // The surviving records are intact and in order.
  EXPECT_EQ(recovered.requests[6].document, 0x1000u + 6);
  EXPECT_EQ(recovered.requests[7].document, 0x1000u + 8);  // 7 was dropped
  std::remove(path.c_str());
}

TEST(TraceRecovery, TruncatedTailDroppedAndReported) {
  const std::string path = temp_path("recovery_trunc.wct");
  write_binary_trace_file(path, sample_trace(50));

  std::vector<char> bytes = file_bytes(path);
  // Chop the trailer plus the last two and a half records.
  bytes.resize(bytes.size() - 8 - 2 * kRecordBytes - kRecordBytes / 2);
  write_bytes(path, bytes);

  EXPECT_THROW(read_binary_trace_file(path), std::runtime_error);

  RecoveryReport report;
  const Trace recovered = read_binary_trace_file_recovering(path, report);
  EXPECT_EQ(recovered.requests.size(), 47u);
  EXPECT_EQ(report.recovered, 47u);
  EXPECT_EQ(report.truncated_records, 3u);
  EXPECT_TRUE(report.missing_trailer);
  EXPECT_FALSE(report.clean());
  ASSERT_FALSE(report.first_errors.empty());
  EXPECT_NE(report.first_errors[0].find("truncated"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceRecovery, FlippedPayloadBitIsAChecksumIncidentOnly) {
  const std::string path = temp_path("recovery_checksum.wct");
  write_binary_trace_file(path, sample_trace(50));

  std::vector<char> bytes = file_bytes(path);
  // Flip a size byte: the record still decodes (class byte untouched), so
  // only the trailer disagrees.
  bytes[kHeaderBytes + 3 * kRecordBytes + 25] ^= 0x01;
  write_bytes(path, bytes);

  RecoveryReport report;
  const Trace recovered = read_binary_trace_file_recovering(path, report);
  EXPECT_EQ(recovered.requests.size(), 50u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(report.checksum_mismatch);
  EXPECT_FALSE(report.clean());
  std::remove(path.c_str());
}

TEST(TraceRecovery, UnrecoverableHeaderStillThrows) {
  const std::string path = temp_path("recovery_header.wct");

  // Bad magic: there is no format to recover.
  write_bytes(path, {'N', 'O', 'P', 'E', 0, 0, 0, 0});
  RecoveryReport report;
  EXPECT_THROW(read_binary_trace_file_recovering(path, report),
               std::runtime_error);

  // Header shorter than 16 bytes.
  write_bytes(path, {'W', 'C', 'T', '1'});
  EXPECT_THROW(read_binary_trace_file_recovering(path, report),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceRecovery, ManyDamagedRecordsCapDiagnostics) {
  const std::string path = temp_path("recovery_cap.wct");
  write_binary_trace_file(path, sample_trace(50));

  std::vector<char> bytes = file_bytes(path);
  for (std::size_t rec = 0; rec < 20; ++rec) {
    bytes[kHeaderBytes + rec * kRecordBytes + kClassOffsetInRecord] =
        static_cast<char>(0xEE);
  }
  write_bytes(path, bytes);

  RecoveryReport report;
  const Trace recovered = read_binary_trace_file_recovering(path, report);
  EXPECT_EQ(recovered.requests.size(), 30u);
  EXPECT_EQ(report.skipped, 20u);
  // Diagnostics are capped so a shredded multi-GB file cannot flood memory.
  EXPECT_LE(report.first_errors.size(), RecoveryReport::kMaxErrors);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webcache::trace
