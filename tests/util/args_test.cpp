#include "util/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace webcache::util {
namespace {

Args make_args(std::initializer_list<const char*> argv) {
  std::vector<const char*> full = {"prog"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args(static_cast<int>(full.size()), full.data());
}

TEST(Args, EmptyHasNothing) {
  Args args = make_args({});
  EXPECT_FALSE(args.has("x"));
  EXPECT_TRUE(args.positional().empty());
  EXPECT_EQ(args.get("x", "fallback"), "fallback");
}

TEST(Args, KeyValueParsing) {
  Args args = make_args({"--scale=0.5", "--name=dfn"});
  EXPECT_TRUE(args.has("scale"));
  EXPECT_EQ(args.get("name", ""), "dfn");
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.5);
}

TEST(Args, BareFlagIsTrue) {
  Args args = make_args({"--verbose"});
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, BooleanSpellings) {
  EXPECT_TRUE(make_args({"--f=yes"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f=on"}).get_bool("f", false));
  EXPECT_TRUE(make_args({"--f=1"}).get_bool("f", false));
  EXPECT_FALSE(make_args({"--f=no"}).get_bool("f", true));
  EXPECT_FALSE(make_args({"--f=off"}).get_bool("f", true));
  EXPECT_FALSE(make_args({"--f=0"}).get_bool("f", true));
  EXPECT_THROW(make_args({"--f=maybe"}).get_bool("f", true),
               std::invalid_argument);
}

TEST(Args, IntegerParsing) {
  Args args = make_args({"--n=-42", "--m=7"});
  EXPECT_EQ(args.get_int("n", 0), -42);
  EXPECT_EQ(args.get_uint("m", 0), 7u);
  EXPECT_EQ(args.get_int("absent", 5), 5);
}

TEST(Args, PositionalCollected) {
  Args args = make_args({"first", "--k=v", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(Args, LastValueWins) {
  Args args = make_args({"--k=1", "--k=2"});
  EXPECT_EQ(args.get("k", ""), "2");
}

TEST(Args, EmptyValueAllowed) {
  Args args = make_args({"--k="});
  EXPECT_TRUE(args.has("k"));
  EXPECT_EQ(args.get("k", "zz"), "");
}

}  // namespace
}  // namespace webcache::util
