#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/fit.hpp"

namespace webcache::util {
namespace {

// ------------------------------------------------------------------ Zipf

TEST(Zipf, RejectsInvalidArguments) {
  EXPECT_THROW(ZipfDistribution(0, 0.8), std::invalid_argument);
  EXPECT_THROW(ZipfDistribution(10, -0.1), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  ZipfDistribution zipf(100, 0.8);
  double total = 0.0;
  for (std::uint64_t r = 1; r <= 100; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  ZipfDistribution zipf(10, 0.8);
  EXPECT_EQ(zipf.pmf(0), 0.0);
  EXPECT_EQ(zipf.pmf(11), 0.0);
}

TEST(Zipf, PmfDecaysWithRank) {
  ZipfDistribution zipf(1000, 0.8);
  EXPECT_GT(zipf.pmf(1), zipf.pmf(2));
  EXPECT_GT(zipf.pmf(10), zipf.pmf(100));
  // Exact ratio: (1/2)^-0.8.
  EXPECT_NEAR(zipf.pmf(1) / zipf.pmf(2), std::pow(2.0, 0.8), 1e-9);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfDistribution zipf(50, 0.0);
  for (std::uint64_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(zipf.pmf(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(Zipf, SamplesInRange) {
  ZipfDistribution zipf(42, 1.0);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto r = zipf.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 42u);
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchPmf) {
  ZipfDistribution zipf(20, 0.9);
  Rng rng(9);
  std::map<std::uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::uint64_t r = 1; r <= 5; ++r) {
    const double expected = zipf.pmf(r);
    const double observed = static_cast<double>(counts[r]) / n;
    EXPECT_NEAR(observed, expected, 0.01) << "rank " << r;
  }
}

TEST(Zipf, SampledRankFrequencySlopeMatchesAlpha) {
  // The defining property: log(count) vs log(rank) has slope -alpha.
  const double alpha = 0.75;
  ZipfDistribution zipf(5000, alpha);
  Rng rng(12);
  std::vector<double> counts(5000, 0.0);
  for (int i = 0; i < 400000; ++i) counts[zipf.sample(rng) - 1] += 1.0;
  std::vector<std::pair<double, double>> points;
  for (std::size_t r = 0; r < 200; ++r) {
    if (counts[r] > 0) {
      points.emplace_back(static_cast<double>(r + 1), counts[r]);
    }
  }
  const LineFit fit = fit_loglog(points);
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(-fit.slope, alpha, 0.08);
}

// ------------------------------------------------------------- Lognormal

TEST(Lognormal, RejectsInvalidParameters) {
  EXPECT_THROW(LognormalSizeDistribution(5.0, 0.0), std::invalid_argument);
  EXPECT_THROW(LognormalSizeDistribution(5.0, -1.0), std::invalid_argument);
  EXPECT_THROW(LognormalSizeDistribution(3.0, 5.0), std::invalid_argument);
}

TEST(Lognormal, ParameterRoundTrip) {
  LognormalSizeDistribution d(10000.0, 3000.0);
  EXPECT_NEAR(d.mean(), 10000.0, 1e-6);
  EXPECT_NEAR(d.median(), 3000.0, 1e-6);
}

TEST(Lognormal, DegenerateMeanEqualsMedian) {
  LognormalSizeDistribution d(5.0, 5.0);
  EXPECT_EQ(d.sigma(), 0.0);
  Rng rng(3);
  EXPECT_NEAR(d.sample(rng), 5.0, 1e-9);
}

TEST(Lognormal, EmpiricalMeanAndMedian) {
  LognormalSizeDistribution d(8500.0, 3200.0);
  Rng rng(21);
  std::vector<double> samples;
  const int n = 200000;
  double sum = 0.0;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    EXPECT_GT(x, 0.0);
    samples.push_back(x);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 8500.0, 8500.0 * 0.03);
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 3200.0, 3200.0 * 0.03);
}

TEST(Lognormal, CovFormula) {
  LognormalSizeDistribution d(10.0, 4.0);
  const double sigma2 = d.sigma() * d.sigma();
  EXPECT_NEAR(d.cov(), std::sqrt(std::exp(sigma2) - 1.0), 1e-12);
  // CoV grows with mean/median skew.
  LognormalSizeDistribution skewed(40.0, 4.0);
  EXPECT_GT(skewed.cov(), d.cov());
}

// --------------------------------------------------------- BoundedPareto

TEST(BoundedPareto, RejectsInvalidParameters) {
  EXPECT_THROW(BoundedParetoDistribution(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.2, 0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(BoundedParetoDistribution(1.2, 3.0, 2.0), std::invalid_argument);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  BoundedParetoDistribution d(1.1, 100.0, 100000.0);
  Rng rng(33);
  for (int i = 0; i < 20000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 100.0);
    EXPECT_LE(x, 100000.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesAnalytic) {
  BoundedParetoDistribution d(1.3, 1000.0, 1000000.0);
  Rng rng(35);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), d.mean() * 0.05);
}

TEST(BoundedPareto, HeavyTailProducesHighVariability) {
  BoundedParetoDistribution d(1.05, 1000.0, 10000000.0);
  Rng rng(37);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_GT(std::sqrt(var) / mean, 2.0);  // CoV well above lognormal bodies
}

// ------------------------------------------------------- PowerLawGap

TEST(PowerLawGap, RejectsInvalidParameters) {
  EXPECT_THROW(PowerLawGapDistribution(0, 1.0), std::invalid_argument);
  EXPECT_THROW(PowerLawGapDistribution(10, -0.5), std::invalid_argument);
}

TEST(PowerLawGap, PmfSumsToOne) {
  PowerLawGapDistribution d(500, 0.9);
  double total = 0.0;
  for (std::uint64_t g = 1; g <= 500; ++g) total += d.pmf(g);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PowerLawGap, ShortGapsDominate) {
  PowerLawGapDistribution d(10000, 1.0);
  Rng rng(41);
  int short_gaps = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) <= 10) ++short_gaps;
  }
  EXPECT_GT(static_cast<double>(short_gaps) / n, 0.25);
}

TEST(PowerLawGap, EmpiricalSlopeMatchesBeta) {
  const double beta = 0.8;
  PowerLawGapDistribution d(100000, beta);
  Rng rng(43);
  std::map<std::uint64_t, double> counts;
  for (int i = 0; i < 500000; ++i) ++counts[d.sample(rng)];
  std::vector<std::pair<double, double>> points;
  for (std::uint64_t g = 1; g <= 64; ++g) {
    if (counts.count(g)) {
      points.emplace_back(static_cast<double>(g), counts[g]);
    }
  }
  const LineFit fit = fit_loglog(points);
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(-fit.slope, beta, 0.08);
}

// ----------------------------------------------------------- Discrete

TEST(Discrete, RejectsInvalidWeights) {
  EXPECT_THROW(DiscreteDistribution({}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), std::invalid_argument);
}

TEST(Discrete, NormalizesWeights) {
  DiscreteDistribution d({2.0, 6.0});
  EXPECT_NEAR(d.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(d.probability(1), 0.75, 1e-12);
  EXPECT_EQ(d.probability(2), 0.0);
}

TEST(Discrete, ZeroWeightIndexNeverSampled) {
  DiscreteDistribution d({1.0, 0.0, 1.0});
  Rng rng(47);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(d.sample(rng), 1u);
  }
}

TEST(Discrete, FrequenciesMatchWeights) {
  DiscreteDistribution d({0.7, 0.2, 0.1});
  Rng rng(53);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[d.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.7, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.1, 0.01);
}

}  // namespace
}  // namespace webcache::util
