#include "util/fenwick.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace webcache::util {
namespace {

TEST(Fenwick, EmptyTreeTotalsZero) {
  FenwickTree t(10);
  EXPECT_EQ(t.total(), 0.0);
  EXPECT_EQ(t.prefix_sum(10), 0.0);
}

TEST(Fenwick, BuildFromWeights) {
  FenwickTree t(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(t.total(), 10.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(0), 0.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(1), 1.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(2), 3.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(3), 6.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(4), 10.0);
}

TEST(Fenwick, SingleWeights) {
  FenwickTree t(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(t.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(t.weight(1), 2.0);
  EXPECT_DOUBLE_EQ(t.weight(2), 3.0);
}

TEST(Fenwick, AddUpdatesSums) {
  FenwickTree t(5);
  t.add(2, 10.0);
  t.add(4, 5.0);
  EXPECT_DOUBLE_EQ(t.total(), 15.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(3), 10.0);
  t.add(2, -10.0);
  EXPECT_DOUBLE_EQ(t.prefix_sum(3), 0.0);
  EXPECT_DOUBLE_EQ(t.total(), 5.0);
}

TEST(Fenwick, FindSelectsByCumulativeWeight) {
  FenwickTree t(std::vector<double>{1.0, 0.0, 2.0, 3.0});
  // Cumulative boundaries: [0,1) -> 0, [1,3) -> 2, [3,6) -> 3.
  EXPECT_EQ(t.find(0.0), 0u);
  EXPECT_EQ(t.find(0.99), 0u);
  EXPECT_EQ(t.find(1.0), 2u);
  EXPECT_EQ(t.find(2.5), 2u);
  EXPECT_EQ(t.find(3.0), 3u);
  EXPECT_EQ(t.find(5.99), 3u);
}

TEST(Fenwick, FindNeverReturnsZeroWeightIndex) {
  FenwickTree t(std::vector<double>{0.0, 5.0, 0.0, 5.0, 0.0});
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t idx = t.find(rng.uniform() * t.total());
    EXPECT_TRUE(idx == 1 || idx == 3) << idx;
  }
}

TEST(Fenwick, FindOnEmptyThrows) {
  FenwickTree t(4);
  EXPECT_THROW(t.find(0.0), std::logic_error);
}

TEST(Fenwick, SamplingFrequenciesMatchWeights) {
  FenwickTree t(std::vector<double>{7.0, 2.0, 1.0});
  Rng rng(9);
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[t.find(rng.uniform() * t.total())];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.7, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.2, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.1, 0.01);
}

TEST(Fenwick, SamplingWithoutReplacementDrainsExactly) {
  // The generator's core loop: draw, decrement, repeat until empty.
  const std::vector<double> initial = {3.0, 1.0, 4.0, 1.0, 5.0};
  FenwickTree t(initial);
  std::vector<int> drawn(initial.size(), 0);
  Rng rng(11);
  double remaining = t.total();
  while (remaining > 0.5) {
    const std::size_t idx = t.find(rng.uniform() * remaining);
    ASSERT_GT(t.weight(idx), 0.5);
    ++drawn[idx];
    t.add(idx, -1.0);
    remaining = t.total();
  }
  for (std::size_t i = 0; i < initial.size(); ++i) {
    EXPECT_EQ(drawn[i], static_cast<int>(initial[i])) << "index " << i;
  }
}

TEST(Fenwick, LargeTreeRandomizedConsistency) {
  Rng rng(13);
  const std::size_t n = 1000;
  std::vector<double> weights(n);
  for (auto& w : weights) w = rng.uniform(0, 10);
  FenwickTree t(weights);

  // Random mutations, checked against a reference prefix array.
  for (int round = 0; round < 200; ++round) {
    const auto idx = static_cast<std::size_t>(rng.below(n));
    const double delta = rng.uniform(-weights[idx], 5.0);
    weights[idx] += delta;
    t.add(idx, delta);
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < n; i += 37) {
    acc = 0.0;
    for (std::size_t j = 0; j < i; ++j) acc += weights[j];
    EXPECT_NEAR(t.prefix_sum(i), acc, 1e-6);
  }
}

TEST(Fenwick, NonPowerOfTwoSizes) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 17u, 63u, 64u, 65u}) {
    std::vector<double> weights(n, 1.0);
    FenwickTree t(weights);
    EXPECT_DOUBLE_EQ(t.total(), static_cast<double>(n));
    EXPECT_EQ(t.find(static_cast<double>(n) - 0.5), n - 1);
    EXPECT_EQ(t.find(0.0), 0u);
  }
}

}  // namespace
}  // namespace webcache::util
