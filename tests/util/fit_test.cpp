#include "util/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace webcache::util {
namespace {

TEST(FitLine, TooFewPointsInvalid) {
  EXPECT_FALSE(fit_line({}).valid());
  EXPECT_FALSE(fit_line({{1.0, 2.0}}).valid());
}

TEST(FitLine, ExactLine) {
  const LineFit fit = fit_line({{0.0, 1.0}, {1.0, 3.0}, {2.0, 5.0}});
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, VerticalLineHasZeroSlope) {
  const LineFit fit = fit_line({{1.0, 0.0}, {1.0, 5.0}, {1.0, 9.0}});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.r_squared, 0.0);
}

TEST(FitLine, HorizontalLinePerfectFit) {
  const LineFit fit = fit_line({{0.0, 4.0}, {1.0, 4.0}, {2.0, 4.0}});
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineRecoversSlope) {
  Rng rng(3);
  std::vector<std::pair<double, double>> points;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    points.emplace_back(x, -1.5 * x + 4.0 + rng.gaussian() * 0.1);
  }
  const LineFit fit = fit_line(points);
  EXPECT_NEAR(fit.slope, -1.5, 0.02);
  EXPECT_NEAR(fit.intercept, 4.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FitLogLog, RecoverExactPowerLaw) {
  std::vector<std::pair<double, double>> points;
  for (double x = 1.0; x <= 1024.0; x *= 2.0) {
    points.emplace_back(x, 100.0 * std::pow(x, -0.8));
  }
  const LineFit fit = fit_loglog(points);
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(fit.slope, -0.8, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 100.0, 1e-6);
}

TEST(FitLogLog, SkipsNonPositivePoints) {
  const LineFit fit = fit_loglog(
      {{1.0, 10.0}, {0.0, 99.0}, {2.0, 5.0}, {4.0, 2.5}, {-3.0, 7.0},
       {8.0, 0.0}});
  ASSERT_TRUE(fit.valid());
  EXPECT_EQ(fit.points, 3u);
  EXPECT_NEAR(fit.slope, -1.0, 1e-9);
}

TEST(FitLogLog, AllInvalidPointsIsInvalid) {
  EXPECT_FALSE(fit_loglog({{0.0, 1.0}, {-1.0, 2.0}}).valid());
}

}  // namespace
}  // namespace webcache::util
