#include "util/format.hpp"

#include <gtest/gtest.h>

namespace webcache::util {
namespace {

TEST(Format, Fixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(3.14159, 0), "3");
  EXPECT_EQ(fmt_fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt_fixed(2.0, 4), "2.0000");
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_percent(0.123, 1), "12.3");
  EXPECT_EQ(fmt_percent(1.0, 0), "100");
  EXPECT_EQ(fmt_percent(0.0014, 2), "0.14");
}

TEST(Format, CountSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(6718210), "6,718,210");
  EXPECT_EQ(fmt_count(1234567890123ULL), "1,234,567,890,123");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512.0), "512 B");
  EXPECT_EQ(fmt_bytes(1500.0), "1.5 KB");
  EXPECT_EQ(fmt_bytes(2.5e9), "2.5 GB");
  EXPECT_EQ(fmt_bytes(0.0), "0 B");
}

}  // namespace
}  // namespace webcache::util
