#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace webcache::util {
namespace {

TEST(LogHistogram, RejectsInvalidParameters) {
  EXPECT_THROW(LogHistogram(1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(0.5), std::invalid_argument);
  EXPECT_THROW(LogHistogram(2.0, 0), std::invalid_argument);
}

TEST(LogHistogram, BucketIndexBase2) {
  LogHistogram h(2.0);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.9), 0u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(3.9), 1u);
  EXPECT_EQ(h.bucket_index(4.0), 2u);
  EXPECT_EQ(h.bucket_index(1024.0), 10u);
}

TEST(LogHistogram, SubUnitValuesGoToFirstBucket) {
  LogHistogram h(2.0);
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
}

TEST(LogHistogram, OverflowClampsToLastBucket) {
  LogHistogram h(2.0, 4);
  EXPECT_EQ(h.bucket_index(1e18), 3u);
}

TEST(LogHistogram, WeightsAccumulate) {
  LogHistogram h(2.0);
  h.add(3.0);
  h.add(3.5, 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 3.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
  EXPECT_EQ(h.bucket_weight(0), 0.0);
  EXPECT_EQ(h.bucket_weight(99), 0.0);
}

TEST(LogHistogram, BucketGeometry) {
  LogHistogram h(2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 16.0);
  EXPECT_NEAR(h.bucket_center(3), std::sqrt(8.0 * 16.0), 1e-12);
}

TEST(LogHistogram, DensityPointsSkipEmptyAndDivideByWidth) {
  LogHistogram h(2.0);
  h.add(1.0, 4.0);   // bucket 0, width 1
  h.add(10.0, 8.0);  // bucket 3, width 8
  const auto points = h.density_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].second, 4.0);
  EXPECT_DOUBLE_EQ(points[1].second, 1.0);
}

TEST(LogHistogram, MassPointsPreserveWeights) {
  LogHistogram h(2.0);
  h.add(5.0, 7.0);
  const auto points = h.mass_points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].second, 7.0);
}

TEST(LogHistogram, ScaleAppliesForgetting) {
  LogHistogram h(2.0);
  h.add(2.0, 10.0);
  h.scale(0.5);
  EXPECT_DOUBLE_EQ(h.bucket_weight(1), 5.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);
}

TEST(LogHistogram, ClearResets) {
  LogHistogram h(2.0);
  h.add(2.0);
  h.clear();
  EXPECT_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.bucket_count(), 0u);
}

TEST(LinearHistogram, RejectsInvalidParameters) {
  EXPECT_THROW(LinearHistogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, BucketsAndCenters) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(4), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_center(4), 9.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
}

TEST(LinearHistogram, OutOfRangeClamps) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_weight(4), 1.0);
}

}  // namespace
}  // namespace webcache::util
