#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace webcache::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, AdjacentSeedsDecorrelated) {
  // The SplitMix64 finalizer must break the correlation between seeds n
  // and n+1 that naive engine seeding exhibits in the first outputs.
  Rng a(1000);
  Rng b(1001);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork("child");
  Rng parent2(41);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = child.next_u64() != parent2.next_u64();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(43);
  Rng b(43);
  Rng ca = a.fork("x");
  Rng cb = b.fork("x");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ForkTagsDistinguishStreams) {
  Rng a(47);
  Rng b(47);
  Rng ca = a.fork("alpha");
  Rng cb = b.fork("beta");
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (ca.next_u64() == cb.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace webcache::util
