#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace webcache::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.cov(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, CovIsStddevOverMean) {
  StreamingStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.cov(), s.stddev() / s.mean(), 1e-12);
}

TEST(StreamingStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose all precision here; Welford must not.
  StreamingStats s;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) {
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), offset + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-3);
}

TEST(StreamingStats, MergeMatchesSequential) {
  Rng rng(7);
  StreamingStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 100);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), 2.0);
}

TEST(P2Quantile, RejectsInvalidQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.3), std::invalid_argument);
}

TEST(P2Quantile, EmptyIsNan) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
}

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(5.0);
  EXPECT_EQ(q.value(), 5.0);
  q.add(1.0);
  EXPECT_EQ(q.value(), 3.0);  // interpolated median of {1, 5}
  q.add(9.0);
  EXPECT_EQ(q.value(), 5.0);
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile q(0.5);
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform(0, 1000));
  EXPECT_NEAR(q.value(), 500.0, 15.0);
}

TEST(P2Quantile, NinetiethPercentileOfUniform) {
  P2Quantile q(0.9);
  Rng rng(13);
  for (int i = 0; i < 100000; ++i) q.add(rng.uniform(0, 1000));
  EXPECT_NEAR(q.value(), 900.0, 15.0);
}

TEST(P2Quantile, MedianOfSkewedDistribution) {
  // Lognormal-ish skew: the P2 median must track the true median, not the
  // mean (which is far larger).
  P2Quantile q(0.5);
  Rng rng(17);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = std::exp(rng.gaussian() * 1.5 + 8.0);
    q.add(x);
    all.push_back(x);
  }
  const double exact = exact_median(all);
  EXPECT_NEAR(q.value() / exact, 1.0, 0.08);
}

TEST(P2QuantileProperty, TracksExactMedianAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    P2Quantile q(0.5);
    Rng rng(seed);
    std::vector<double> all;
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.uniform(0, 1) < 0.8 ? rng.uniform(0, 10)
                                               : rng.uniform(100, 1000);
      q.add(x);
      all.push_back(x);
    }
    const double exact = exact_median(all);
    EXPECT_NEAR(q.value(), exact, std::max(0.5, exact * 0.1))
        << "seed " << seed;
  }
}

TEST(ExactMedian, OddAndEven) {
  std::vector<double> odd = {3.0, 1.0, 2.0};
  EXPECT_EQ(exact_median(odd), 2.0);
  std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(exact_median(even), 2.5);
}

TEST(ExactMedian, EmptyIsNan) {
  std::vector<double> none;
  EXPECT_TRUE(std::isnan(exact_median(none)));
}

TEST(SizeSummary, CombinesMomentsAndMedian) {
  SizeSummary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 100.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 22.0);
  EXPECT_EQ(s.median_value(), 3.0);
  EXPECT_GT(s.cov(), 1.0);  // dominated by the outlier
}

}  // namespace
}  // namespace webcache::util
