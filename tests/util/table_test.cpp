#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace webcache::util {
namespace {

TEST(Table, EmptyTableRendersTitle) {
  Table t("My Title");
  const std::string text = t.to_text();
  EXPECT_NE(text.find("My Title"), std::string::npos);
}

TEST(Table, ColumnsIsMaxWidth) {
  Table t("");
  t.set_header({"a", "b"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, TextAlignsColumns) {
  Table t("T");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23456"});
  const std::string text = t.to_text();
  std::istringstream in(text);
  std::string line;
  std::getline(in, line);  // title
  std::getline(in, line);  // header
  const std::size_t header_len = line.size();
  std::getline(in, line);  // separator
  EXPECT_EQ(line, std::string(header_len, '-'));
  std::getline(in, line);
  // First column left-aligned: row starts with cell text.
  EXPECT_EQ(line.rfind("x", 0), 0u);
  // Second column right-aligned: the line ends with the value.
  EXPECT_EQ(line.substr(line.size() - 1), "1");
}

TEST(Table, CsvBasic) {
  Table t("ignored in csv");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t("");
  t.add_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(t.to_csv(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(Table, PrintWritesToStream) {
  Table t("Title");
  t.add_row({"x"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("Title"), std::string::npos);
  EXPECT_NE(os.str().find("x"), std::string::npos);
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t("");
  t.set_header({"a", "b", "c"});
  t.add_row({"1"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find('1'), std::string::npos);  // no crash, renders
}

}  // namespace
}  // namespace webcache::util
