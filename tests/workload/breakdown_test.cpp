#include "workload/breakdown.hpp"

#include <gtest/gtest.h>

namespace webcache::workload {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc, DocumentClass cls, std::uint64_t doc_size,
            std::uint64_t transfer_size) {
  Request r;
  r.document = doc;
  r.doc_class = cls;
  r.document_size = doc_size;
  r.transfer_size = transfer_size;
  return r;
}

TEST(Breakdown, EmptyTrace) {
  const Breakdown bd = compute_breakdown(Trace{});
  EXPECT_EQ(bd.total.total_requests, 0u);
  EXPECT_EQ(bd.total.distinct_documents, 0u);
  EXPECT_EQ(bd.distinct_fraction(DocumentClass::kImage), 0.0);
}

TEST(Breakdown, CountsPerClass) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kImage, 100, 100),
      req(1, DocumentClass::kImage, 100, 100),
      req(2, DocumentClass::kHtml, 200, 150),
      req(3, DocumentClass::kMultiMedia, 1000, 400),
  };
  const Breakdown bd = compute_breakdown(t);

  EXPECT_EQ(bd.of(DocumentClass::kImage).total_requests, 2u);
  EXPECT_EQ(bd.of(DocumentClass::kImage).distinct_documents, 1u);
  EXPECT_EQ(bd.of(DocumentClass::kImage).requested_bytes, 200u);
  EXPECT_EQ(bd.of(DocumentClass::kImage).overall_size_bytes, 100u);

  EXPECT_EQ(bd.of(DocumentClass::kHtml).requested_bytes, 150u);
  EXPECT_EQ(bd.of(DocumentClass::kMultiMedia).overall_size_bytes, 1000u);

  EXPECT_EQ(bd.total.total_requests, 4u);
  EXPECT_EQ(bd.total.distinct_documents, 3u);
  EXPECT_EQ(bd.total.requested_bytes, 750u);
  EXPECT_EQ(bd.total.overall_size_bytes, 1300u);
}

TEST(Breakdown, FractionsSumToOne) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kImage, 100, 100),
      req(2, DocumentClass::kHtml, 200, 200),
      req(3, DocumentClass::kApplication, 300, 300),
      req(4, DocumentClass::kOther, 400, 400),
  };
  const Breakdown bd = compute_breakdown(t);
  double distinct = 0, size = 0, reqs = 0, bytes = 0;
  for (const auto cls : trace::kAllDocumentClasses) {
    distinct += bd.distinct_fraction(cls);
    size += bd.size_fraction(cls);
    reqs += bd.request_fraction(cls);
    bytes += bd.requested_bytes_fraction(cls);
  }
  EXPECT_NEAR(distinct, 1.0, 1e-12);
  EXPECT_NEAR(size, 1.0, 1e-12);
  EXPECT_NEAR(reqs, 1.0, 1e-12);
  EXPECT_NEAR(bytes, 1.0, 1e-12);
}

TEST(Breakdown, ModifiedDocumentCountedOnceAtFinalSize) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kHtml, 100, 100),
      req(1, DocumentClass::kHtml, 104, 104),  // modified
  };
  const Breakdown bd = compute_breakdown(t);
  EXPECT_EQ(bd.of(DocumentClass::kHtml).distinct_documents, 1u);
  EXPECT_EQ(bd.of(DocumentClass::kHtml).overall_size_bytes, 104u);
  EXPECT_EQ(bd.of(DocumentClass::kHtml).requested_bytes, 204u);
}

TEST(Breakdown, InterruptedTransfersCountTransferBytes) {
  Trace t;
  t.requests = {req(1, DocumentClass::kMultiMedia, 1000, 250)};
  const Breakdown bd = compute_breakdown(t);
  EXPECT_EQ(bd.of(DocumentClass::kMultiMedia).requested_bytes, 250u);
  EXPECT_EQ(bd.of(DocumentClass::kMultiMedia).overall_size_bytes, 1000u);
}

}  // namespace
}  // namespace webcache::workload
