#include "workload/byte_stack.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "synth/generator.hpp"

namespace webcache::workload {
namespace {

trace::Request req(trace::DocumentId doc, std::uint64_t size) {
  trace::Request r;
  r.document = doc;
  r.document_size = size;
  r.transfer_size = size;
  return r;
}

TEST(ByteStack, EmptyTrace) {
  const ByteStackProfile p = compute_byte_stack(trace::Trace{});
  EXPECT_EQ(p.total_references, 0u);
  EXPECT_EQ(p.hit_rate_at_bytes(1 << 20), 0.0);
}

TEST(ByteStack, ColdMissesCounted) {
  trace::Trace t;
  t.requests = {req(1, 100), req(2, 100), req(3, 100)};
  const ByteStackProfile p = compute_byte_stack(t);
  EXPECT_EQ(p.cold_misses, 3u);
  EXPECT_EQ(p.hits_at_bytes(~0ULL >> 1), 0u);
}

TEST(ByteStack, HandComputedByteDistance) {
  // A(100) B(300) A(100): the re-reference to A has byte distance
  // 300 (B) + 100 (A itself) = 400.
  trace::Trace t;
  t.requests = {req(1, 100), req(2, 300), req(1, 100)};
  const ByteStackProfile p = compute_byte_stack(t);
  EXPECT_EQ(p.cold_misses, 2u);
  // Distance 400 lands in bucket [256, 512); a 512-byte cache counts it,
  // a 256-byte cache does not.
  EXPECT_EQ(p.hits_at_bytes(512), 1u);
  EXPECT_EQ(p.hits_at_bytes(256), 0u);
}

TEST(ByteStack, MonotoneInCapacity) {
  synth::GeneratorOptions gen;
  gen.seed = 3;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002), gen)
          .generate();
  const ByteStackProfile p = compute_byte_stack(t);
  double previous = 0.0;
  for (std::uint64_t c = 1 << 16; c <= (1ULL << 34); c <<= 2) {
    const double hr = p.hit_rate_at_bytes(c);
    EXPECT_GE(hr, previous);
    previous = hr;
  }
}

TEST(ByteStack, ApproximatesByteLruSimulation) {
  // The point of the profile: one pass approximates the byte-capacity LRU
  // hit rate. Quantization and eviction-boundary effects bound accuracy;
  // demand agreement within a few points at mid-ladder capacities.
  synth::GeneratorOptions gen;
  gen.seed = 42;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.005), gen)
          .generate();
  const ByteStackProfile profile = compute_byte_stack(t);

  for (const double fraction : {0.02, 0.08, 0.32}) {
    const auto capacity = static_cast<std::uint64_t>(
        static_cast<double>(t.overall_size_bytes()) * fraction);
    cache::Cache cache(capacity, cache::make_policy("LRU"));
    std::uint64_t hits = 0;
    for (const auto& r : t.requests) {
      if (cache.access(r.document, r.transfer_size, r.doc_class).kind ==
          cache::Cache::AccessKind::kHit) {
        ++hits;
      }
    }
    const double simulated =
        static_cast<double>(hits) / static_cast<double>(t.total_requests());
    const double predicted = profile.hit_rate_at_bytes(capacity);
    EXPECT_NEAR(predicted, simulated, 0.05)
        << "capacity fraction " << fraction;
    // The conservative bucketing must never overpredict by much; allow
    // only the bucket-granularity slack upward.
    EXPECT_LT(predicted, simulated + 0.05);
  }
}

TEST(ByteStack, AccountingClosed) {
  synth::GeneratorOptions gen;
  gen.seed = 9;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.001), gen)
          .generate();
  const ByteStackProfile p = compute_byte_stack(t);
  const auto finite =
      static_cast<std::uint64_t>(p.distances.total_weight() + 0.5);
  EXPECT_EQ(finite + p.cold_misses, p.total_references);
}

}  // namespace
}  // namespace webcache::workload
