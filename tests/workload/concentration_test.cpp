#include "workload/concentration.hpp"

#include <gtest/gtest.h>

#include "synth/generator.hpp"

namespace webcache::workload {
namespace {

using trace::DocumentClass;

TEST(Concentration, EmptyCounts) {
  const ConcentrationEstimate est = concentration_from_counts({});
  EXPECT_EQ(est.documents, 0u);
  EXPECT_EQ(est.requests, 0u);
  EXPECT_EQ(est.one_timer_document_fraction, 0.0);
}

TEST(Concentration, AllOneTimers) {
  const ConcentrationEstimate est =
      concentration_from_counts({1, 1, 1, 1, 1, 1, 1, 1, 1, 1});
  EXPECT_EQ(est.documents, 10u);
  EXPECT_EQ(est.requests, 10u);
  EXPECT_DOUBLE_EQ(est.one_timer_document_fraction, 1.0);
  EXPECT_DOUBLE_EQ(est.one_timer_request_fraction, 1.0);
  // Top 10% = 1 document = 10% of requests.
  EXPECT_DOUBLE_EQ(est.top10_request_share, 0.1);
}

TEST(Concentration, SkewedCounts) {
  // 1 hot doc with 90 requests + 9 one-timers + rounding check.
  std::vector<std::uint32_t> counts = {90, 1, 1, 1, 1, 1, 1, 1, 1, 1};
  const ConcentrationEstimate est = concentration_from_counts(counts);
  EXPECT_EQ(est.requests, 99u);
  EXPECT_DOUBLE_EQ(est.one_timer_document_fraction, 0.9);
  EXPECT_NEAR(est.one_timer_request_fraction, 9.0 / 99.0, 1e-12);
  // Top 1% clamps to at least one document.
  EXPECT_NEAR(est.top1_request_share, 90.0 / 99.0, 1e-12);
  EXPECT_NEAR(est.top10_request_share, 90.0 / 99.0, 1e-12);
}

TEST(Concentration, OrderIndependent) {
  const auto a = concentration_from_counts({5, 1, 3, 1, 2});
  const auto b = concentration_from_counts({1, 2, 1, 3, 5});
  EXPECT_EQ(a.top10_request_share, b.top10_request_share);
  EXPECT_EQ(a.one_timer_document_fraction, b.one_timer_document_fraction);
}

TEST(Concentration, SyntheticDfnShowsExtremeNonUniformity) {
  // The paper (citing [1]) reports "extreme non-uniformity in popularity of
  // web requests seen at caching proxies": with 2.25 requests per document
  // most documents are one-timers, and a thin head absorbs a large share.
  synth::GeneratorOptions gen;
  gen.seed = 13;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.005), gen)
          .generate();
  const ConcentrationStats stats = compute_concentration(t);
  EXPECT_GT(stats.overall.one_timer_document_fraction, 0.4);
  EXPECT_GT(stats.overall.top10_request_share, 0.3);
  EXPECT_GT(stats.overall.top1_request_share, 0.10);
  // Per-class estimates partition the overall counts.
  std::uint64_t docs = 0, requests = 0;
  for (const auto cls : trace::kAllDocumentClasses) {
    docs += stats.of(cls).documents;
    requests += stats.of(cls).requests;
  }
  EXPECT_EQ(docs, stats.overall.documents);
  EXPECT_EQ(requests, stats.overall.requests);
}

TEST(Concentration, ImagesMoreConcentratedThanMultimedia) {
  // alpha ordering implies concentration ordering: the image class has the
  // steepest popularity slope, multimedia the flattest.
  synth::GeneratorOptions gen;
  gen.seed = 17;
  const trace::Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.01), gen)
          .generate();
  const ConcentrationStats stats = compute_concentration(t);
  EXPECT_GT(stats.of(DocumentClass::kImage).top1_request_share,
            stats.of(DocumentClass::kMultiMedia).top1_request_share);
}

}  // namespace
}  // namespace webcache::workload
