#include "workload/drift.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "synth/generator.hpp"
#include "synth/mix_shift.hpp"

namespace webcache::workload {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc, DocumentClass cls, std::uint64_t size) {
  Request r;
  r.document = doc;
  r.doc_class = cls;
  r.document_size = size;
  r.transfer_size = size;
  return r;
}

TEST(Drift, RejectsZeroWindows) {
  EXPECT_THROW(compute_drift(Trace{}, 0), std::invalid_argument);
}

TEST(Drift, EmptyTrace) { EXPECT_TRUE(compute_drift(Trace{}, 4).empty()); }

TEST(Drift, WindowsPartitionTheTrace) {
  Trace t;
  for (int i = 0; i < 103; ++i) {
    t.requests.push_back(req(i, DocumentClass::kHtml, 100));
  }
  const auto windows = compute_drift(t, 4);
  ASSERT_EQ(windows.size(), 4u);
  std::uint64_t covered = 0;
  std::uint64_t expected_start = 0;
  for (const auto& w : windows) {
    EXPECT_EQ(w.first_request, expected_start);
    covered += w.requests;
    expected_start = w.last_request;
  }
  EXPECT_EQ(covered, 103u);
}

TEST(Drift, MoreWindowsThanRequestsClamped) {
  Trace t;
  t.requests = {req(1, DocumentClass::kHtml, 10),
                req(2, DocumentClass::kImage, 10)};
  const auto windows = compute_drift(t, 10);
  EXPECT_EQ(windows.size(), 2u);
}

TEST(Drift, DetectsMixChangeMidTrace) {
  // First half pure images, second half pure multimedia.
  Trace t;
  for (int i = 0; i < 500; ++i) {
    t.requests.push_back(req(i % 50, DocumentClass::kImage, 1000));
  }
  for (int i = 0; i < 500; ++i) {
    t.requests.push_back(req(1000 + i % 50, DocumentClass::kMultiMedia,
                             100000));
  }
  const auto windows = compute_drift(t, 2);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(
      windows[0].request_fraction[static_cast<std::size_t>(
          DocumentClass::kImage)],
      1.0);
  EXPECT_DOUBLE_EQ(
      windows[1].request_fraction[static_cast<std::size_t>(
          DocumentClass::kMultiMedia)],
      1.0);
  EXPECT_GT(windows[1].mean_transfer_bytes, windows[0].mean_transfer_bytes);
}

TEST(Drift, StationaryGeneratorLooksStationary) {
  synth::GeneratorOptions gen;
  gen.seed = 21;
  const Trace t =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.01), gen)
          .generate();
  const auto windows = compute_drift(t, 4);
  ASSERT_EQ(windows.size(), 4u);
  const std::size_t img = static_cast<std::size_t>(DocumentClass::kImage);
  for (const auto& w : windows) {
    EXPECT_NEAR(w.request_fraction[img], 0.725, 0.02);
    EXPECT_GT(w.alpha, 0.3);
  }
}

TEST(Drift, DetectsTheConjecturedFutureShift) {
  // A trace whose second half is the paper's "future workload" (mm/app
  // shares x8): the drift windows must show the mm request share and the
  // mm+app byte share rising across the boundary.
  synth::GeneratorOptions gen;
  gen.seed = 31;
  const Trace today =
      synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.004), gen)
          .generate();
  gen.seed = 32;
  synth::WorkloadProfile future_profile =
      synth::future_workload(synth::WorkloadProfile::DFN(), 8.0).scaled(0.004);
  Trace future = synth::TraceGenerator(future_profile, gen).generate();
  // Concatenate (today first): shift future timestamps past today's end.
  const std::uint64_t offset = today.requests.back().timestamp_ms + 1000;
  Trace combined = today;
  for (Request r : future.requests) {
    r.timestamp_ms += offset;
    r.document ^= 0x4000000000000000ULL;  // disjoint population
    combined.requests.push_back(r);
  }

  const auto windows = compute_drift(combined, 4);
  ASSERT_EQ(windows.size(), 4u);
  const std::size_t mm = static_cast<std::size_t>(DocumentClass::kMultiMedia);
  const std::size_t app =
      static_cast<std::size_t>(DocumentClass::kApplication);
  // First window = today's mix; last window = the future mix.
  EXPECT_GT(windows[3].request_fraction[mm],
            windows[0].request_fraction[mm] * 4);
  EXPECT_GT(windows[3].byte_fraction[mm] + windows[3].byte_fraction[app],
            windows[0].byte_fraction[mm] + windows[0].byte_fraction[app]);
}

TEST(Drift, RenderProducesOneRowPerWindow) {
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.requests.push_back(req(i, DocumentClass::kHtml, 100));
  }
  const auto windows = compute_drift(t, 5);
  const util::Table table = render_drift(windows, "Drift");
  EXPECT_EQ(table.rows(), 5u);
  EXPECT_NE(table.to_text().find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace webcache::workload
