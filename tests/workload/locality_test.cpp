#include "workload/locality.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace webcache::workload {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc,
            DocumentClass cls = DocumentClass::kOther) {
  Request r;
  r.document = doc;
  r.doc_class = cls;
  r.document_size = 100;
  r.transfer_size = 100;
  return r;
}

TEST(Locality, EmptyAndTinyTracesYieldZeroEstimates) {
  EXPECT_EQ(compute_locality(Trace{}).overall.alpha, 0.0);
  Trace tiny;
  tiny.requests = {req(1), req(2)};
  const LocalityStats stats = compute_locality(tiny);
  EXPECT_EQ(stats.overall.alpha, 0.0);
  EXPECT_EQ(stats.overall.beta, 0.0);
}

TEST(Locality, AlphaRecoveredFromZipfStream) {
  // Draw requests from a Zipf urn and verify the measured popularity slope.
  const double alpha = 0.85;
  util::ZipfDistribution zipf(20000, alpha);
  util::Rng rng(3);
  Trace t;
  t.requests.reserve(300000);
  for (int i = 0; i < 300000; ++i) {
    t.requests.push_back(req(zipf.sample(rng)));
  }
  const LocalityStats stats = compute_locality(t);
  EXPECT_NEAR(stats.overall.alpha, alpha, 0.15);
  EXPECT_GT(stats.overall.alpha_r_squared, 0.9);
}

TEST(Locality, AlphaDistinguishesSkewLevels) {
  auto measure = [](double alpha) {
    util::ZipfDistribution zipf(10000, alpha);
    util::Rng rng(7);
    Trace t;
    for (int i = 0; i < 150000; ++i) t.requests.push_back(req(zipf.sample(rng)));
    return compute_locality(t).overall.alpha;
  };
  const double low = measure(0.5);
  const double high = measure(1.0);
  EXPECT_GT(high, low + 0.25);
}

TEST(Locality, BetaRecoveredFromCorrelatedStream) {
  // Construct a stream where re-references follow a planted power-law gap
  // distribution over a rotating population (every document has a similar
  // total count, so the popularity band keeps most of them).
  const double beta = 0.9;
  util::PowerLawGapDistribution gaps(4096, beta);
  util::Rng rng(11);
  Trace t;
  std::vector<trace::DocumentId> history;
  trace::DocumentId next_doc = 1;
  for (int i = 0; i < 200000; ++i) {
    trace::DocumentId doc;
    if (!history.empty() && rng.chance(0.7)) {
      const auto gap = std::min<std::uint64_t>(gaps.sample(rng), history.size());
      doc = history[history.size() - gap];
    } else {
      doc = next_doc++;
    }
    history.push_back(doc);
    t.requests.push_back(req(doc));
  }
  const LocalityStats stats = compute_locality(t);
  EXPECT_NEAR(stats.overall.beta, beta, 0.25);
  EXPECT_GT(stats.overall.re_references, 10000u);
}

TEST(Locality, BetaDistinguishesCorrelationLevels) {
  auto measure = [](double planted) {
    util::PowerLawGapDistribution gaps(4096, planted);
    util::Rng rng(13);
    Trace t;
    std::vector<trace::DocumentId> history;
    trace::DocumentId next_doc = 1;
    for (int i = 0; i < 150000; ++i) {
      trace::DocumentId doc;
      if (!history.empty() && rng.chance(0.6)) {
        const auto gap =
            std::min<std::uint64_t>(gaps.sample(rng), history.size());
        doc = history[history.size() - gap];
      } else {
        doc = next_doc++;
      }
      history.push_back(doc);
      t.requests.push_back(req(doc));
    }
    return compute_locality(t).overall.beta;
  };
  EXPECT_GT(measure(1.3), measure(0.4) + 0.3);
}

TEST(Locality, PerClassEstimatesSeparate) {
  // Images uncorrelated (uniform), multimedia strongly correlated.
  util::Rng rng(17);
  util::PowerLawGapDistribution gaps(512, 1.4);
  Trace t;
  std::vector<trace::DocumentId> mm_history;
  trace::DocumentId next_mm = 1u << 20;
  for (int i = 0; i < 120000; ++i) {
    if (i % 2 == 0) {
      // Image: uniform over a modest population -> flat popularity,
      // geometric-ish gaps.
      t.requests.push_back(
          req(1 + rng.below(2000), DocumentClass::kImage));
    } else {
      trace::DocumentId doc;
      if (!mm_history.empty() && rng.chance(0.7)) {
        const auto gap =
            std::min<std::uint64_t>(gaps.sample(rng), mm_history.size());
        doc = mm_history[mm_history.size() - gap];
      } else {
        doc = next_mm++;
      }
      mm_history.push_back(doc);
      t.requests.push_back(req(doc, DocumentClass::kMultiMedia));
    }
  }
  const LocalityStats stats = compute_locality(t);
  EXPECT_GT(stats.of(DocumentClass::kMultiMedia).beta,
            stats.of(DocumentClass::kImage).beta);
  EXPECT_EQ(stats.of(DocumentClass::kHtml).documents, 0u);
}

TEST(Locality, PopularityBandFiltersForBeta) {
  // A document far above the popularity band must contribute no gaps.
  Trace t;
  for (int i = 0; i < 1000; ++i) t.requests.push_back(req(42));
  LocalityOptions opts;
  opts.min_popularity = 2;
  opts.max_popularity = 64;
  const LocalityStats stats = compute_locality(t, opts);
  EXPECT_EQ(stats.overall.re_references, 0u);
}

TEST(Locality, OneTimersContributeNothingToBeta) {
  Trace t;
  for (trace::DocumentId d = 1; d <= 1000; ++d) t.requests.push_back(req(d));
  const LocalityStats stats = compute_locality(t);
  EXPECT_EQ(stats.overall.re_references, 0u);
  EXPECT_EQ(stats.overall.beta, 0.0);
}

}  // namespace
}  // namespace webcache::workload
