#include "workload/report.hpp"

#include <gtest/gtest.h>

#include "synth/generator.hpp"

namespace webcache::workload {
namespace {

class ReportTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::GeneratorOptions opts;
    opts.seed = 7;
    trace_ = new trace::Trace(
        synth::TraceGenerator(synth::WorkloadProfile::DFN().scaled(0.002),
                              opts)
            .generate());
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static trace::Trace* trace_;
};

trace::Trace* ReportTest::trace_ = nullptr;

TEST_F(ReportTest, TraceProperties) {
  const Breakdown bd = compute_breakdown(*trace_);
  const util::Table table = render_trace_properties({{"DFN", bd}});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("Distinct Documents"), std::string::npos);
  EXPECT_NE(text.find("Overall Size (GB)"), std::string::npos);
  EXPECT_NE(text.find("Total Requests"), std::string::npos);
  EXPECT_NE(text.find("Requested Data (GB)"), std::string::npos);
  EXPECT_NE(text.find("DFN"), std::string::npos);
  EXPECT_EQ(table.rows(), 4u);
}

TEST_F(ReportTest, TracePropertiesMultipleColumns) {
  const Breakdown bd = compute_breakdown(*trace_);
  const util::Table table =
      render_trace_properties({{"DFN", bd}, {"RTP", bd}});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("DFN"), std::string::npos);
  EXPECT_NE(csv.find("RTP"), std::string::npos);
}

TEST_F(ReportTest, ClassBreakdownHasPaperRowsAndColumns) {
  const Breakdown bd = compute_breakdown(*trace_);
  const util::Table table = render_class_breakdown("DFN", bd);
  const std::string text = table.to_text();
  for (const char* column :
       {"Images", "HTML", "Multi Media", "Application", "Other"}) {
    EXPECT_NE(text.find(column), std::string::npos) << column;
  }
  for (const char* row :
       {"% of Distinct Documents", "% of Overall Size", "% of Total Requests",
        "% of Requested Data"}) {
    EXPECT_NE(text.find(row), std::string::npos) << row;
  }
}

TEST_F(ReportTest, ConcentrationHasClassAndOverallColumns) {
  const ConcentrationStats conc = compute_concentration(*trace_);
  const util::Table table = render_concentration("DFN", conc);
  const std::string text = table.to_text();
  EXPECT_NE(text.find("Overall"), std::string::npos);
  EXPECT_NE(text.find("% one-timer documents"), std::string::npos);
  EXPECT_NE(text.find("% requests to top 1% docs"), std::string::npos);
  EXPECT_EQ(table.rows(), 4u);
}

TEST_F(ReportTest, SizeAndLocalityHasPaperRows) {
  const SizeStats sizes = compute_size_stats(*trace_);
  const LocalityStats locality = compute_locality(*trace_);
  const util::Table table = render_size_and_locality("DFN", sizes, locality);
  const std::string text = table.to_text();
  for (const char* row :
       {"Mean of Document Size (KB)", "Median of Document Size (KB)",
        "CoV of Document Size", "Mean of Transfer Size (KB)",
        "Median of Transfer Size (KB)", "CoV of Transfer Size",
        "Slope of Popularity Distribution", "Degree of Temporal Correlations"}) {
    EXPECT_NE(text.find(row), std::string::npos) << row;
  }
  EXPECT_EQ(table.rows(), 8u);
}

}  // namespace
}  // namespace webcache::workload
