#include "workload/size_stats.hpp"

#include <gtest/gtest.h>

namespace webcache::workload {
namespace {

using trace::DocumentClass;
using trace::Request;
using trace::Trace;

Request req(trace::DocumentId doc, DocumentClass cls, std::uint64_t doc_size,
            std::uint64_t transfer_size) {
  Request r;
  r.document = doc;
  r.doc_class = cls;
  r.document_size = doc_size;
  r.transfer_size = transfer_size;
  return r;
}

TEST(SizeStats, DocumentSamplesArePerDistinctDocument) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kImage, 100, 100),
      req(1, DocumentClass::kImage, 100, 100),
      req(1, DocumentClass::kImage, 100, 100),
      req(2, DocumentClass::kImage, 300, 300),
  };
  const SizeStats stats = compute_size_stats(t);
  const auto& img = stats.of(DocumentClass::kImage);
  EXPECT_EQ(img.document_sizes.count(), 2u);  // two distinct docs
  EXPECT_DOUBLE_EQ(img.document_sizes.mean(), 200.0);
  EXPECT_EQ(img.transfer_sizes.count(), 4u);  // every request
  EXPECT_DOUBLE_EQ(img.transfer_sizes.mean(), 150.0);
}

TEST(SizeStats, TransferVersusDocumentDivergeOnInterrupts) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kMultiMedia, 1000, 1000),
      req(1, DocumentClass::kMultiMedia, 1000, 100),  // interrupted
  };
  const SizeStats stats = compute_size_stats(t);
  const auto& mm = stats.of(DocumentClass::kMultiMedia);
  EXPECT_DOUBLE_EQ(mm.document_sizes.mean(), 1000.0);
  EXPECT_DOUBLE_EQ(mm.transfer_sizes.mean(), 550.0);
}

TEST(SizeStats, ModifiedDocumentUsesLastSize) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kHtml, 100, 100),
      req(1, DocumentClass::kHtml, 104, 104),
  };
  const SizeStats stats = compute_size_stats(t);
  EXPECT_DOUBLE_EQ(stats.of(DocumentClass::kHtml).document_sizes.mean(), 104.0);
}

TEST(SizeStats, ClassesIndependent) {
  Trace t;
  t.requests = {
      req(1, DocumentClass::kImage, 10, 10),
      req(2, DocumentClass::kApplication, 100000, 100000),
  };
  const SizeStats stats = compute_size_stats(t);
  EXPECT_EQ(stats.of(DocumentClass::kImage).document_sizes.count(), 1u);
  EXPECT_EQ(stats.of(DocumentClass::kApplication).document_sizes.count(), 1u);
  EXPECT_EQ(stats.of(DocumentClass::kHtml).document_sizes.count(), 0u);
}

TEST(SizeStats, MedianAndCovComputed) {
  Trace t;
  for (std::uint64_t i = 1; i <= 101; ++i) {
    t.requests.push_back(req(i, DocumentClass::kOther, i * 10, i * 10));
  }
  const SizeStats stats = compute_size_stats(t);
  const auto& other = stats.of(DocumentClass::kOther);
  EXPECT_NEAR(other.document_sizes.median_value(), 510.0, 25.0);
  EXPECT_GT(other.document_sizes.cov(), 0.0);
}

}  // namespace
}  // namespace webcache::workload
