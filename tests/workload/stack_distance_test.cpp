#include "workload/stack_distance.hpp"

#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/factory.hpp"
#include "util/rng.hpp"

namespace webcache::workload {
namespace {

trace::Request req(trace::DocumentId doc) {
  trace::Request r;
  r.document = doc;
  r.document_size = 1;
  r.transfer_size = 1;
  return r;
}

trace::Trace stream(std::initializer_list<trace::DocumentId> docs) {
  trace::Trace t;
  for (const auto d : docs) t.requests.push_back(req(d));
  return t;
}

TEST(StackDistance, EmptyTrace) {
  const StackDistanceProfile p = compute_stack_distances(trace::Trace{});
  EXPECT_EQ(p.total_references, 0u);
  EXPECT_EQ(p.hits_at(100), 0u);
  EXPECT_EQ(p.hit_rate_at(100), 0.0);
}

TEST(StackDistance, ColdMissesOnly) {
  const StackDistanceProfile p =
      compute_stack_distances(stream({1, 2, 3, 4, 5}));
  EXPECT_EQ(p.cold_misses, 5u);
  EXPECT_EQ(p.hits_at(1000), 0u);
}

TEST(StackDistance, HandComputedDistances) {
  // Stream: A B C B A.
  //   B at index 3: distinct since prev B = {C}        -> distance 1
  //   A at index 4: distinct since prev A = {B, C}     -> distance 2
  const StackDistanceProfile p =
      compute_stack_distances(stream({1, 2, 3, 2, 1}));
  EXPECT_EQ(p.cold_misses, 3u);
  ASSERT_GE(p.histogram.size(), 3u);
  EXPECT_EQ(p.histogram[1], 1u);
  EXPECT_EQ(p.histogram[2], 1u);
  // A 1-slot cache hits only distance-0 references: none here.
  EXPECT_EQ(p.hits_at(1), 0u);
  // A 2-slot LRU hits the distance-1 reference; 3 slots hit both.
  EXPECT_EQ(p.hits_at(2), 1u);
  EXPECT_EQ(p.hits_at(3), 2u);
}

TEST(StackDistance, ImmediateRereferenceIsDistanceZero) {
  const StackDistanceProfile p = compute_stack_distances(stream({7, 7, 7}));
  ASSERT_GE(p.histogram.size(), 1u);
  EXPECT_EQ(p.histogram[0], 2u);
  EXPECT_EQ(p.hits_at(1), 2u);
}

TEST(StackDistance, CurveIsMonotone) {
  util::Rng rng(3);
  trace::Trace t;
  for (int i = 0; i < 20000; ++i) {
    t.requests.push_back(req(rng.below(1 + rng.below(300))));
  }
  const StackDistanceProfile p = compute_stack_distances(t);
  const auto curve = p.hit_rate_curve(300);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]);
  }
  EXPECT_GT(curve.back(), 0.5);  // a 300-slot cache over ~300 docs hits a lot
}

TEST(StackDistance, MattsonMatchesLruSimulationExactly) {
  // The whole point: one pass predicts the simulated unit-size LRU hit
  // count at EVERY capacity.
  util::Rng rng(11);
  trace::Trace t;
  for (int i = 0; i < 30000; ++i) {
    t.requests.push_back(req(rng.below(1 + rng.below(500))));
  }
  const StackDistanceProfile profile = compute_stack_distances(t);

  for (const std::uint64_t slots : {1u, 4u, 16u, 64u, 256u}) {
    cache::Cache cache(slots, cache::make_policy("LRU"));
    std::uint64_t simulated = 0;
    for (const auto& r : t.requests) {
      if (cache.access(r.document, 1, trace::DocumentClass::kOther).kind ==
          cache::Cache::AccessKind::kHit) {
        ++simulated;
      }
    }
    EXPECT_EQ(profile.hits_at(slots), simulated) << slots << " slots";
  }
}

TEST(StackDistance, AccountingClosed) {
  util::Rng rng(13);
  trace::Trace t;
  for (int i = 0; i < 5000; ++i) t.requests.push_back(req(rng.below(100)));
  const StackDistanceProfile p = compute_stack_distances(t);
  std::uint64_t finite = 0;
  for (const auto h : p.histogram) finite += h;
  EXPECT_EQ(finite + p.cold_misses, p.total_references);
}

}  // namespace
}  // namespace webcache::workload
