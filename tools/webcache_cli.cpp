// webcache — command-line front end to the library.
//
// Subcommands:
//   generate      synthesize a workload (binary trace or Squid access.log)
//   convert       Squid access.log -> binary trace (with preprocessing)
//   export        binary trace -> Squid access.log
//   characterize  Tables 1-5 + concentration statistics for a trace
//   simulate      one policy, one cache size, full per-class report
//   sweep         the paper's cache-size ladder for a policy set
//   help          this text
//
// Examples:
//   webcache generate --profile=DFN --scale=0.01 --out=dfn.wct
//   webcache characterize dfn.wct
//   webcache simulate dfn.wct --policy='GD*(packet)' --cache-mb=64
//   webcache sweep dfn.wct --policies='LRU,LFU-DA,GDS(1),GD*(1)'
//   webcache convert access.log real.wct && webcache sweep real.wct
#include <algorithm>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "cache/factory.hpp"
#include "obs/stats_sink.hpp"
#include "sim/checkpoint.hpp"
#include "sim/faults.hpp"
#include "sim/hierarchy.hpp"
#include "sim/replication.hpp"
#include "sim/reporter.hpp"
#include "sim/sharded_replay.hpp"
#include "sim/sampled_sweep.hpp"
#include "sim/streaming.hpp"
#include "sim/sweep.hpp"
#include "synth/generator.hpp"
#include "synth/profile_io.hpp"
#include "trace/binary_trace.hpp"
#include "trace/preprocess.hpp"
#include "trace/streaming_trace.hpp"
#include "trace/squid_log_writer.hpp"
#include "util/args.hpp"
#include "util/format.hpp"
#include "workload/breakdown.hpp"
#include "workload/concentration.hpp"
#include "workload/drift.hpp"
#include "workload/locality.hpp"
#include "workload/report.hpp"
#include "workload/size_stats.hpp"
#include "workload/stack_distance.hpp"

namespace {

using namespace webcache;

int usage(std::ostream& os) {
  os << "usage: webcache <command> [args]\n"
        "\n"
        "  generate --profile=DFN|RTP | --profile-file=FILE.ini\n"
        "           [--scale=0.01] [--seed=42] --out=FILE\n"
        "           [--format=binary|squid]\n"
        "  profile  --profile=DFN|RTP --out=FILE.ini   (dump an editable\n"
        "           preset for --profile-file)\n"
        "  convert  ACCESS_LOG OUT.wct [--strict]   (--strict aborts on the\n"
        "           first malformed log line instead of skipping it)\n"
        "           [--recover]   (accepts a damaged IN.wct instead of a\n"
        "           log: undecodable records are skipped, a truncated tail\n"
        "           dropped, and a clean WCT1 file is rewritten; the\n"
        "           recovery summary names each skipped record and offset)\n"
        "  export   IN.wct OUT.log\n"
        "  characterize TRACE [--squid] [--windows=N]\n"
        "  simulate TRACE --policy=NAME [--cache-mb=N | --cache-fraction=F]\n"
        "           [--warmup=0.1] [--mod-rule=threshold|any|never] [--squid]\n"
        "           [--kernel=auto|on|off] (monomorphized replay kernels:\n"
        "            auto uses a statically-dispatched kernel when one is\n"
        "            registered for the policy — bit-identical results —\n"
        "            on fails if none exists, off forces the virtual path)\n"
        "           [--metrics-out=FILE[.json|.csv]] [--metrics-window=N]\n"
        "           (windowed per-class time series incl. aging L and GD*\n"
        "            beta traces; window defaults to ~1% of the trace)\n"
        "           [--threads=1] [--shards=0] [--sharded=exact|approx]\n"
        "           [--rebalance=N]\n"
        "           (--threads=N replays through the sharded engine;\n"
        "            exact mode is LRU/FIFO-family only and bit-identical\n"
        "            to the serial replay, --threads=1 IS the serial\n"
        "            replay; --sharded=approx opts any policy into the\n"
        "            per-shard-quota approximation, optionally rebalanced\n"
        "            every --rebalance=N requests)\n"
        "           [--stream [--chunk=65536] [--densify[=hot-capacity]]]\n"
        "           (--stream replays the binary trace file chunk by chunk\n"
        "            at bounded memory — bit-identical results; needs\n"
        "            --cache-mb and is incompatible with --squid and the\n"
        "            sharded flags, which need a materialized trace)\n"
        "           [--checkpoint-dir=DIR [--checkpoint-every=N]\n"
        "            [--checkpoint-keep=3] [--resume]] (crash-safe stream\n"
        "            replay: every N requests the full run state is written\n"
        "            atomically to DIR; --resume continues from the newest\n"
        "            valid checkpoint with bit-identical final results;\n"
        "            corrupt or mismatched checkpoints are rejected with a\n"
        "            named diagnostic — see docs/API.md)\n"
        "           [--faults=FILE [--fault-seed=N]] (stream path only with\n"
        "            --checkpoint-dir; schedules are part of the checkpoint\n"
        "            fingerprint)\n"
        "           [--result-out=FILE.json] (full-precision result dump —\n"
        "            doubles carry max_digits10, so bit-identity across\n"
        "            runs is byte-identity of the file)\n"
        "           [--recover] (permissive trace load: skip corrupt WCT1\n"
        "            records with per-record diagnostics; materialized\n"
        "            replay only, strict loading stays the default)\n"
        "  sweep    TRACE [--policies=A,B,...] [--fractions=F1,F2,...]\n"
        "           [--warmup=0.1] [--threads=0] [--squid]\n"
        "           [--one-pass=auto|on|off] [--curve-out=FILE.json]\n"
        "           [--faults=FILE] [--fault-seed=N]\n"
        "           (--one-pass routes LRU columns through the exact\n"
        "            single-pass stack-analysis engine; auto/on fall back\n"
        "            to the per-cell grid where ineligible, off forces the\n"
        "            grid. --curve-out exports webcache.sweep.v1 JSON.\n"
        "            --faults replays a fault schedule in every cell)\n"
        "           [--sampling=auto|on|off] [--sample-rate=0.01]\n"
        "           [--sample-seed=N] [--mem-budget-mb=N]\n"
        "           (SHARDS sampling of LRU columns: on = always sample,\n"
        "            auto = sample only when the exact one-pass engine\n"
        "            would exceed --mem-budget-mb. Sampled cells carry\n"
        "            error bars in the table and the JSON)\n"
        "           [--stream --capacities-mb=A,B,... [--sample-rate=R]\n"
        "            [--sample-seed=N] [--max-docs=N]]\n"
        "           (--stream runs the SHARDS-sampled LRU curve over the\n"
        "            binary trace file at bounded memory; capacities are\n"
        "            absolute because fractions need the overall trace\n"
        "            size, which streaming never materializes)\n"
        "  hierarchy TRACE [--edges=4] [--edge-policy='GD*(1)']\n"
        "           [--edge-fraction=0.005] [--root-policy='GD*(packet)']\n"
        "           [--root-fraction=0.08] [--mesh] [--squid]\n"
        "           [--faults=FILE] [--fault-seed=N]\n"
        "           [--metrics-out=FILE[.json|.csv]] [--metrics-window=N]\n"
        "           (--faults replays a fault schedule: node outages,\n"
        "            degraded probes, recovery warm-up; see docs/API.md)\n"
        "  replicate --profile=DFN|RTP [--scale=0.005] [--seeds=5]\n"
        "           [--cache-fraction=0.04] [--policies=A,B,...]\n"
        "  stackdist TRACE [--squid]   (Mattson reuse-distance profile:\n"
        "           cold-miss floor + unit-LRU hit curve)\n"
        "  help\n"
        "\n"
        "Policies: LRU LFU-DA FIFO SIZE LFU LRU-MIN LRU-THOLD(bytes)\n"
        "          GDS(1|packet|latency) GDSF(...) GD*(...)\n"
        "          RANDOM[:seed=N] CLOCK DELAY-CLOCK[:k=N]\n"
        "          PROB-LRU[:p=X[,seed=N]] DELAY-LRU[:k=N] BATCH-LRU[:batch=N]\n";
  return 2;
}

trace::Trace load_trace(const std::string& path, bool squid_format,
                        bool strict = false) {
  if (!squid_format) return trace::read_binary_trace_file(path);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  trace::PreprocessStats stats;
  trace::ParseReport report;
  trace::Trace t = trace::preprocess_squid_log(in, &stats, &report, strict);
  std::cerr << "preprocessed " << stats.total_entries << " entries -> "
            << stats.accepted << " cacheable requests\n";
  if (report.total_rejected() > 0) {
    std::cerr << "parser: " << report.summary() << "\n";
  }
  return t;
}

void print_recovery_summary(const trace::RecoveryReport& report);

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

sim::SimulatorOptions simulator_options(const util::Args& args) {
  sim::SimulatorOptions opts;
  opts.warmup_fraction = args.get_double("warmup", 0.10);
  const std::string rule = args.get("mod-rule", "threshold");
  if (rule == "threshold") {
    opts.modification_rule = sim::ModificationRule::kThreshold;
  } else if (rule == "any") {
    opts.modification_rule = sim::ModificationRule::kAnyChange;
  } else if (rule == "never") {
    opts.modification_rule = sim::ModificationRule::kNever;
  } else {
    throw std::invalid_argument("--mod-rule must be threshold|any|never");
  }
  const std::string kernel = args.get("kernel", "auto");
  if (kernel == "auto") {
    opts.kernel = sim::KernelMode::kAuto;
  } else if (kernel == "on") {
    opts.kernel = sim::KernelMode::kOn;
  } else if (kernel == "off") {
    opts.kernel = sim::KernelMode::kOff;
  } else {
    throw std::invalid_argument("--kernel must be auto|on|off");
  }
  return opts;
}

synth::WorkloadProfile profile_by_name(const std::string& name) {
  if (name == "DFN") return synth::WorkloadProfile::DFN();
  if (name == "RTP") return synth::WorkloadProfile::RTP();
  throw std::invalid_argument("--profile must be DFN or RTP");
}

int cmd_generate(const util::Args& args) {
  const std::string out_path = args.get("out", "");
  if (out_path.empty()) throw std::invalid_argument("generate: --out required");
  const double scale = args.get_double("scale", 0.01);
  synth::GeneratorOptions gen;
  gen.seed = args.get_uint("seed", 42);

  const synth::WorkloadProfile profile =
      (args.has("profile-file")
           ? synth::load_profile_file(args.get("profile-file", ""))
           : profile_by_name(args.get("profile", "DFN")))
          .scaled(scale);
  const trace::Trace t = synth::TraceGenerator(profile, gen).generate();
  std::cerr << "generated " << t.total_requests() << " requests, "
            << t.distinct_documents() << " documents, "
            << util::fmt_bytes(static_cast<double>(t.requested_bytes()))
            << " requested\n";

  const std::string format = args.get("format", "binary");
  if (format == "binary") {
    trace::write_binary_trace_file(out_path, t);
  } else if (format == "squid") {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("cannot open " + out_path);
    trace::write_squid_log(out, t);
  } else {
    throw std::invalid_argument("--format must be binary or squid");
  }
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

int cmd_profile(const util::Args& args) {
  const std::string out_path = args.get("out", "");
  const synth::WorkloadProfile profile =
      profile_by_name(args.get("profile", "DFN"));
  if (out_path.empty()) {
    std::cout << synth::profile_to_text(profile);
  } else {
    synth::save_profile_file(out_path, profile);
    std::cerr << "wrote " << out_path << "\n";
  }
  return 0;
}

int cmd_convert(const util::Args& args) {
  if (args.positional().size() != 2) {
    throw std::invalid_argument("convert: need ACCESS_LOG and OUT.wct");
  }
  if (args.get_bool("recover", false)) {
    // Salvage mode: the input is a damaged WCT1 file, not an access log.
    // Decodable records survive, the rest is reported, and the output is a
    // clean strict-loadable WCT1 file.
    trace::RecoveryReport report;
    const trace::Trace salvaged =
        trace::read_binary_trace_file_recovering(args.positional()[0], report);
    print_recovery_summary(report);
    trace::write_binary_trace_file(args.positional()[1], salvaged);
    std::cerr << "wrote " << args.positional()[1] << " ("
              << salvaged.total_requests() << " requests)\n";
    return 0;
  }
  const trace::Trace t = load_trace(args.positional()[0], /*squid=*/true,
                                    args.get_bool("strict", false));
  trace::write_binary_trace_file(args.positional()[1], t);
  std::cerr << "wrote " << args.positional()[1] << " (" << t.total_requests()
            << " requests)\n";
  return 0;
}

int cmd_export(const util::Args& args) {
  if (args.positional().size() != 2) {
    throw std::invalid_argument("export: need IN.wct and OUT.log");
  }
  const trace::Trace t = load_trace(args.positional()[0], /*squid=*/false);
  std::ofstream out(args.positional()[1]);
  if (!out) throw std::runtime_error("cannot open " + args.positional()[1]);
  const std::uint64_t lines = trace::write_squid_log(out, t);
  std::cerr << "wrote " << lines << " log lines\n";
  return 0;
}

int cmd_characterize(const util::Args& args) {
  if (args.positional().empty()) {
    throw std::invalid_argument("characterize: need a trace file");
  }
  const trace::Trace t =
      load_trace(args.positional()[0], args.get_bool("squid", false));

  const workload::Breakdown bd = workload::compute_breakdown(t);
  workload::render_trace_properties({{"trace", bd}}).print(std::cout);
  workload::render_class_breakdown("This", bd).print(std::cout);
  workload::render_size_and_locality("This", workload::compute_size_stats(t),
                                     workload::compute_locality(t))
      .print(std::cout);

  workload::render_concentration("This", workload::compute_concentration(t))
      .print(std::cout);

  const auto windows =
      static_cast<std::size_t>(args.get_uint("windows", 0));
  if (windows > 0) {
    workload::render_drift(workload::compute_drift(t, windows),
                           "Workload drift across " +
                               std::to_string(windows) + " windows")
        .print(std::cout);
  }
  return 0;
}

std::uint64_t capacity_from_args(const util::Args& args,
                                 const trace::Trace& t) {
  if (args.has("cache-mb")) {
    return args.get_uint("cache-mb", 64) * 1024 * 1024;
  }
  const double fraction = args.get_double("cache-fraction", 0.04);
  return static_cast<std::uint64_t>(
      static_cast<double>(t.overall_size_bytes()) * fraction);
}

void print_simulate_report(const sim::SimResult& r, std::uint64_t capacity) {
  util::Table table(r.policy_name + " @ " +
                    util::fmt_bytes(static_cast<double>(capacity)) + " (" +
                    util::fmt_count(r.measured_requests) +
                    " measured requests)");
  table.set_header({"", "Requests", "Hit rate", "Byte hit rate"});
  for (const auto cls : trace::kAllDocumentClasses) {
    const sim::HitCounters& c = r.of(cls);
    table.add_row({std::string(trace::to_string(cls)),
                   util::fmt_count(c.requests),
                   util::fmt_fixed(c.hit_rate(), 4),
                   util::fmt_fixed(c.byte_hit_rate(), 4)});
  }
  table.add_row({"Overall", util::fmt_count(r.overall.requests),
                 util::fmt_fixed(r.overall.hit_rate(), 4),
                 util::fmt_fixed(r.overall.byte_hit_rate(), 4)});
  table.print(std::cout);
  std::cout << "evictions " << util::fmt_count(r.evictions)
            << ", modification misses "
            << util::fmt_count(r.modification_misses) << ", interrupts "
            << util::fmt_count(r.interrupted_transfers) << ", bypasses "
            << util::fmt_count(r.bypasses) << "\n"
            << "mean latency " << util::fmt_fixed(r.mean_latency_ms(), 1)
            << " ms (" << util::fmt_percent(r.latency_savings(), 1)
            << "% saved vs uncached)\n";
}

void print_recovery_summary(const trace::RecoveryReport& report) {
  std::cerr << "recovery: kept " << report.recovered << " records, skipped "
            << report.skipped << ", lost " << report.truncated_records
            << " to truncation"
            << (report.checksum_mismatch ? ", checksum mismatch" : "")
            << (report.missing_trailer ? ", checksum trailer missing" : "")
            << "\n";
  for (const std::string& err : report.first_errors) {
    std::cerr << "recovery: " << err << "\n";
  }
  if (report.clean()) std::cerr << "recovery: file was clean\n";
}

/// Full-precision result dump: doubles carry max_digits10 significant
/// digits, so two runs produce byte-identical files exactly when their
/// results are bit-identical — the crash-injection harness diffs these.
void write_result_json(const std::string& path, const sim::SimResult& r) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  const auto hits = [&out](const sim::HitCounters& h) {
    out << "{\"requests\":" << h.requests << ",\"hits\":" << h.hits
        << ",\"requested_bytes\":" << h.requested_bytes
        << ",\"hit_bytes\":" << h.hit_bytes << "}";
  };
  out << "{\"schema\":\"webcache.result.v1\",\"policy\":\"" << r.policy_name
      << "\",\"capacity_bytes\":" << r.capacity_bytes << ",\"overall\":";
  hits(r.overall);
  out << ",\"per_class\":[";
  for (std::size_t c = 0; c < r.per_class.size(); ++c) {
    if (c > 0) out << ",";
    hits(r.per_class[c]);
  }
  out << "],\"warmup_requests\":" << r.warmup_requests
      << ",\"measured_requests\":" << r.measured_requests
      << ",\"evictions\":" << r.evictions << ",\"bypasses\":" << r.bypasses
      << ",\"miss_latency_ms\":" << r.miss_latency_ms
      << ",\"all_miss_latency_ms\":" << r.all_miss_latency_ms
      << ",\"modification_misses\":" << r.modification_misses
      << ",\"interrupted_transfers\":" << r.interrupted_transfers
      << ",\"faults\":{\"events_applied\":" << r.faults.events_applied
      << ",\"failovers\":" << r.faults.failovers
      << ",\"lost_requests\":" << r.faults.lost_requests
      << ",\"lost_bytes\":" << r.faults.lost_bytes
      << ",\"probe_timeouts\":" << r.faults.probe_timeouts
      << ",\"origin_fetches\":" << r.faults.origin_fetches << "}}\n";
  if (!out.good()) throw std::runtime_error("cannot write " + path);
}

void write_metrics_file(const std::string& path, const sim::SimResult& r,
                        const obs::RecordingSink& sink) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  if (csv) {
    sim::write_metrics_csv(out, sink.series());
  } else {
    sim::write_metrics_json(out, r, sink.series());
  }
  std::cerr << "wrote " << path << " (" << sink.series().windows.size()
            << " windows of " << sink.window_requests() << " requests)\n";
}

/// simulate --stream: chunked replay straight off the binary file. Results
/// are bit-identical to the materialized path; memory is O(chunk + cache).
int cmd_simulate_stream(const util::Args& args) {
  if (args.get_bool("squid", false)) {
    throw std::invalid_argument(
        "simulate: --stream reads the binary format only; run `webcache "
        "convert` first");
  }
  if (args.has("threads") || args.has("shards") || args.has("sharded") ||
      args.has("rebalance")) {
    throw std::invalid_argument(
        "simulate: --stream is incompatible with --threads/--shards/"
        "--sharded — the sharded engine partitions a materialized trace");
  }
  if (args.has("cache-fraction") || !args.has("cache-mb")) {
    throw std::invalid_argument(
        "simulate: --stream needs an absolute --cache-mb — cache fractions "
        "are relative to the overall trace size, which a streaming replay "
        "never materializes");
  }
  if (args.get_bool("recover", false)) {
    throw std::invalid_argument(
        "simulate: --recover needs a materialized replay (drop --stream) — "
        "or rewrite the damaged file first with `webcache convert --recover`");
  }
  const std::uint64_t capacity = args.get_uint("cache-mb", 64) * 1024 * 1024;
  const auto chunk =
      static_cast<std::size_t>(args.get_uint("chunk", 1 << 16));
  trace::StreamingTraceReader stream(args.positional()[0], chunk);

  const auto spec =
      cache::policy_spec_from_name(args.get("policy", "GD*(1)"));

  trace::OnlineDensifier::Options densify;
  const bool densified = args.has("densify");
  // --densify alone keeps the default hot tier; --densify=N bounds it.
  if (densified && args.get("densify", "") != "true") {
    densify.hot_capacity =
        static_cast<std::size_t>(args.get_uint("densify", 1 << 20));
  }

  const std::string metrics_path = args.get("metrics-out", "");
  const std::uint64_t default_window =
      std::max<std::uint64_t>(1, stream.total_requests() / 100);
  obs::RecordingSink sink(args.get_uint("metrics-window", default_window));

  // Any checkpoint flag routes through the checkpointed driver; without one
  // the plain streaming replay runs untouched, so the off-cadence path is
  // bit-identical to pre-checkpoint builds by construction.
  const bool checkpointing = args.has("checkpoint-dir") ||
                             args.has("checkpoint-every") ||
                             args.get_bool("resume", false);
  if (args.has("faults") && !checkpointing) {
    throw std::invalid_argument(
        "simulate: --faults on the stream path needs --checkpoint-dir (the "
        "schedule is part of the checkpoint fingerprint)");
  }

  sim::SimResult r;
  if (checkpointing) {
    sim::StreamCheckpointJob job;
    job.options = simulator_options(args);
    job.checkpoint.dir = args.get("checkpoint-dir", "");
    job.checkpoint.every = args.get_uint("checkpoint-every", 1'000'000);
    job.checkpoint.keep = args.get_uint("checkpoint-keep", 3);
    job.checkpoint.resume = args.get_bool("resume", false);
    job.checkpoint.trace_source = args.positional()[0];
    job.densified = densified;
    job.densify_options = densify;
    if (!metrics_path.empty()) job.sink = &sink;
    sim::FaultSchedule schedule;
    if (args.has("faults")) {
      schedule = sim::load_fault_schedule_file(args.get("faults", ""));
      if (args.has("fault-seed")) {
        schedule.seed = args.get_uint("fault-seed", 0);
      }
      job.faults = &schedule;
    }
    const sim::CheckpointedRun run =
        sim::simulate_stream_checkpointed(stream, capacity, spec, job);
    r = run.result;
    for (const std::string& note : sim::checkpoint_resume_diagnostics()) {
      std::cerr << "checkpoint: " << note << "\n";
    }
    if (run.resumed_from > 0) {
      std::cerr << "checkpoint: resumed after request " << run.resumed_from
                << "\n";
    }
    if (run.checkpoints_written > 0) {
      std::cerr << "checkpoint: wrote " << run.checkpoints_written
                << " checkpoint(s) to " << job.checkpoint.dir << "\n";
    }
  } else if (metrics_path.empty()) {
    r = densified
            ? sim::simulate_stream_densified(
                  stream, capacity, spec, simulator_options(args), densify)
            : sim::simulate_stream(stream, capacity, spec,
                                   simulator_options(args));
  } else {
    r = densified ? sim::simulate_stream_densified(stream, capacity, spec,
                                                   simulator_options(args),
                                                   sink, densify)
                  : sim::simulate_stream(stream, capacity, spec,
                                         simulator_options(args), sink);
  }
  if (!metrics_path.empty()) write_metrics_file(metrics_path, r, sink);
  if (args.has("result-out")) write_result_json(args.get("result-out", ""), r);
  print_simulate_report(r, capacity);
  return 0;
}

int cmd_simulate(const util::Args& args) {
  if (args.positional().empty()) {
    throw std::invalid_argument("simulate: need a trace file");
  }
  if (args.get_bool("stream", false)) return cmd_simulate_stream(args);
  if (args.has("checkpoint-dir") || args.has("checkpoint-every") ||
      args.get_bool("resume", false)) {
    throw std::invalid_argument(
        "simulate: checkpoints are a streaming-replay feature — add "
        "--stream (and --cache-mb)");
  }
  const trace::Trace t = [&args] {
    if (!args.get_bool("recover", false)) {
      return load_trace(args.positional()[0], args.get_bool("squid", false));
    }
    if (args.get_bool("squid", false)) {
      throw std::invalid_argument(
          "simulate: --recover salvages damaged WCT1 binary traces; the "
          "squid parser already skips malformed lines by default");
    }
    trace::RecoveryReport report;
    trace::Trace recovered =
        trace::read_binary_trace_file_recovering(args.positional()[0], report);
    print_recovery_summary(report);
    return recovered;
  }();
  const std::string policy = args.get("policy", "GD*(1)");
  const std::uint64_t capacity = capacity_from_args(args, t);
  const std::string metrics_path = args.get("metrics-out", "");

  // Any of the sharded flags routes the replay through the sharded engine;
  // --threads=1 with auto shards delegates straight back to the serial
  // simulate() inside ShardedReplay, so the plain and sharded spellings of
  // a single-threaded run share one code path.
  const bool sharded_run =
      args.has("threads") || args.has("shards") || args.has("sharded");
  sim::ShardedConfig sharded;
  if (sharded_run) {
    sharded.threads = static_cast<std::uint32_t>(args.get_uint("threads", 1));
    sharded.shards = static_cast<std::uint32_t>(args.get_uint("shards", 0));
    const std::string mode = args.get("sharded", "exact");
    if (mode == "exact") {
      sharded.mode = sim::ShardedMode::kExact;
    } else if (mode == "approx") {
      sharded.mode = sim::ShardedMode::kApprox;
    } else {
      throw std::invalid_argument(
          "simulate: --sharded must be exact or approx (got '" + mode + "')");
    }
    sharded.rebalance_interval = args.get_uint("rebalance", 0);
  }

  const auto spec = cache::policy_spec_from_name(policy);
  sim::SimResult r;
  if (metrics_path.empty()) {
    r = sharded_run
            ? sim::simulate_sharded(t, capacity, spec, simulator_options(args),
                                    sharded)
            : sim::simulate(t, capacity, spec, simulator_options(args));
  } else {
    // Instrumented replay: identical results, plus the windowed series.
    const std::uint64_t default_window =
        std::max<std::uint64_t>(1, t.total_requests() / 100);
    obs::RecordingSink sink(args.get_uint("metrics-window", default_window));
    r = sharded_run
            ? sim::simulate_sharded(t, capacity, spec, simulator_options(args),
                                    sharded, sink)
            : sim::simulate(t, capacity, spec, simulator_options(args), sink);
    write_metrics_file(metrics_path, r, sink);
  }

  if (args.has("result-out")) write_result_json(args.get("result-out", ""), r);
  print_simulate_report(r, capacity);
  return 0;
}

/// sweep --stream: SHARDS-sampled LRU miss-ratio curve straight off the
/// binary file, at O(sampled documents) memory.
int cmd_sweep_stream(const util::Args& args) {
  if (args.get_bool("squid", false)) {
    throw std::invalid_argument(
        "sweep: --stream reads the binary format only; run `webcache "
        "convert` first");
  }
  if (!args.has("capacities-mb")) {
    throw std::invalid_argument(
        "sweep: --stream needs --capacities-mb=A,B,... — fractional ladders "
        "are relative to the overall trace size, which a streaming sweep "
        "never materializes");
  }
  sim::SampledSweepConfig config;
  config.simulator = simulator_options(args);
  for (const std::string& mb : split_list(args.get("capacities-mb", ""))) {
    config.capacities.push_back(
        static_cast<std::uint64_t>(std::stod(mb) * 1024.0 * 1024.0));
  }
  config.sample_rate = args.get_double("sample-rate", 0.01);
  if (args.has("sample-seed")) {
    config.hash_seed = args.get_uint("sample-seed", config.hash_seed);
  }
  config.max_sampled_documents =
      static_cast<std::size_t>(args.get_uint("max-docs", 0));
  const auto chunk =
      static_cast<std::size_t>(args.get_uint("chunk", 1 << 16));

  trace::StreamingTraceReader stream(args.positional()[0], chunk);
  const sim::SampledSweep sweep(config);
  const sim::SampledCurve curve = sweep.run(stream);

  // Re-express the curve as a SweepResult so --curve-out reuses the
  // webcache.sweep.v1 writer (fractions are 0: the overall size is unknown).
  sim::SweepResult result;
  result.sampled = !curve.exact;
  result.sample_rate = curve.effective_rate;
  result.sample_seed = curve.hash_seed;
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    sim::SweepPoint point;
    point.capacity_bytes = curve.points[i].capacity_bytes;
    point.results.push_back(curve.results[i]);
    point.estimates.push_back({!curve.exact, curve.points[i].hit_rate_error,
                               curve.points[i].byte_hit_rate_error});
    result.points.push_back(std::move(point));
  }
  if (args.has("curve-out")) {
    const std::string path = args.get("curve-out", "");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    sim::write_sweep_json(out, result);
    if (!out.good()) throw std::runtime_error("cannot write " + path);
    std::cerr << "wrote sweep curves to " << path << "\n";
  }

  util::Table table(
      curve.exact
          ? "LRU miss-ratio curve (exact)"
          : "LRU miss-ratio curve (SHARDS rate " +
                util::fmt_fixed(curve.effective_rate, 4) + ", " +
                util::fmt_count(curve.sampled_documents) +
                " sampled documents)");
  table.set_header({"Capacity", "Hit rate", "+/-", "Byte hit rate", "+/-"});
  for (const sim::SampledPoint& p : curve.points) {
    table.add_row({util::fmt_bytes(static_cast<double>(p.capacity_bytes)),
                   util::fmt_fixed(p.hit_rate, 4),
                   util::fmt_fixed(p.hit_rate_error, 4),
                   util::fmt_fixed(p.byte_hit_rate, 4),
                   util::fmt_fixed(p.byte_hit_rate_error, 4)});
  }
  table.print(std::cout);
  std::cout << util::fmt_count(curve.total_requests) << " requests ("
            << util::fmt_count(curve.sampled_requests) << " sampled), warmup "
            << util::fmt_count(curve.warmup_requests) << "\n";
  return 0;
}

int cmd_sweep(const util::Args& args) {
  if (args.positional().empty()) {
    throw std::invalid_argument("sweep: need a trace file");
  }
  if (args.get_bool("stream", false)) return cmd_sweep_stream(args);
  const trace::Trace t =
      load_trace(args.positional()[0], args.get_bool("squid", false));

  sim::SweepConfig config;
  config.simulator = simulator_options(args);
  const std::string policies =
      args.get("policies", "LRU,LFU-DA,GDS(1),GD*(1)");
  config.policies.clear();
  for (const std::string& name : split_list(policies)) {
    config.policies.push_back(cache::policy_spec_from_name(name));
  }
  if (args.has("fractions")) {
    config.cache_fractions.clear();
    for (const std::string& f : split_list(args.get("fractions", ""))) {
      config.cache_fractions.push_back(std::stod(f));
    }
  }
  config.threads = static_cast<std::uint32_t>(args.get_uint("threads", 0));
  if (args.has("faults")) {
    config.faults = sim::load_fault_schedule_file(args.get("faults", ""));
    if (args.has("fault-seed")) {
      config.faults.seed = args.get_uint("fault-seed", 0);
    }
  }
  const std::string one_pass = args.get("one-pass", "auto");
  if (one_pass == "auto") {
    config.one_pass = sim::OnePassMode::kAuto;
  } else if (one_pass == "on") {
    config.one_pass = sim::OnePassMode::kOn;
  } else if (one_pass == "off") {
    config.one_pass = sim::OnePassMode::kOff;
  } else {
    throw std::invalid_argument(
        "sweep: --one-pass must be auto, on, or off (got '" + one_pass + "')");
  }
  const std::string sampling = args.get("sampling", "auto");
  if (sampling == "auto") {
    config.sampling = sim::SamplingMode::kAuto;
  } else if (sampling == "on") {
    config.sampling = sim::SamplingMode::kOn;
  } else if (sampling == "off") {
    config.sampling = sim::SamplingMode::kOff;
  } else {
    throw std::invalid_argument(
        "sweep: --sampling must be auto, on, or off (got '" + sampling +
        "')");
  }
  config.sample_rate = args.get_double("sample-rate", config.sample_rate);
  if (args.has("sample-seed")) {
    config.sample_seed = args.get_uint("sample-seed", config.sample_seed);
  }
  config.sample_memory_budget_bytes =
      args.get_uint("mem-budget-mb", 0) * 1024 * 1024;

  const sim::SweepResult sweep = sim::run_sweep(t, config);
  if (sweep.sampled) {
    std::cerr << "sampled LRU columns at rate " << sweep.sample_rate
              << " (seed " << sweep.sample_seed << ")\n";
  }
  if (args.has("curve-out")) {
    const std::string path = args.get("curve-out", "");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    sim::write_sweep_json(out, sweep);
    if (!out.good()) throw std::runtime_error("cannot write " + path);
    std::cerr << "wrote sweep curves to " << path << "\n";
  }
  sim::render_sweep_overall(sweep, sim::Metric::kHitRate, "Overall hit rate")
      .print(std::cout);
  sim::render_sweep_overall(sweep, sim::Metric::kByteHitRate,
                            "Overall byte hit rate")
      .print(std::cout);
  for (const auto cls : trace::kAllDocumentClasses) {
    const std::string name(trace::to_string(cls));
    sim::render_sweep_panel(sweep, cls, sim::Metric::kHitRate,
                            name + ": hit rate")
        .print(std::cout);
  }
  return 0;
}

int cmd_hierarchy(const util::Args& args) {
  if (args.positional().empty()) {
    throw std::invalid_argument("hierarchy: need a trace file");
  }
  const trace::Trace t =
      load_trace(args.positional()[0], args.get_bool("squid", false));
  const double overall = static_cast<double>(t.overall_size_bytes());

  sim::HierarchyConfig config;
  config.edge_count = static_cast<std::uint32_t>(args.get_uint("edges", 4));
  config.edge_policy =
      cache::policy_spec_from_name(args.get("edge-policy", "GD*(1)"));
  config.edge_capacity_bytes = static_cast<std::uint64_t>(
      overall * args.get_double("edge-fraction", 0.005));
  config.root_policy =
      cache::policy_spec_from_name(args.get("root-policy", "GD*(packet)"));
  config.root_capacity_bytes = static_cast<std::uint64_t>(
      overall * args.get_double("root-fraction", 0.08));
  config.simulator = simulator_options(args);
  config.sibling_cooperation = args.get_bool("mesh", false);

  const bool have_faults = args.has("faults");
  sim::FaultSchedule schedule;
  if (have_faults) {
    schedule = sim::load_fault_schedule_file(args.get("faults", ""));
    if (args.has("fault-seed")) {
      schedule.seed = args.get_uint("fault-seed", 0);
    }
  }

  const std::string metrics_path = args.get("metrics-out", "");
  sim::HierarchyResult r;
  if (metrics_path.empty()) {
    r = have_faults ? sim::simulate_hierarchy(t, config, schedule)
                    : sim::simulate_hierarchy(t, config);
  } else {
    // Instrumented replay: identical results, plus the windowed series
    // (with per-window availability and warm-up curves under --faults).
    const std::uint64_t default_window =
        std::max<std::uint64_t>(1, t.total_requests() / 100);
    obs::RecordingSink sink(args.get_uint("metrics-window", default_window));
    r = have_faults ? sim::simulate_hierarchy(t, config, schedule, sink)
                    : sim::simulate_hierarchy(t, config, sink);
    std::ofstream out(metrics_path);
    if (!out) throw std::runtime_error("cannot open " + metrics_path);
    const bool csv = metrics_path.size() >= 4 &&
                     metrics_path.compare(metrics_path.size() - 4, 4,
                                          ".csv") == 0;
    if (csv) {
      sim::write_metrics_csv(out, sink.series());
    } else {
      sim::write_hierarchy_metrics_json(out, r, sink.series());
    }
    std::cerr << "wrote " << metrics_path << " ("
              << sink.series().windows.size() << " windows of "
              << sink.window_requests() << " requests)\n";
  }

  util::Table table(std::to_string(config.edge_count) + " edges (" +
                    util::fmt_bytes(static_cast<double>(
                        config.edge_capacity_bytes)) +
                    " each) + root (" +
                    util::fmt_bytes(static_cast<double>(
                        config.root_capacity_bytes)) +
                    ")");
  table.set_header({"Metric", "Value"});
  table.add_row({"Edge hit rate", util::fmt_fixed(r.edge_hit_rate(), 4)});
  table.add_row({"Root hit rate (forwarded)",
                 util::fmt_fixed(r.root_hit_rate(), 4)});
  table.add_row({"Combined hit rate",
                 util::fmt_fixed(r.combined_hit_rate(), 4)});
  table.add_row({"Combined byte hit rate",
                 util::fmt_fixed(r.combined_byte_hit_rate(), 4)});
  table.add_row({"Origin traffic",
                 util::fmt_percent(r.origin_traffic_fraction(), 1) + "%"});
  table.add_row({"Root requests", util::fmt_count(r.root_requests)});
  if (config.sibling_cooperation) {
    table.add_row({"Sibling hits", util::fmt_count(r.sibling_hits.hits)});
  }
  if (have_faults) {
    table.add_row({"Fault events applied",
                   util::fmt_count(r.faults.events_applied)});
    table.add_row({"Failovers", util::fmt_count(r.faults.failovers)});
    table.add_row({"Lost requests", util::fmt_count(r.faults.lost_requests)});
    table.add_row({"Origin fetches (root down)",
                   util::fmt_count(r.faults.origin_fetches)});
    table.add_row({"Probe timeouts", util::fmt_count(r.faults.probe_timeouts)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_replicate(const util::Args& args) {
  const synth::WorkloadProfile profile =
      profile_by_name(args.get("profile", "DFN"))
          .scaled(args.get_double("scale", 0.005));

  sim::ReplicationConfig config;
  config.replications =
      static_cast<std::uint32_t>(args.get_uint("seeds", 5));
  config.base_seed = args.get_uint("seed", 42);
  config.cache_fraction = args.get_double("cache-fraction", 0.04);
  config.simulator = simulator_options(args);

  std::vector<cache::PolicySpec> policies;
  for (const std::string& name :
       split_list(args.get("policies", "LRU,LFU-DA,GDS(1),GD*(1)"))) {
    policies.push_back(cache::policy_spec_from_name(name));
  }

  const auto results = sim::run_replicated(profile, policies, config);
  util::Table table(profile.name + ": mean ± 95% CI over " +
                    std::to_string(config.replications) + " seeds");
  table.set_header({"Policy", "HR mean", "HR ±", "BHR mean", "BHR ±"});
  for (const auto& r : results) {
    table.add_row({r.policy_name, util::fmt_fixed(r.hit_rate.mean(), 4),
                   util::fmt_fixed(r.hit_rate.ci95_half_width(), 4),
                   util::fmt_fixed(r.byte_hit_rate.mean(), 4),
                   util::fmt_fixed(r.byte_hit_rate.ci95_half_width(), 4)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_stackdist(const util::Args& args) {
  if (args.positional().empty()) {
    throw std::invalid_argument("stackdist: need a trace file");
  }
  const trace::Trace t =
      load_trace(args.positional()[0], args.get_bool("squid", false));
  const workload::StackDistanceProfile profile =
      workload::compute_stack_distances(t);

  util::Table summary("Mattson reuse-distance profile");
  summary.set_header({"Quantity", "Value"});
  summary.add_row({"References", util::fmt_count(profile.total_references)});
  summary.add_row(
      {"Cold (compulsory) misses", util::fmt_count(profile.cold_misses)});
  summary.add_row(
      {"Cold-miss floor",
       util::fmt_percent(static_cast<double>(profile.cold_misses) /
                             std::max<std::uint64_t>(
                                 1, profile.total_references),
                         1) +
           "%"});
  summary.print(std::cout);

  util::Table curve("Unit-size LRU hit rate by cache size (documents)");
  curve.set_header({"Documents held", "Hit rate"});
  for (std::uint64_t slots = 64; slots <= (1u << 22); slots *= 4) {
    curve.add_row({util::fmt_count(slots),
                   util::fmt_fixed(profile.hit_rate_at(slots), 4)});
  }
  curve.add_row(
      {"infinite", util::fmt_fixed(profile.hit_rate_at(~0ULL), 4)});
  curve.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr);
  const std::string command = argv[1];
  const util::Args args(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "profile") return cmd_profile(args);
    if (command == "convert") return cmd_convert(args);
    if (command == "export") return cmd_export(args);
    if (command == "characterize") return cmd_characterize(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "hierarchy") return cmd_hierarchy(args);
    if (command == "replicate") return cmd_replicate(args);
    if (command == "stackdist") return cmd_stackdist(args);
    if (command == "help" || command == "--help") return usage(std::cout), 0;
  } catch (const std::exception& e) {
    std::cerr << "webcache " << command << ": " << e.what() << "\n";
    return 1;
  }
  std::cerr << "webcache: unknown command '" << command << "'\n";
  return usage(std::cerr);
}
